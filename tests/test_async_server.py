"""Behavioural suite for the asyncio multi-tenant graph service.

The conformance matrix already proves the async frontend + async client pair
is bit-identical to every other backend; this file covers what is *new* in
the tier: tenants-file validation, API-key auth, server-side budget and
rate-limit enforcement with typed 429 round trips, the ``POST /walk``
endpoint (one round trip, fingerprint-verified against a client-driven
walk), the ``GET /stats`` usage surface, JSONL access logs, and the server
lifecycle.
"""

from __future__ import annotations

import json

import pytest

from repro.api import AsyncHTTPGraphBackend, HTTPGraphBackend, build_api
from repro.api.backend import InMemoryBackend
from repro.api.ratelimit import SimulatedClock
from repro.exceptions import (
    NodeNotFoundError,
    QueryBudgetExceededError,
    RateLimitExceededError,
    RemoteBackendError,
    TenantAuthError,
    TenantConfigError,
)
from repro.graphs import load_dataset
from repro.server import AsyncGraphServer, TenantRegistry, WallClock, load_tenants
from repro.server.tenants import parse_tenants
from repro.walks import make_walker

GOLDEN_SEED = 7
GOLDEN_BUDGET = 60


def tenants_doc(**tenants):
    return {"format": "repro-graph-tenants", "version": 1, "tenants": tenants}


@pytest.fixture(scope="module")
def conformance_graph():
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def backend(conformance_graph):
    return InMemoryBackend(conformance_graph)


# ----------------------------------------------------------------------
# tenants.json validation
# ----------------------------------------------------------------------
class TestTenantsConfig:
    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(TenantConfigError, match="does not exist"):
            load_tenants(tmp_path / "nowhere.json")

    def test_non_json_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text("{not json")
        with pytest.raises(TenantConfigError, match="not JSON"):
            load_tenants(path)

    @pytest.mark.parametrize("payload, match", [
        ([], "JSON object"),
        ({"format": "something-else"}, "format"),
        ({"format": "repro-graph-tenants", "version": 99}, "version"),
        ({"format": "repro-graph-tenants", "version": 1}, "tenants"),
        ({"format": "repro-graph-tenants", "version": 1, "tenants": {}}, "tenants"),
        (tenants_doc(**{"k": "not-an-object"}), "JSON object"),
        (tenants_doc(k={"budget": 5}), "name"),
        (tenants_doc(k={"name": "a", "budget": -1}), "budget"),
        (tenants_doc(k={"name": "a", "budget": "lots"}), "budget"),
        (tenants_doc(k={"name": "a", "rate_limit": {"max_calls": 5}}), "rate_limit"),
        (tenants_doc(k={"name": "a", "typo": 1}), "unknown fields"),
        (tenants_doc(k={"name": "same"}, k2={"name": "same"}), "unique"),
    ])
    def test_malformed_documents_raise_typed_errors(self, payload, match):
        with pytest.raises(TenantConfigError, match=match):
            parse_tenants(payload)

    def test_valid_file_round_trips(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(tenants_doc(
            key_a={"name": "alice", "budget": 100,
                   "rate_limit": {"max_calls": 10, "window_seconds": 1.0}},
            key_b={"name": "bob"},
        )))
        registry = load_tenants(path)
        assert not registry.open
        assert len(registry) == 2
        assert registry.resolve("key_a").name == "alice"
        assert registry.resolve("key_b").budget.unlimited
        with pytest.raises(TenantAuthError, match="unknown"):
            registry.resolve("wrong")
        with pytest.raises(TenantAuthError, match="X-Api-Key"):
            registry.resolve(None)

    def test_open_registry_serves_anonymous_default(self):
        registry = TenantRegistry()
        assert registry.open
        assert registry.resolve(None).name == "public"
        assert registry.resolve("anything").name == "public"

    def test_wall_clock_refuses_to_advance(self):
        clock = WallClock()
        assert clock.now > 0
        with pytest.raises(RuntimeError, match="blocking=False"):
            clock.advance(1.0)


# ----------------------------------------------------------------------
# API-key auth and per-tenant enforcement over the wire
# ----------------------------------------------------------------------
class TestTenantEnforcement:
    @pytest.fixture()
    def clock(self):
        return SimulatedClock()

    @pytest.fixture()
    def server(self, backend, async_graph_server, clock):
        return async_graph_server(
            backend,
            tenants=tenants_doc(
                alice_key={"name": "alice", "budget": 5},
                bob_key={"name": "bob",
                         "rate_limit": {"max_calls": 2, "window_seconds": 10.0}},
            ),
            clock=clock,
        )

    def test_missing_and_unknown_keys_answer_401(self, server):
        for client in (
            AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0),
            AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0,
                                  api_key="wrong"),
        ):
            with client:
                with pytest.raises(RemoteBackendError) as excinfo:
                    client.info()
                assert excinfo.value.status == 401

    def test_budget_bills_unique_nodes_only(self, server, backend):
        ids = backend.node_ids()
        with AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0,
                                   api_key="alice_key") as alice:
            for node in ids[:5]:
                alice.fetch(node)
            # Revisits are free, exactly like the paper's unique-query cost.
            alice.fetch(ids[0])
            alice.fetch_many(ids[:5])
            with pytest.raises(QueryBudgetExceededError) as excinfo:
                alice.fetch(ids[5])
            assert excinfo.value.budget == 5
            assert excinfo.value.spent == 5
            # The denied fetch billed nothing and served nothing.
            stats = alice._request("GET", "/stats")["tenants"]["alice"]
            assert stats["budget"] == {"limit": 5, "spent": 5, "remaining": 0}
            assert stats["unique_nodes"] == 5
            assert stats["budget_denied"] == 1

    def test_batch_that_cannot_fit_bills_nothing(self, server, backend):
        ids = backend.node_ids()
        with AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0,
                                   api_key="alice_key") as alice:
            with pytest.raises(QueryBudgetExceededError):
                alice.fetch_many(ids[:7])  # 7 fresh > budget 5, refused whole
            stats = alice._request("GET", "/stats")["tenants"]["alice"]
            assert stats["budget"]["spent"] == 0
            assert stats["nodes_served"] == 0

    def test_rate_limit_answers_typed_429(self, server, backend, clock):
        ids = backend.node_ids()
        with AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0,
                                   api_key="bob_key") as bob:
            bob.fetch(ids[0])
            bob.fetch(ids[1])
            with pytest.raises(RateLimitExceededError) as excinfo:
                bob.fetch(ids[2])
            assert excinfo.value.retry_after == pytest.approx(10.0)
            # Free endpoints are never throttled.
            assert bob.contains(ids[2])
            assert bob.info()["nodes"] == len(backend)
            stats = bob._request("GET", "/stats")["tenants"]["bob"]
            assert stats["rate_limited"] == 1
            # The window rolls: advancing the simulated clock frees a slot.
            clock.advance(10.1)
            assert bob.fetch(ids[2]).node == ids[2]


# ----------------------------------------------------------------------
# POST /walk: whole walks in one round trip
# ----------------------------------------------------------------------
class TestServerSideWalks:
    @pytest.fixture(scope="class")
    def server(self, backend, async_graph_server):
        return async_graph_server(backend)

    def test_remote_walk_matches_client_driven_walk(
        self, server, backend, conformance_graph
    ):
        start = conformance_graph.nodes()[0]
        with AsyncHTTPGraphBackend(server.url, timeout=10.0) as client:
            payload = client.remote_walk(
                "srw", start, seed=GOLDEN_SEED, budget=GOLDEN_BUDGET
            )
        api = build_api(backend, budget=GOLDEN_BUDGET)
        local = make_walker("srw", api=api, seed=GOLDEN_SEED).run(
            start, max_steps=None
        )
        assert payload["path"] == local.path
        assert payload["unique_queries"] == local.unique_queries
        assert payload["total_queries"] == local.total_queries
        assert payload["steps"] == local.steps
        assert payload["stopped_by_budget"] is local.stopped_by_budget

    def test_walk_collapses_round_trips(self, server, conformance_graph):
        start = conformance_graph.nodes()[0]
        server.reset_stats()
        with AsyncHTTPGraphBackend(server.url, timeout=10.0) as client:
            client.remote_walk("srw", start, seed=GOLDEN_SEED,
                               budget=GOLDEN_BUDGET)
        assert server.endpoint_counts["/walk"] == 1
        assert server.endpoint_counts.get("/node", 0) == 0

    def test_walk_validates_kernel_start_and_shape(self, server):
        with AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0) as client:
            with pytest.raises(RemoteBackendError) as excinfo:
                client.remote_walk("no-such-kernel", 0, budget=5)
            assert excinfo.value.status == 400
            with pytest.raises(RemoteBackendError) as excinfo:
                client.remote_walk("srw", 0, steps=-3)
            assert excinfo.value.status == 400
            # A missing start node round-trips as the same typed error a
            # local walk raises, node id intact.
            with pytest.raises(NodeNotFoundError) as node_info:
                client.remote_walk("srw", "missing-node", budget=5)
            assert node_info.value.node == "missing-node"

    def test_threaded_server_has_no_walk_endpoint(self, backend, graph_server):
        threaded = graph_server(backend)
        with HTTPGraphBackend(threaded.url, timeout=5.0, retries=0) as client:
            with pytest.raises(RemoteBackendError, match="not an endpoint"):
                client.remote_walk("srw", 0, budget=5)

    def test_walk_bills_the_tenant_and_respects_its_budget(
        self, backend, async_graph_server, conformance_graph
    ):
        server = async_graph_server(
            backend, tenants=tenants_doc(key={"name": "carol", "budget": 70})
        )
        start = conformance_graph.nodes()[0]
        with AsyncHTTPGraphBackend(server.url, timeout=10.0, retries=0,
                                   api_key="key") as carol:
            first = carol.remote_walk("srw", start, seed=GOLDEN_SEED,
                                      budget=GOLDEN_BUDGET)
            assert first["unique_queries"] == GOLDEN_BUDGET
            stats = carol._request("GET", "/stats")["tenants"]["carol"]
            assert stats["walks"] == 1
            assert stats["budget"]["spent"] == GOLDEN_BUDGET
            assert stats["budget"]["remaining"] == 70 - GOLDEN_BUDGET
            # The next walk is capped by what's left (10), even though it
            # asks for 60 — the server clamps, walks, and bills the rest.
            second = carol.remote_walk("srw", start, seed=GOLDEN_SEED,
                                       budget=GOLDEN_BUDGET)
            assert second["unique_queries"] <= 10
            assert second["stopped_by_budget"] is True
            # Exhausted tenants get the typed 429 before any work happens.
            with pytest.raises(QueryBudgetExceededError):
                carol.remote_walk("srw", start, seed=GOLDEN_SEED)


# ----------------------------------------------------------------------
# GET /stats and the access log
# ----------------------------------------------------------------------
class TestObservability:
    def test_stats_shape_and_server_totals(self, backend, async_graph_server):
        server = async_graph_server(backend)
        with AsyncHTTPGraphBackend(server.url, timeout=5.0) as client:
            server.reset_stats()
            node = client.node_ids()[0]
            client.fetch(node)
            stats = client._request("GET", "/stats")
        assert stats["format"] == "repro-graph-http"
        assert stats["version"] == 1
        assert stats["server"] == "async"
        assert stats["endpoints"]["/node"] == 1
        assert stats["nodes_served"] == 1
        assert set(stats["tenants"]) == {"public"}
        public = stats["tenants"]["public"]
        assert public["budget"] is None and public["rate_limit"] is None

    def test_access_log_is_one_json_line_per_request(
        self, backend, async_graph_server, tmp_path
    ):
        log_path = tmp_path / "access.jsonl"
        server = async_graph_server(
            backend,
            tenants=tenants_doc(key={"name": "dora"}),
            access_log=log_path,
        )
        with AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0,
                                   api_key="key") as client:
            node = client.node_ids()[0]
            client.fetch(node)
        bad = AsyncHTTPGraphBackend(server.url, timeout=5.0, retries=0)
        with pytest.raises(RemoteBackendError):
            bad.info()
        bad.close()
        lines = [json.loads(line) for line in
                 log_path.read_text().splitlines()]
        assert len(lines) == 3
        assert {line["tenant"] for line in lines} == {"dora", None}
        fetch_line = next(line for line in lines
                          if line["path"].startswith("/node/"))
        assert fetch_line["status"] == 200
        assert fetch_line["nodes"] == 1
        assert fetch_line["ms"] >= 0
        denied = next(line for line in lines if line["tenant"] is None)
        assert denied["status"] == 401


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_url_exists_before_start_and_close_is_idempotent(self, backend):
        server = AsyncGraphServer(backend)
        assert server.url.startswith("http://127.0.0.1:")
        assert server in AsyncGraphServer.live_servers()
        server.close()
        server.close()
        assert server.closed
        assert server not in AsyncGraphServer.live_servers()

    def test_context_manager_starts_and_closes(self, backend):
        with AsyncGraphServer(backend) as server:
            with AsyncHTTPGraphBackend(server.url, timeout=5.0) as client:
                assert client.info()["server"] == "async"
        assert server.closed

    def test_start_twice_is_refused(self, backend):
        with AsyncGraphServer(backend) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_closed_server_refuses_start(self, backend):
        server = AsyncGraphServer(backend)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.start()

    def test_close_with_open_keepalive_connection_does_not_hang(self, backend):
        server = AsyncGraphServer(backend).start()
        client = AsyncHTTPGraphBackend(server.url, timeout=5.0)
        assert client.info()["nodes"] == len(backend)
        # The client's keep-alive socket is still open; close() must force it
        # shut rather than wait for the peer.
        server.close()
        assert server.closed
        client.close()
