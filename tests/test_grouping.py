"""Unit tests for GNRW grouping strategies."""

from __future__ import annotations

import pytest

from repro.api import GraphAPI
from repro.exceptions import InvalidConfigurationError
from repro.walks import make_grouping
from repro.walks.grouping import (
    AttributeValueGrouping,
    CallableGrouping,
    DegreeGrouping,
    ExplicitGrouping,
    HashGrouping,
    NumericBinGrouping,
)


class TestHashGrouping:
    def test_deterministic(self, api):
        grouping = HashGrouping(num_groups=3)
        assert grouping.group_of(1, api) == grouping.group_of(1, api)

    def test_group_range(self, api):
        grouping = HashGrouping(num_groups=3)
        for node in range(20):
            assert 0 <= grouping.group_of(node, api) < 3

    def test_invalid_num_groups(self):
        with pytest.raises(InvalidConfigurationError):
            HashGrouping(num_groups=0)

    def test_partition_is_disjoint_cover(self, api, attributed_graph):
        grouping = HashGrouping(num_groups=2)
        neighbors = attributed_graph.neighbors(0)
        partition = grouping.partition(neighbors, api)
        flattened = [node for members in partition.values() for node in members]
        assert sorted(flattened, key=repr) == sorted(neighbors, key=repr)


class TestAttributeValueGrouping:
    def test_groups_by_value(self, api):
        grouping = AttributeValueGrouping("city")
        assert grouping.group_of(0, api) == "austin"
        assert grouping.group_of(2, api) == "dallas"

    def test_missing_attribute_default(self, api):
        grouping = AttributeValueGrouping("nonexistent", default="none")
        assert grouping.group_of(0, api) == "none"

    def test_does_not_consume_budget(self, attributed_graph):
        api = GraphAPI(attributed_graph)
        grouping = AttributeValueGrouping("city")
        grouping.partition(attributed_graph.nodes(), api)
        assert api.unique_queries == 0


class TestNumericBinGrouping:
    def test_binning(self, api):
        grouping = NumericBinGrouping("age", bin_width=10.0)
        assert grouping.group_of(0, api) == 2   # age 20
        assert grouping.group_of(2, api) == 3   # age 30
        assert grouping.group_of(4, api) == 4   # age 40

    def test_minimum_offset(self, api):
        grouping = NumericBinGrouping("age", bin_width=10.0, minimum=20.0)
        assert grouping.group_of(0, api) == 0
        assert grouping.group_of(4, api) == 2

    def test_missing_attribute_goes_to_default_bin(self, api):
        grouping = NumericBinGrouping("reviews_count", default_bin=-1)
        assert grouping.group_of(0, api) == -1

    def test_non_numeric_attribute_goes_to_default_bin(self, api):
        grouping = NumericBinGrouping("city", default_bin=-5)
        assert grouping.group_of(0, api) == -5

    def test_invalid_bin_width(self):
        with pytest.raises(InvalidConfigurationError):
            NumericBinGrouping("age", bin_width=0.0)


class TestDegreeGrouping:
    def test_logarithmic_bins(self, api, attributed_graph):
        grouping = DegreeGrouping(logarithmic=True)
        for node in attributed_graph.nodes():
            expected = int(attributed_graph.degree(node)).bit_length()
            assert grouping.group_of(node, api) == expected

    def test_linear_bins(self, api, attributed_graph):
        grouping = DegreeGrouping(logarithmic=False, bin_width=2)
        for node in attributed_graph.nodes():
            assert grouping.group_of(node, api) == attributed_graph.degree(node) // 2

    def test_invalid_bin_width(self):
        with pytest.raises(InvalidConfigurationError):
            DegreeGrouping(logarithmic=False, bin_width=0)

    def test_does_not_consume_budget(self, attributed_graph):
        api = GraphAPI(attributed_graph)
        DegreeGrouping().partition(attributed_graph.nodes(), api)
        assert api.unique_queries == 0


class TestOtherStrategies:
    def test_callable_grouping(self, api):
        grouping = CallableGrouping(lambda node: node % 2, name="parity")
        assert grouping.group_of(4, api) == 0
        assert grouping.group_of(5, api) == 1
        assert grouping.name == "parity"

    def test_explicit_grouping(self, api):
        grouping = ExplicitGrouping({1: "x"}, default="other")
        assert grouping.group_of(1, api) == "x"
        assert grouping.group_of(99, api) == "other"


class TestFactory:
    def test_make_grouping_names(self):
        assert make_grouping("md5", num_groups=4).name == "md5-4"
        assert make_grouping("degree").name == "degree-log"
        assert make_grouping("attribute", attribute="city").name == "attr-city"
        assert make_grouping("numeric", attribute="age").name == "bin-age"

    def test_unknown_kind(self):
        with pytest.raises(InvalidConfigurationError):
            make_grouping("nope")


class TestPartitionWithoutMetadata:
    def test_falls_back_to_cache_then_default(self, attributed_graph):
        class NoPeekAPI:
            """An API without peek_metadata and without a cache."""

            def __init__(self, inner):
                self._inner = inner

            def query(self, node):
                return self._inner.query(node)

            @property
            def unique_queries(self):
                return self._inner.unique_queries

            @property
            def total_queries(self):
                return self._inner.total_queries

            def reset_counters(self):
                self._inner.reset_counters()

        api = NoPeekAPI(GraphAPI(attributed_graph))
        grouping = AttributeValueGrouping("city", default="unknown", prefetch=False)
        # Without metadata, cache or prefetch the strategy degrades gracefully.
        assert grouping.group_of(0, api) == "unknown"
        grouping_prefetch = AttributeValueGrouping("city", prefetch=True)
        assert grouping_prefetch.group_of(0, api) == "austin"
