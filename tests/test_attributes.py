"""Unit tests for synthetic attribute generation and homophily measurement."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    assign_categorical_attribute,
    assign_community_correlated_attribute,
    assign_degree_correlated_attribute,
    assign_homophilous_numeric_attribute,
    attribute_values,
    clustered_cliques_graph,
    complete_graph,
    make_attribute_measure,
    measured_homophily,
    planted_partition_graph,
    star_graph,
)


class TestDegreeCorrelatedAttribute:
    def test_values_scale_with_degree(self, small_star):
        values = assign_degree_correlated_attribute(small_star, name="score", scale=2.0, noise=0.0)
        assert values[0] == pytest.approx(2.0 * small_star.degree(0))
        assert values[1] == pytest.approx(2.0 * small_star.degree(1))
        assert small_star.attribute(0, "score") == values[0]

    def test_noise_reproducible(self, small_clique):
        a = assign_degree_correlated_attribute(small_clique.copy(), seed=3)
        b = assign_degree_correlated_attribute(small_clique.copy(), seed=3)
        assert a == b

    def test_minimum_clipping(self, small_star):
        values = assign_degree_correlated_attribute(
            small_star, scale=-5.0, noise=0.0, minimum=0.0
        )
        assert all(value >= 0.0 for value in values.values())

    def test_negative_noise_rejected(self, small_star):
        with pytest.raises(GraphError):
            assign_degree_correlated_attribute(small_star, noise=-1.0)


class TestCommunityCorrelatedAttribute:
    def test_community_means_separate(self):
        graph = clustered_cliques_graph((6, 6), seed=0)
        values = assign_community_correlated_attribute(
            graph, name="age", base=20.0, spread=30.0, noise=0.0, seed=1
        )
        community0 = [values[node] for node in graph.nodes() if graph.attribute(node, "community") == 0]
        community1 = [values[node] for node in graph.nodes() if graph.attribute(node, "community") == 1]
        assert max(community0) < min(community1)

    def test_missing_community_defaults_to_zero(self, small_clique):
        values = assign_community_correlated_attribute(small_clique, base=10.0, spread=5.0, noise=0.0)
        assert all(value == pytest.approx(10.0) for value in values.values())


class TestHomophilousAttribute:
    def test_smoothing_increases_homophily(self):
        graph = planted_partition_graph((25, 25), p_in=0.4, p_out=0.02, seed=7)
        rough = graph.copy()
        smooth = graph.copy()
        assign_homophilous_numeric_attribute(rough, name="x", smoothing_rounds=0, noise=0.0, seed=1)
        assign_homophilous_numeric_attribute(smooth, name="x", smoothing_rounds=5, noise=0.0, seed=1)
        assert measured_homophily(smooth, "x") > measured_homophily(rough, "x")

    def test_invalid_rounds(self, small_clique):
        with pytest.raises(GraphError):
            assign_homophilous_numeric_attribute(small_clique, smoothing_rounds=-1)


class TestCategoricalAttribute:
    def test_alignment_with_communities(self):
        graph = clustered_cliques_graph((10, 10), seed=0)
        values = assign_categorical_attribute(
            graph, name="city", categories=("a", "b"), homophily=1.0, seed=2
        )
        for node in graph.nodes():
            community = graph.attribute(node, "community")
            assert values[node] == ("a" if community == 0 else "b")

    def test_zero_homophily_uses_all_categories(self):
        graph = complete_graph(200)
        values = assign_categorical_attribute(
            graph, categories=("x", "y", "z"), community_attribute=None, homophily=0.0, seed=3
        )
        assert set(values.values()) == {"x", "y", "z"}

    def test_invalid_parameters(self, small_clique):
        with pytest.raises(GraphError):
            assign_categorical_attribute(small_clique, categories=())
        with pytest.raises(GraphError):
            assign_categorical_attribute(small_clique, homophily=1.5)


class TestCombineAttributes:
    def test_weighted_sum(self, attributed_graph):
        from repro.graphs import combine_attributes

        for node in attributed_graph.nodes():
            attributed_graph.set_attributes(node, base=10.0)
        values = combine_attributes(
            attributed_graph, name="blend", sources=("age", "base"), weights=(1.0, 2.0)
        )
        assert values[0] == pytest.approx(20 + 2 * 10)
        assert attributed_graph.attribute(0, "blend") == values[0]

    def test_missing_source_counts_as_zero(self, attributed_graph):
        from repro.graphs import combine_attributes

        values = combine_attributes(attributed_graph, name="c", sources=("age", "nope"))
        assert values[1] == pytest.approx(25.0)

    def test_minimum_clip(self, attributed_graph):
        from repro.graphs import combine_attributes

        values = combine_attributes(
            attributed_graph, name="neg", sources=("age",), weights=(-1.0,), minimum=0.0
        )
        assert all(value == 0.0 for value in values.values())

    def test_validation(self, attributed_graph):
        from repro.graphs import combine_attributes

        with pytest.raises(GraphError):
            combine_attributes(attributed_graph, name="x", sources=())
        with pytest.raises(GraphError):
            combine_attributes(attributed_graph, name="x", sources=("age",), weights=(1.0, 2.0))


class TestHomophilyMeasure:
    def test_perfect_homophily_on_clustered_graph(self):
        graph = clustered_cliques_graph((8, 8), seed=0)
        assign_community_correlated_attribute(graph, name="v", base=0.0, spread=100.0, noise=0.0)
        assert measured_homophily(graph, "v") > 0.9

    def test_no_homophily_on_constant_attribute(self, small_clique):
        for node in small_clique.nodes():
            small_clique.set_attributes(node, v=1.0)
        assert measured_homophily(small_clique, "v") == 0.0

    def test_requires_edges(self):
        from repro.graphs import Graph

        graph = Graph()
        graph.add_node(1, v=1.0)
        with pytest.raises(GraphError):
            measured_homophily(graph, "v")


class TestHelpers:
    def test_attribute_values_with_default(self, attributed_graph):
        values = attribute_values(attributed_graph, "age")
        assert values[0] == 20.0
        missing = attribute_values(attributed_graph, "height", default=-1.0)
        assert all(value == -1.0 for value in missing.values())

    def test_attribute_values_non_numeric(self, attributed_graph):
        values = attribute_values(attributed_graph, "city", default=0.0)
        assert all(value == 0.0 for value in values.values())

    def test_make_attribute_measure(self):
        measure = make_attribute_measure("age", default=-1.0)
        assert measure(0, {"age": 33}) == 33.0
        assert measure(0, {}) == -1.0
        assert measure(0, {"age": "not-a-number"}) == -1.0
        assert measure.__name__ == "measure_age"
