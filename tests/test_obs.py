"""Telemetry tests: the metrics registry, wire tracing and /metrics.

The :mod:`repro.obs` subsystem is opt-in and must be invisible when off —
these tests pin both halves:

* registry semantics (counters, gauges, fixed-bucket histograms, Prometheus
  text exposition, atomic reset against concurrent scrapes),
* the ``repro-trace/1`` codec (malformed values are ignored, never refused),
* end-to-end propagation: one traced run produces ONE trace tree whose
  client spans nest the servers' echoed spans — through retries (the trace
  id survives, each retry gets its own span), through replica failover
  (the span records which replicas were tried) and through a live
  replicated cluster's fan-out,
* the scrape surface: ``GET /metrics`` parses as Prometheus text on both
  frontends and ``GET /stats`` serves the same shape from both,
* determinism: a traced walk is bit-identical to an untraced one.
"""

from __future__ import annotations

import json
import threading

import pytest

import repro.obs as obs
from repro.api import (
    HTTPGraphBackend,
    InMemoryBackend,
    SamplingSession,
)
from repro.cluster import HashRing, ShardedBackend
from repro.exceptions import NodeNotFoundError, ShardError
from repro.graphs import load_dataset
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_span_echo,
    format_trace_header,
    parse_span_echo,
    parse_trace_header,
    render_trace_tree,
)

from fakes import FlakyBackend, FlakyHTTPHandler


def tenants_doc(**tenants):
    return {"format": "repro-graph-tenants", "version": 1, "tenants": tenants}


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Telemetry is process-global state; leave none behind."""
    yield
    obs.disable_telemetry()
    obs.activate_tracer(None)
    obs.global_registry().reset()


@pytest.fixture(scope="module")
def obs_graph():
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def obs_backend(obs_graph):
    return InMemoryBackend(obs_graph)


def parse_prometheus(text: str):
    """Minimal scrape parser: {metric_or_series: float}, plus TYPE lines.

    Raises on anything that is not valid text exposition — the test's way
    of proving /metrics parses.
    """
    values, types = {}, {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        assert series, f"unparseable sample line: {line!r}"
        values[series] = float(value)  # raises on malformed samples
    return values, types


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", endpoint="/node")
        registry.inc("requests_total", 2, endpoint="/node")
        registry.inc("requests_total", endpoint="/info")
        registry.set_gauge("walkers", 8)
        assert registry.value("requests_total", endpoint="/node") == 3
        assert registry.value("requests_total", endpoint="/info") == 1
        assert registry.value("requests_total", endpoint="/never") == 0.0
        assert registry.value("walkers") == 8

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            registry.observe("latency_ms", value)
        snapshot = registry.histogram("latency_ms")
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(555.5)
        assert snapshot["buckets"] == {"1": 1, "10": 2, "100": 3, "+Inf": 4}
        assert registry.histogram("never_observed") is None

    def test_injectable_clock_pins_timed_blocks(self):
        ticks = iter([0.0, 0.25])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.time("block_ms"):
            pass
        assert registry.histogram("block_ms")["sum"] == pytest.approx(250.0)

    def test_histogram_family_slices_one_label(self):
        registry = MetricsRegistry()
        registry.observe("req_ms", 1.0, endpoint="/node", region="a")
        registry.observe("req_ms", 2.0, endpoint="/info", region="a")
        registry.observe("other_ms", 3.0, endpoint="/meta")
        family = registry.histogram_family("req_ms", "endpoint")
        assert set(family) == {"/node", "/info"}
        assert family["/node"]["count"] == 1

    def test_prometheus_rendering_parses(self):
        registry = MetricsRegistry()
        registry.describe("requests_total", "requests by endpoint")
        registry.inc("requests_total", endpoint='with"quote')
        registry.set_gauge("temperature", -2.5)
        registry.observe("latency_ms", 7.0)
        text = registry.render_prometheus()
        values, types = parse_prometheus(text)
        assert "# HELP requests_total requests by endpoint" in text
        assert types == {"requests_total": "counter", "temperature": "gauge",
                         "latency_ms": "histogram"}
        assert values['requests_total{endpoint="with\\"quote"}'] == 1
        assert values["temperature"] == -2.5
        assert values["latency_ms_count"] == 1
        assert values["latency_ms_sum"] == 7.0
        assert values['latency_ms_bucket{le="+Inf"}'] == 1
        # An empty registry renders to the empty exposition, not junk.
        assert MetricsRegistry().render_prometheus() == ""

    def test_reset_drops_values_keeps_declarations(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency_ms", buckets=(5.0,))
        registry.inc("requests_total")
        registry.observe("latency_ms", 1.0)
        registry.reset()
        assert registry.value("requests_total") == 0.0
        assert registry.histogram("latency_ms") is None
        registry.observe("latency_ms", 1.0)
        assert registry.histogram("latency_ms")["buckets"] == {"5": 1, "+Inf": 1}

    def test_metrics_guard_is_none_while_disabled(self):
        assert obs.metrics() is None
        with obs.telemetry() as registry:
            assert obs.metrics() is registry is obs.global_registry()
        assert obs.metrics() is None


# ----------------------------------------------------------------------
# Wire codec (repro-trace/1)
# ----------------------------------------------------------------------
class TestTraceCodec:
    def test_trace_header_round_trip(self):
        header = format_trace_header("ab12", "cd34")
        assert header.startswith("repro-trace/1;")
        assert parse_trace_header(header) == ("ab12", "cd34")

    @pytest.mark.parametrize("value", [
        None, "", "garbage", "repro-trace/2; trace=ab; span=cd",
        "repro-trace/1; trace=XYZ; span=cd12",      # non-hex id
        "repro-trace/1; trace=ab12",                # missing span
        "repro-trace/1; trace=; span=",
        "repro-graph-http/1; trace=ab; span=cd",    # wrong format token
    ])
    def test_malformed_trace_headers_are_ignored(self, value):
        assert parse_trace_header(value) is None

    def test_span_echo_round_trip(self):
        echo = parse_span_echo(
            format_span_echo("ab12", "cd34", "ef56", 12.3456, "server/node")
        )
        assert echo == {"trace": "ab12", "span": "cd34", "parent": "ef56",
                        "ms": pytest.approx(12.346), "op": "server/node"}

    def test_span_echo_op_is_sanitised_and_ms_tolerated(self):
        value = format_span_echo("ab", "cd", "ef", 1.0, "bad op\r\nInjected: x")
        assert "\r" not in value and "\n" not in value
        assert parse_span_echo(value)["op"] == "badopInjectedx"
        assert parse_span_echo("repro-trace/1; trace=ab; span=cd; ms=junk")["ms"] == 0.0
        assert parse_span_echo("repro-trace/1; span=cd") is None


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_share_one_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert all(span.duration_ms is not None for span in spans)
        assert tracer.trace_ids() == [outer.trace_id]

    def test_scope_adopts_context_across_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            context = tracer.current()

            def worker():
                with tracer.scope(*context):
                    with tracer.span("child", kind="shard"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        child = next(s for s in tracer.spans() if s.name == "child")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_export_and_render_tree(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        tracer.record_echo(parse_span_echo(
            format_span_echo("9999", "8888", "7777", 3.0, "server/node")
        ))
        spans = [json.loads(line) for line in tracer.export_jsonl().splitlines()]
        tree = render_trace_tree(spans)
        # Two traces: the local parent/child pair and the orphaned echo,
        # which attaches at its trace's root instead of vanishing.
        assert tree.count("trace ") == 2
        assert "    [client] child" in tree
        assert "[server] server/node 3.000ms remote=True" in tree

    def test_maybe_span_is_a_noop_without_a_tracer(self):
        with obs.maybe_span("anything") as span:
            assert span is None
        tracer = Tracer()
        with obs.use_tracer(tracer):
            with obs.maybe_span("traced", kind="shard") as span:
                assert span is not None
        assert [s.name for s in tracer.spans()] == ["traced"]


# ----------------------------------------------------------------------
# Trace propagation through HTTP retries
# ----------------------------------------------------------------------
class TestRetryTracing:
    def test_retried_request_keeps_trace_id_with_per_attempt_spans(
        self, obs_backend, graph_server
    ):
        server = graph_server(obs_backend, handler_class=FlakyHTTPHandler)
        from collections import deque

        server.fault_plan = deque(["500", "500"])  # first fetch fails twice
        node = obs_backend.node_ids()[0]
        tracer = Tracer()
        with HTTPGraphBackend(server.url, retries=3, backoff=0.0,
                              sleep=lambda _: None) as client:
            with obs.use_tracer(tracer):
                record = client.fetch(node)
        assert record.node == node
        spans = tracer.spans()
        assert len({span.trace_id for span in spans}) == 1
        request = next(s for s in spans if s.name == "client.request")
        # The first attempt rides the request span itself (the common case
        # pays for exactly one span); each *retry* gets its own child span.
        attempts = [s for s in spans if s.name == "client.attempt"]
        assert [s.tags["attempt"] for s in attempts] == [2, 3]
        assert all(s.parent_id == request.span_id for s in attempts)
        assert request.tags["transient"]  # the first 500 is recorded on it
        # Every attempt that reached the server got an echo — including the
        # injected 500s — and each hangs off the span whose context was on
        # the wire for that attempt.
        echoes = [s for s in spans if s.kind == "server"]
        assert len(echoes) == 3
        wire_spans = [request.span_id] + [a.span_id for a in attempts]
        assert [e.parent_id for e in echoes] == wire_spans
        assert all(e.trace_id == request.trace_id for e in echoes)

    def test_retry_metrics_count_attempts(self, obs_backend, graph_server):
        server = graph_server(obs_backend, handler_class=FlakyHTTPHandler)
        from collections import deque

        server.fault_plan = deque(["500"])
        node = obs_backend.node_ids()[0]
        with obs.telemetry() as registry:
            with HTTPGraphBackend(server.url, retries=2, backoff=0.0,
                                  sleep=lambda _: None) as client:
                client.fetch(node)
        assert registry.value("repro_http_retries_total", endpoint="/node") == 1
        assert registry.value("repro_http_requests_total", endpoint="/node") == 1


# ----------------------------------------------------------------------
# Trace + metrics through replica failover
# ----------------------------------------------------------------------
class TestFailoverTracing:
    @pytest.fixture()
    def replicated(self, obs_backend):
        """A 2-replica cluster whose shard 0 storage always fails."""
        ring = HashRing(3)
        backends = [
            FlakyBackend(obs_backend, plan=[RuntimeError("disk died")] * 1000),
            obs_backend,
            obs_backend,
        ]
        cluster = ShardedBackend(backends, ring, replicas=2)
        yield cluster

    def test_failover_span_records_replicas_tried(self, replicated, obs_backend):
        node = next(
            node for node in obs_backend.node_ids()
            if replicated.shards_of(node)[0] == 0
        )
        tracer = Tracer()
        with obs.telemetry() as registry:
            with obs.use_tracer(tracer):
                record = replicated.fetch(node)
        assert record == obs_backend.fetch(node)
        span = next(s for s in tracer.spans() if s.name == "cluster.read")
        tried = span.tags["replicas_tried"]
        # The dead primary was tried first, then the surviving replica.
        assert len(tried) == 2
        assert tried[0] == replicated._labels[0]
        assert span.tags["shard"] == tried[-1] != tried[0]
        dead_label = replicated._labels[0]
        assert registry.value(
            "repro_shard_failover_reads_total", shard=dead_label) == 1
        assert registry.value(
            "repro_shard_dead_marks_total", shard=dead_label) == 1

    def test_exhausted_replicas_tag_the_error_span(self, obs_backend):
        ring = HashRing(2)
        flaky = FlakyBackend(obs_backend, plan=[RuntimeError("down")] * 1000)
        cluster = ShardedBackend([flaky, flaky], ring, replicas=2)
        tracer = Tracer()
        with obs.use_tracer(tracer):
            with pytest.raises(ShardError):
                cluster.fetch(obs_backend.node_ids()[0])
        span = next(s for s in tracer.spans() if s.name == "cluster.read")
        assert span.tags["error"] is True
        assert len(span.tags["replicas_tried"]) == 2

    def test_node_miss_is_not_a_failover(self, obs_backend):
        cluster = ShardedBackend([obs_backend, obs_backend], HashRing(2),
                                 replicas=2)
        tracer = Tracer()
        with obs.telemetry() as registry:
            with obs.use_tracer(tracer):
                with pytest.raises(NodeNotFoundError):
                    cluster.fetch("no-such-node")
        span = next(s for s in tracer.spans() if s.name == "cluster.read")
        assert len(span.tags["replicas_tried"]) == 1
        assert registry.value("repro_shard_failover_reads_total",
                              shard=cluster._labels[0]) == 0


# ----------------------------------------------------------------------
# The scrape surface: /metrics and /stats on both frontends
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_threaded_metrics_parse_and_count(self, obs_backend, graph_server):
        server = graph_server(obs_backend)
        node = obs_backend.node_ids()[0]
        with HTTPGraphBackend(server.url, timeout=5.0) as client:
            client.fetch(node)
            client.info()
        values, types = parse_prometheus(server.metrics.render_prometheus())
        assert types["repro_server_requests_total"] == "counter"
        assert values['repro_server_requests_total{endpoint="/node",status="200"}'] == 1
        assert values['repro_server_request_ms_count{endpoint="/node"}'] == 1
        assert values["repro_server_nodes_served_total"] >= 1

    def test_async_metrics_parse_and_count(self, obs_backend, async_graph_server):
        import urllib.request

        from repro.api import AsyncHTTPGraphBackend

        server = async_graph_server(obs_backend)
        node = obs_backend.node_ids()[0]
        with AsyncHTTPGraphBackend(server.url, timeout=5.0) as client:
            client.fetch(node)
        scrape = urllib.request.urlopen(
            server.url + "/metrics", timeout=5.0).read().decode()
        values, types = parse_prometheus(scrape)
        assert types["repro_server_requests_total"] == "counter"
        assert values['repro_server_requests_total{endpoint="/node",status="200"}'] == 1

    def test_both_frontends_serve_the_same_stats_shape(
        self, obs_backend, graph_server, async_graph_server
    ):
        threaded = graph_server(obs_backend)
        aio = async_graph_server(obs_backend)
        node = obs_backend.node_ids()[0]
        payloads = {}
        for kind, server in (("threaded", threaded), ("async", aio)):
            with HTTPGraphBackend(server.url, timeout=5.0) as client:
                client.fetch(node)
                payloads[kind] = client._request("GET", "/stats")
        assert set(payloads["threaded"]) == set(payloads["async"])
        for kind, payload in payloads.items():
            assert payload["server"] == kind
            assert payload["endpoints"]["/node"] == 1
            latency = payload["latency"]["endpoints"]["/node"]
            assert latency["count"] == 1 and latency["sum"] >= 0

    def test_reset_stats_clears_registry_and_tenants_atomically(
        self, obs_backend, async_graph_server
    ):
        """reset_stats versus a scrape storm: every scrape sees either the
        pre-reset registry or a fully empty one — never a torn mix — and
        per-tenant usage resets in the same critical section."""
        import urllib.request

        server = async_graph_server(
            obs_backend, tenants=tenants_doc(key={"name": "erin"})
        )
        node = obs_backend.node_ids()[0]
        with HTTPGraphBackend(server.url, timeout=5.0,
                              api_key="key") as client:
            client.fetch(node)
            stop = threading.Event()
            torn: list = []

            def scraper():
                while not stop.is_set():
                    request = urllib.request.Request(
                        server.url + "/metrics",
                        headers={"X-Api-Key": "key"},
                    )
                    text = urllib.request.urlopen(
                        request, timeout=5.0).read().decode()
                    values, _ = parse_prometheus(text)
                    requests = [v for k, v in values.items()
                                if k.startswith("repro_server_request_ms_count")]
                    sums = [v for k, v in values.items()
                            if k.startswith("repro_server_request_ms_sum")]
                    # Torn state: a histogram with counts but no sum series
                    # (or vice versa) would mean reset caught mid-render.
                    if bool(requests) != bool(sums):
                        torn.append(text)

            threads = [threading.Thread(target=scraper) for _ in range(2)]
            for thread in threads:
                thread.start()
            try:
                for _ in range(20):
                    client.fetch(node)
                    server.reset_stats()
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert not torn
            server.reset_stats()
            stats = client._request("GET", "/stats")
        # Only the /stats request itself may have been counted post-reset.
        assert set(stats["endpoints"]) <= {"/stats"}
        assert set(stats["latency"]["endpoints"]) <= {"/stats"}
        assert set(stats["tenants"]["erin"]["endpoints"]) <= {"/stats"}
        assert stats["tenants"]["erin"]["nodes_served"] == 0

    def test_threaded_reset_stats_clears_metrics(self, obs_backend, graph_server):
        server = graph_server(obs_backend)
        with HTTPGraphBackend(server.url, timeout=5.0) as client:
            client.fetch(obs_backend.node_ids()[0])
            server.reset_stats()
            stats = client._request("GET", "/stats")
            # Only the /stats request itself has been counted since the reset.
            assert set(stats["endpoints"]) <= {"/stats"}
            assert stats["nodes_served"] == 0


# ----------------------------------------------------------------------
# The access log satellite
# ----------------------------------------------------------------------
class TestAccessLog:
    def test_entries_carry_duration_status_and_trace_id(
        self, obs_backend, async_graph_server, tmp_path
    ):
        log_path = tmp_path / "access.jsonl"
        server = async_graph_server(obs_backend, access_log=log_path)
        node = obs_backend.node_ids()[0]
        tracer = Tracer()
        with HTTPGraphBackend(server.url, timeout=5.0) as client:
            with obs.use_tracer(tracer):
                client.fetch(node)   # traced: carries X-Repro-Trace
            client.info()            # untraced: no trace_id in the entry
        # Line-buffered: the entries reach disk while the server still runs
        # (the server logs just after responding, so poll briefly).
        import time as _time

        deadline = _time.monotonic() + 5.0
        while _time.monotonic() < deadline:
            lines = [json.loads(line) for line in
                     log_path.read_text().splitlines()]
            if len(lines) >= 2:
                break
            _time.sleep(0.01)
        assert len(lines) == 2
        traced = next(line for line in lines if line["path"].startswith("/node/"))
        assert traced["status"] == 200
        assert traced["duration_ms"] >= 0
        assert traced["trace_id"] == tracer.trace_ids()[0]
        untraced = next(line for line in lines if line["path"] == "/info")
        assert "trace_id" not in untraced
        assert untraced["duration_ms"] >= 0


# ----------------------------------------------------------------------
# End-to-end: one ensemble against a live replicated cluster
# ----------------------------------------------------------------------
class TestEndToEndClusterTrace:
    @pytest.fixture()
    def live_cluster_url(self, obs_graph, graph_server, tmp_path_factory):
        from repro.cluster import load_shard, partition_snapshot
        from repro.storage import save_snapshot

        base = tmp_path_factory.mktemp("obs-cluster")
        snapshot = save_snapshot(obs_graph, base / "snap")
        parts = partition_snapshot(snapshot, base / "parts", shards=3,
                                   replicas=2)
        servers = [
            graph_server(load_shard(parts / f"shard-{shard:02d}"))
            for shard in range(3)
        ]
        return "cluster://" + ",".join(
            server.url.removeprefix("http://") for server in servers
        )

    def test_one_ensemble_yields_one_trace_tree(self, live_cluster_url, tmp_path):
        session = (
            SamplingSession(live_cluster_url, seed=3)
            .budget(80)
            .walker("cnrw", seed=3)
            .telemetry()
        )
        session.run_ensemble(num_walks=4, steps=30)
        out = tmp_path / "trace.jsonl"
        exported = session.trace_export(out)
        spans = [json.loads(line) for line in exported.splitlines()]
        assert out.read_text() == exported
        # ONE correlated tree: every span of the ensemble shares a trace id.
        assert len({span["trace_id"] for span in spans}) == 1
        kinds = {span["kind"] for span in spans}
        assert {"session", "client", "server", "shard"} <= kinds
        root = next(s for s in spans if s["kind"] == "session")
        assert root["name"] == "session.ensemble"
        assert root["parent_id"] is None
        # Shard fan-out spans stay inside the tree even though they run on
        # pool worker threads.
        shard_spans = [s for s in spans if s["name"] == "shard.fetch"]
        assert shard_spans
        assert all(s["trace_id"] == root["trace_id"] for s in shard_spans)
        # Server echoes crossed the wire back into the client's tree.
        assert any(s["tags"].get("remote") for s in spans
                   if s["kind"] == "server")
        tree = render_trace_tree(spans)
        assert tree.startswith(f"trace {root['trace_id']}")
        assert "session.ensemble" in tree

    def test_cli_trace_pretty_prints_an_export(self, live_cluster_url, tmp_path,
                                               capsys):
        from repro.cli import main

        session = (
            SamplingSession(live_cluster_url, seed=3)
            .budget(40)
            .walker("srw", seed=3)
            .telemetry()
        )
        session.run(max_steps=20)
        out = tmp_path / "trace.jsonl"
        session.trace_export(out)
        assert main(["trace", str(out)]) == 0
        printed = capsys.readouterr().out
        assert printed.startswith("trace ")
        assert "session.run" in printed
        assert main(["trace", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Telemetry must not change results
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_traced_walk_is_bit_identical_to_untraced(self, obs_graph):
        def run(traced: bool):
            session = (
                SamplingSession(obs_graph, seed=11)
                .budget(120)
                .walker("cnrw", seed=11)
            )
            if traced:
                session.telemetry()
            result = session.run(max_steps=80)
            return result.path, result.unique_queries, result.total_queries

        untraced = run(False)
        traced = run(True)
        assert traced == untraced

    def test_trace_export_requires_telemetry(self, obs_graph):
        session = SamplingSession(obs_graph, seed=1)
        with pytest.raises(ValueError, match="telemetry"):
            session.trace_export()

    def test_session_telemetry_off_switch(self, obs_graph):
        session = SamplingSession(obs_graph, seed=1).telemetry()
        assert session.tracer is not None
        session.telemetry(False)
        assert session.tracer is None


# ----------------------------------------------------------------------
# Scheduler / engine metrics
# ----------------------------------------------------------------------
class TestEngineMetrics:
    def test_scalar_ensemble_reports_rounds_and_dedupe(self, obs_graph):
        with obs.telemetry() as registry:
            session = (
                SamplingSession(obs_graph, seed=5)
                .budget(100)
                .walker("cnrw", seed=5)
            )
            session.run_ensemble(num_walks=4, steps=40)
        rounds = registry.histogram("repro_scheduler_round_ms")
        assert rounds is not None and rounds["count"] >= 1
        frontier = registry.histogram("repro_scheduler_frontier_size")
        assert frontier["count"] == rounds["count"]
        total = registry.value("repro_scheduler_total_queries")
        unique = registry.value("repro_scheduler_unique_queries")
        assert total >= unique > 0
        assert registry.value("repro_scheduler_dedupe_ratio") == pytest.approx(
            1.0 - unique / total
        )

    def test_vector_ensemble_reports_walkers_and_rounds(self, obs_graph):
        with obs.telemetry() as registry:
            session = (
                SamplingSession(obs_graph, seed=5)
                .backend("csr")
                .walker("cnrw", seed=5)
            )
            session.run_ensemble(num_walks=64, steps=20, mode="vector")
        assert registry.value("repro_vector_walkers") == 64
        rounds = registry.histogram("repro_vector_round_ms")
        assert rounds is not None and rounds["count"] >= 1
        assert registry.value("repro_vector_total_queries") >= registry.value(
            "repro_vector_unique_queries"
        )

    def test_cache_and_warehouse_metrics(self, obs_graph, tmp_path):
        from repro.warehouse import CrawlWarehouse

        with obs.telemetry() as registry:
            session = (
                SamplingSession(obs_graph, seed=5)
                .budget(60)
                .walker("cnrw", seed=5)
            )
            session.run(max_steps=100)
            hits = registry.value("repro_cache_hits_total")
            misses = registry.value("repro_cache_misses_total")
            assert misses > 0
            # CNRW revisits: the cache must have absorbed some repeats.
            assert hits > 0
            warehouse = CrawlWarehouse.create(tmp_path / "wh.sqlite")
            try:
                report = warehouse.ingest(InMemoryBackend(obs_graph))
            finally:
                warehouse.close()
            assert registry.value("repro_warehouse_ingests_total") == 1
            assert registry.value(
                "repro_warehouse_ingest_records_total") == report.records
            assert registry.histogram("repro_warehouse_ingest_ms")["count"] == 1
