"""Unit tests for variance / autocorrelation diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation import (
    asymptotic_variance_across_chains,
    asymptotic_variance_estimate,
    autocorrelation,
    autocovariance,
    batch_means_variance,
    effective_sample_size,
    integrated_autocorrelation_time,
    mean_squared_error,
    running_means,
)
from repro.exceptions import InsufficientSamplesError


@pytest.fixture
def iid_series():
    return np.random.default_rng(0).normal(0.0, 1.0, size=2000)


@pytest.fixture
def correlated_series():
    rng = np.random.default_rng(1)
    values = [0.0]
    for _ in range(1999):
        values.append(0.9 * values[-1] + rng.normal(0.0, 1.0))
    return np.asarray(values)


class TestAutocovariance:
    def test_lag_zero_is_variance(self, iid_series):
        assert autocovariance(iid_series, 0) == pytest.approx(iid_series.var(), rel=1e-6)

    def test_iid_lag_one_near_zero(self, iid_series):
        assert abs(autocorrelation(iid_series, 1)) < 0.1

    def test_ar1_autocorrelation_positive(self, correlated_series):
        assert autocorrelation(correlated_series, 1) > 0.8

    def test_constant_series(self):
        assert autocorrelation([5.0] * 100, 3) == 0.0

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            autocovariance([1.0, 2.0, 3.0], -1)
        with pytest.raises(InsufficientSamplesError):
            autocovariance([1.0, 2.0], 5)


class TestIntegratedAutocorrelationTime:
    def test_iid_tau_near_one(self, iid_series):
        assert integrated_autocorrelation_time(iid_series) == pytest.approx(1.0, abs=0.5)

    def test_correlated_tau_large(self, correlated_series):
        assert integrated_autocorrelation_time(correlated_series) > 5.0

    def test_constant_series(self):
        assert integrated_autocorrelation_time([1.0] * 50) == 1.0

    def test_too_short(self):
        with pytest.raises(InsufficientSamplesError):
            integrated_autocorrelation_time([1.0, 2.0])


class TestEffectiveSampleSize:
    def test_iid_ess_near_n(self, iid_series):
        assert effective_sample_size(iid_series) > 0.7 * len(iid_series)

    def test_correlated_ess_much_smaller(self, correlated_series):
        assert effective_sample_size(correlated_series) < 0.3 * len(correlated_series)

    def test_tiny_series(self):
        assert effective_sample_size([1.0, 2.0]) == 2.0

    def test_empty_series(self):
        with pytest.raises(InsufficientSamplesError):
            effective_sample_size([])


class TestBatchMeans:
    def test_iid_matches_classical_variance(self, iid_series):
        classical = iid_series.var(ddof=1) / len(iid_series)
        batched = batch_means_variance(iid_series, num_batches=20)
        assert batched == pytest.approx(classical, rel=0.6)

    def test_correlated_variance_larger_than_classical(self, correlated_series):
        classical = correlated_series.var(ddof=1) / len(correlated_series)
        batched = batch_means_variance(correlated_series, num_batches=20)
        assert batched > classical

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            batch_means_variance([1.0] * 100, num_batches=1)
        with pytest.raises(InsufficientSamplesError):
            batch_means_variance([1.0, 2.0, 3.0], num_batches=10)


class TestAsymptoticVariance:
    def test_iid_close_to_population_variance(self, iid_series):
        estimate = asymptotic_variance_estimate(iid_series)
        assert estimate == pytest.approx(1.0, rel=0.6)

    def test_across_chains_estimator(self):
        rng = np.random.default_rng(3)
        chain_length = 400
        chain_means = [rng.normal(0.0, 1.0, chain_length).mean() for _ in range(200)]
        estimate = asymptotic_variance_across_chains(chain_means, chain_length)
        assert estimate == pytest.approx(1.0, rel=0.4)

    def test_across_chains_validation(self):
        with pytest.raises(InsufficientSamplesError):
            asymptotic_variance_across_chains([1.0], 100)
        with pytest.raises(ValueError):
            asymptotic_variance_across_chains([1.0, 2.0], 0)


class TestHelpers:
    def test_mean_squared_error(self):
        assert mean_squared_error([2.0, 4.0], truth=3.0) == pytest.approx(1.0)
        with pytest.raises(InsufficientSamplesError):
            mean_squared_error([], truth=0.0)

    def test_running_means(self):
        assert running_means([1.0, 3.0, 5.0]) == [1.0, 2.0, 3.0]
        assert running_means([]) == []
