"""Behavioural tests for each random-walk algorithm."""

from __future__ import annotations

import pytest

from repro.api import GraphAPI
from repro.exceptions import InvalidConfigurationError
from repro.graphs import Graph, barbell_graph, complete_graph, cycle_graph, star_graph
from repro.walks import (
    CirculatedNeighborsRandomWalk,
    GroupByNeighborsRandomWalk,
    HashGrouping,
    MetropolisHastingsRandomWalk,
    NonBacktrackingCNRW,
    NonBacktrackingRandomWalk,
    SimpleRandomWalk,
    WeightedRandomWalk,
)
from repro.walks.grouping import ExplicitGrouping


class TestSimpleRandomWalk:
    def test_only_visits_neighbors(self, attributed_graph):
        walk = SimpleRandomWalk(GraphAPI(attributed_graph), seed=0)
        result = walk.run(0, max_steps=100)
        for u, v in zip(result.path, result.path[1:]):
            assert attributed_graph.has_edge(u, v)

    def test_uniform_neighbor_choice(self):
        # From the hub of a star every leaf should be chosen roughly equally.
        graph = star_graph(4)
        walk = SimpleRandomWalk(GraphAPI(graph), seed=1)
        counts = {leaf: 0 for leaf in range(1, 5)}
        result = walk.run(0, max_steps=2000)
        for u, v in zip(result.path, result.path[1:]):
            if u == 0:
                counts[v] += 1
        total = sum(counts.values())
        for leaf_count in counts.values():
            assert leaf_count / total == pytest.approx(0.25, abs=0.05)


class TestMHRW:
    def test_self_transitions_allowed(self, facebook_small):
        walk = MetropolisHastingsRandomWalk(GraphAPI(facebook_small), seed=0)
        result = walk.run(facebook_small.nodes()[0], max_steps=300)
        self_loops = sum(1 for u, v in zip(result.path, result.path[1:]) if u == v)
        assert self_loops > 0

    def test_moves_stay_on_edges_or_self(self, facebook_small):
        walk = MetropolisHastingsRandomWalk(GraphAPI(facebook_small), seed=1)
        result = walk.run(facebook_small.nodes()[0], max_steps=200)
        for u, v in zip(result.path, result.path[1:]):
            assert u == v or facebook_small.has_edge(u, v)

    def test_regular_graph_never_rejects(self):
        # On a clique all degrees are equal, so acceptance is always 1.
        graph = complete_graph(5)
        walk = MetropolisHastingsRandomWalk(GraphAPI(graph), seed=2)
        result = walk.run(0, max_steps=200)
        assert all(u != v for u, v in zip(result.path, result.path[1:]))

    def test_visits_low_degree_nodes_more_than_srw(self):
        # MHRW targets the uniform distribution, so relative to SRW it must
        # spend more time on the low-degree leaves of a star.
        graph = star_graph(8)
        mhrw = MetropolisHastingsRandomWalk(GraphAPI(graph), seed=3)
        srw = SimpleRandomWalk(GraphAPI(graph), seed=3)
        mhrw_path = mhrw.run(0, max_steps=3000).path
        srw_path = srw.run(0, max_steps=3000).path
        mhrw_leaf_fraction = sum(1 for node in mhrw_path if node != 0) / len(mhrw_path)
        srw_leaf_fraction = sum(1 for node in srw_path if node != 0) / len(srw_path)
        assert mhrw_leaf_fraction > srw_leaf_fraction


class TestNBSRW:
    def test_never_backtracks_when_alternatives_exist(self, facebook_small):
        walk = NonBacktrackingRandomWalk(GraphAPI(facebook_small), seed=0)
        result = walk.run(facebook_small.nodes()[0], max_steps=300)
        path = result.path
        for i in range(2, len(path)):
            if facebook_small.degree(path[i - 1]) > 1:
                assert path[i] != path[i - 2]

    def test_backtracks_on_degree_one_nodes(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        walk = NonBacktrackingRandomWalk(GraphAPI(graph), seed=1)
        result = walk.run(0, max_steps=10)
        # From node 0 (degree 1) the only move is back to 1.
        assert result.path[:2] == [0, 1]
        assert 0 in result.path[2:] or 2 in result.path[2:]


class TestCNRW:
    def test_circulation_covers_all_neighbors(self):
        """After u->v is traversed k(v) times, every neighbor has been used."""
        graph = star_graph(5)  # hub 0 with leaves 1..5
        walk = CirculatedNeighborsRandomWalk(GraphAPI(graph), seed=0)
        result = walk.run(1, max_steps=10 * 2)  # path alternates leaf-hub
        # Outgoing choices after the edge (1 -> 0) and subsequent (x -> 0):
        # the first 5 departures from the hub after arriving from leaf 1 must
        # be distinct leaves before any repetition occurs.
        departures_after = {}
        path = result.path
        for i in range(1, len(path) - 1):
            if path[i] == 0:
                incoming = path[i - 1]
                departures_after.setdefault(incoming, []).append(path[i + 1])
        for incoming, departures in departures_after.items():
            first_cycle = departures[:5]
            assert len(set(first_cycle)) == len(first_cycle)

    def test_no_repeat_before_full_circulation_invariant(self, facebook_small):
        """For every directed edge, outgoing choices never repeat within a round."""
        walk = CirculatedNeighborsRandomWalk(GraphAPI(facebook_small), seed=3)
        result = walk.run(facebook_small.nodes()[0], max_steps=2000)
        path = result.path
        seen = {}
        for i in range(1, len(path) - 1):
            key = (path[i - 1], path[i])
            bucket = seen.setdefault(key, [])
            degree = facebook_small.degree(path[i])
            if len(bucket) == degree:
                bucket.clear()
            assert path[i + 1] not in bucket
            bucket.append(path[i + 1])

    def test_history_is_per_edge_not_per_node(self):
        walk = CirculatedNeighborsRandomWalk(GraphAPI(complete_graph(5)), seed=1)
        walk.run(0, max_steps=100)
        state = walk.history.state()
        sources = {key[0] for key in state}
        assert len(sources) > 1  # multiple incoming edges tracked separately

    def test_node_based_variant(self):
        walk = CirculatedNeighborsRandomWalk(
            GraphAPI(complete_graph(5)), recurrence="node", seed=1
        )
        result = walk.run(0, max_steps=50)
        assert result.steps == 50
        assert walk.name == "CNRW-node"

    def test_invalid_recurrence(self):
        with pytest.raises(InvalidConfigurationError):
            CirculatedNeighborsRandomWalk(GraphAPI(complete_graph(3)), recurrence="bogus")

    def test_reset_clears_history(self, facebook_small):
        walk = CirculatedNeighborsRandomWalk(GraphAPI(facebook_small), seed=3)
        walk.run(facebook_small.nodes()[0], max_steps=100)
        assert walk.history.tracked_edges > 0
        walk.reset()
        assert walk.history.tracked_edges == 0

    def test_same_query_cost_as_srw_for_same_steps(self, facebook_small):
        """CNRW costs exactly the same queries per step as SRW (Section 3.3)."""
        start = facebook_small.nodes()[0]
        srw_api = GraphAPI(facebook_small)
        cnrw_api = GraphAPI(facebook_small)
        srw_result = SimpleRandomWalk(srw_api, seed=5).run(start, max_steps=200)
        cnrw_result = CirculatedNeighborsRandomWalk(cnrw_api, seed=5).run(start, max_steps=200)
        # Both issue one neighborhood query per distinct visited node.
        assert srw_result.unique_queries == len(set(srw_result.path))
        assert cnrw_result.unique_queries == len(set(cnrw_result.path))


class TestGNRW:
    def test_runs_with_default_hash_grouping(self, facebook_small):
        walk = GroupByNeighborsRandomWalk(GraphAPI(facebook_small), seed=0)
        result = walk.run(facebook_small.nodes()[0], max_steps=200)
        assert result.steps == 200
        assert walk.name.startswith("GNRW[")

    def test_moves_stay_on_edges(self, facebook_small):
        walk = GroupByNeighborsRandomWalk(GraphAPI(facebook_small), seed=1)
        result = walk.run(facebook_small.nodes()[0], max_steps=300)
        for u, v in zip(result.path, result.path[1:]):
            assert facebook_small.has_edge(u, v)

    def test_group_circulation_on_star(self):
        """With two explicit groups, consecutive departures alternate groups."""
        graph = star_graph(4)  # leaves 1..4
        grouping = ExplicitGrouping({1: "A", 2: "A", 3: "B", 4: "B"})
        walk = GroupByNeighborsRandomWalk(GraphAPI(graph), grouping=grouping, seed=2)
        result = walk.run(1, max_steps=400)
        path = result.path
        # Collect the sequence of groups chosen on departures from the hub for
        # each incoming leaf; within each consecutive pair the groups must
        # alternate (each group attempted once before the memory resets).
        for incoming in range(1, 5):
            groups = []
            for i in range(1, len(path) - 1):
                if path[i] == 0 and path[i - 1] == incoming:
                    groups.append("A" if path[i + 1] in (1, 2) else "B")
            pairs = [groups[i: i + 2] for i in range(0, len(groups) - 1, 2)]
            for pair in pairs:
                if len(pair) == 2:
                    assert set(pair) == {"A", "B"}

    def test_single_group_reduces_to_cnrw_behaviour(self, facebook_small):
        grouping = HashGrouping(num_groups=1)
        walk = GroupByNeighborsRandomWalk(GraphAPI(facebook_small), grouping=grouping, seed=3)
        result = walk.run(facebook_small.nodes()[0], max_steps=300)
        # The per-edge no-repeat-within-a-round invariant of CNRW must hold.
        path = result.path
        seen = {}
        for i in range(1, len(path) - 1):
            key = (path[i - 1], path[i])
            bucket = seen.setdefault(key, [])
            degree = facebook_small.degree(path[i])
            if len(bucket) == degree:
                bucket.clear()
            assert path[i + 1] not in bucket
            bucket.append(path[i + 1])

    def test_reset_clears_history(self, facebook_small):
        walk = GroupByNeighborsRandomWalk(GraphAPI(facebook_small), seed=4)
        walk.run(facebook_small.nodes()[0], max_steps=100)
        assert walk.history.tracked_edges > 0
        walk.reset()
        assert walk.history.tracked_edges == 0

    def test_grouping_does_not_consume_budget(self, facebook_small):
        from repro.walks.grouping import DegreeGrouping

        api = GraphAPI(facebook_small)
        walk = GroupByNeighborsRandomWalk(api, grouping=DegreeGrouping(), seed=5)
        result = walk.run(facebook_small.nodes()[0], max_steps=100)
        # Only visited nodes should have been billed, exactly like SRW.
        assert result.unique_queries == len(set(result.path))


class TestNBCNRW:
    def test_never_backtracks_when_alternatives_exist(self, facebook_small):
        walk = NonBacktrackingCNRW(GraphAPI(facebook_small), seed=0)
        result = walk.run(facebook_small.nodes()[0], max_steps=300)
        path = result.path
        for i in range(2, len(path)):
            if facebook_small.degree(path[i - 1]) > 1:
                assert path[i] != path[i - 2]

    def test_moves_stay_on_edges(self, facebook_small):
        walk = NonBacktrackingCNRW(GraphAPI(facebook_small), seed=1)
        result = walk.run(facebook_small.nodes()[0], max_steps=200)
        for u, v in zip(result.path, result.path[1:]):
            assert facebook_small.has_edge(u, v)

    def test_backtracks_only_on_degree_one(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        walk = NonBacktrackingCNRW(GraphAPI(graph), seed=2)
        result = walk.run(1, max_steps=20)
        assert result.steps == 20


class TestWeightedRandomWalk:
    def test_uniform_weights_choose_neighbors_uniformly(self):
        # With constant weights the departure frequencies from a star's hub
        # must be uniform over the leaves, exactly like SRW.
        graph = star_graph(4)
        walk = WeightedRandomWalk(GraphAPI(graph), weight_fn=lambda view, n: 1.0, seed=9)
        result = walk.run(0, max_steps=2000)
        counts = {leaf: 0 for leaf in range(1, 5)}
        for u, v in zip(result.path, result.path[1:]):
            if u == 0:
                counts[v] += 1
        total = sum(counts.values())
        for count in counts.values():
            assert count / total == pytest.approx(0.25, abs=0.05)

    def test_extreme_weights_follow_the_heavy_edge(self):
        graph = Graph()
        graph.add_edges([(0, 1), (0, 2)])
        walk = WeightedRandomWalk(
            GraphAPI(graph), weight_fn=lambda view, n: 1000.0 if n == 1 else 0.0, seed=1
        )
        result = walk.run(0, max_steps=40)
        departures = [v for u, v in zip(result.path, result.path[1:]) if u == 0]
        assert set(departures) == {1}

    def test_zero_weights_fall_back_to_uniform(self):
        graph = cycle_graph(4)
        walk = WeightedRandomWalk(GraphAPI(graph), weight_fn=lambda view, n: 0.0, seed=2)
        result = walk.run(0, max_steps=30)
        assert result.steps == 30


class TestBarbellBehaviour:
    def test_cnrw_crosses_bridge_at_least_as_often_as_srw(self):
        """Theorem 3's qualitative claim on a small barbell graph."""
        graph = barbell_graph(6)
        other_side = set(range(6, 12))
        crossings = {"srw": 0, "cnrw": 0}
        trials = 120
        for trial in range(trials):
            srw = SimpleRandomWalk(GraphAPI(graph), seed=1000 + trial)
            cnrw = CirculatedNeighborsRandomWalk(GraphAPI(graph), seed=1000 + trial)
            if any(node in other_side for node in srw.run(0, max_steps=60).path):
                crossings["srw"] += 1
            if any(node in other_side for node in cnrw.run(0, max_steps=60).path):
                crossings["cnrw"] += 1
        assert crossings["cnrw"] >= crossings["srw"] * 0.9
