"""Tests for the command-line interface."""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_listed(self):
        parser = build_parser()
        args = parser.parse_args(["figure6"])
        assert args.experiment == "figure6"
        assert args.seed == 0

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure99"])

    def test_all_figures_have_cli_entries(self):
        for name in (
            "figure6",
            "figure7_facebook",
            "figure7_youtube",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "theorem3",
            "ablation_recurrence",
        ):
            assert name in EXPERIMENTS


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure6" in out

    def test_table1_with_csv_output(self, tmp_path, capsys):
        assert main(["table1", "--scale", "0.2", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        csv_path = tmp_path / "table1.csv"
        assert csv_path.exists()
        assert csv_path.read_text().startswith("name,nodes,edges")

    def test_small_figure_run_with_csv(self, tmp_path, capsys):
        code = main([
            "figure11", "--trials", "2", "--seed", "1", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure11" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())

    def test_walk_ensemble(self, capsys):
        code = main([
            "walk", "--dataset", "facebook_like", "--scale", "0.15",
            "--walker", "cnrw", "--budget", "120", "--walkers", "4",
            "--steps", "40", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ensemble (4 x cnrw" in out
        assert "pooled samples" in out
        assert "Estimated average degree" in out

    def test_snapshot_then_walk_from_source(self, tmp_path, capsys):
        snap = tmp_path / "snap"
        assert main([
            "snapshot", "--dataset", "facebook_like", "--scale", "0.15",
            "--seed", "2", "--out", str(snap),
        ]) == 0
        assert "Snapshot of facebook_like" in capsys.readouterr().out
        assert main([
            "walk", "--source", str(snap), "--walker", "cnrw",
            "--budget", "80", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "mmap:" in out
        assert "Estimated average degree" in out

    def test_replay_record_then_replay_reproduces_crawl(self, tmp_path, capsys):
        dump = tmp_path / "crawl.jsonl"
        record_args = ["--dump", str(dump), "--scale", "0.15",
                       "--walker", "cnrw", "--budget", "80", "--seed", "9"]
        assert main(["replay", "--record", *record_args]) == 0
        recorded = capsys.readouterr().out
        assert "wrote" in recorded and "80 records" in recorded
        # Same walker/seed/budget replay the recorded crawl exactly.
        assert main(["replay", *record_args]) == 0
        replayed = capsys.readouterr().out
        assert "80 unique" in replayed
        assert "stopped by budget" in replayed
        # walk --source on the dump also restarts from the recorded start.
        assert main(["walk", "--source", str(dump), "--walker", "cnrw",
                     "--budget", "80", "--seed", "9"]) == 0
        assert "80 unique" in capsys.readouterr().out

    def test_storage_commands_report_friendly_errors(self, tmp_path, capsys):
        assert main(["snapshot", "--dataset", "facebook_like"]) == 2
        assert "requires --out" in capsys.readouterr().err
        assert main(["replay", "--walker", "srw"]) == 2
        assert "requires --dump" in capsys.readouterr().err
        missing = tmp_path / "nowhere"
        assert main(["walk", "--source", str(missing), "--budget", "10"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "no graph storage" in err
        # A structurally valid but empty dump must not crash either surface.
        from repro.api import InMemoryBackend
        from repro.graphs import load_dataset
        from repro.storage import dump_crawl

        backend = InMemoryBackend(load_dataset("facebook_like", seed=1, scale=0.15))
        empty = dump_crawl(backend, tmp_path / "empty.jsonl", nodes=[])
        for command in (["walk", "--source", str(empty), "--budget", "10"],
                        ["replay", "--dump", str(empty), "--budget", "10"]):
            assert main(command) == 2
            err = capsys.readouterr().err
            assert "no records" in err
        # --out pointing at an existing file, and recording an ensemble, are
        # rejected with messages rather than tracebacks.
        occupied = tmp_path / "occupied"
        occupied.write_text("file, not a directory")
        assert main(["snapshot", "--dataset", "facebook_like", "--scale", "0.15",
                     "--out", str(occupied)]) == 2
        assert "cannot create snapshot directory" in capsys.readouterr().err
        assert main(["replay", "--record", "--dump", str(tmp_path / "e.jsonl"),
                     "--walkers", "4", "--budget", "20"]) == 2
        assert "--walkers is not supported" in capsys.readouterr().err
        # Explicit dataset-shaping flags conflict with --source instead of
        # being silently dropped.
        for flag, value in (("--backend", "csr"), ("--dataset", "facebook_like"),
                            ("--scale", "0.2")):
            assert main(["walk", "--source", str(empty), flag, value,
                         "--budget", "10"]) == 2
            assert f"{flag} does not apply" in capsys.readouterr().err

    def test_serve_rejects_conflicting_flags_and_bad_sources(self, tmp_path, capsys):
        assert main(["serve", "--source", str(tmp_path / "nowhere")]) == 2
        assert "no graph storage" in capsys.readouterr().err
        snap = tmp_path / "snap"
        assert main(["snapshot", "--dataset", "facebook_like", "--scale", "0.12",
                     "--out", str(snap)]) == 0
        capsys.readouterr()
        for flag, value in (("--dataset", "facebook_like"), ("--scale", "0.2")):
            assert main(["serve", "--source", str(snap), flag, value]) == 2
            assert f"{flag} does not apply" in capsys.readouterr().err

    def test_serve_then_remote_walk_matches_local_walk(self, tmp_path, capsys):
        """End to end: `serve` a snapshot, `walk --source URL` against it, and
        the remote walk reports exactly the numbers of the local walk."""
        snap = tmp_path / "snap"
        assert main(["snapshot", "--dataset", "facebook_like", "--scale", "0.15",
                     "--seed", "2", "--out", str(snap)]) == 0
        capsys.readouterr()
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--source", str(snap),
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        # Never hang the suite on a server that fails to announce itself.
        killer = threading.Timer(60, process.kill)
        killer.start()
        try:
            banner = process.stdout.readline()
            match = re.search(r"at (http://[0-9.:]+)", banner)
            assert match, f"serve printed no URL: {banner!r}"
            url = match.group(1)
            walk_args = ["--walker", "cnrw", "--budget", "60", "--seed", "5"]
            assert main(["walk", "--source", url, *walk_args]) == 0
            remote_out = capsys.readouterr().out
            assert main(["walk", "--source", str(snap), *walk_args]) == 0
            local_out = capsys.readouterr().out

            def fingerprint(text):
                walk_line = next(line for line in text.splitlines() if "steps," in line)
                estimate = next(line for line in text.splitlines() if "Estimated" in line)
                return re.sub(r"\([^)]*\)", "", walk_line), estimate

            assert fingerprint(remote_out) == fingerprint(local_out)
        finally:
            killer.cancel()
            process.terminate()
            process.wait(timeout=30)

    def test_remote_walk_over_replay_server_reproduces_recorded_crawl(
        self, tmp_path, capsys
    ):
        """A replay-backed *server* restarts remote walks from the dump's
        recorded start (discovered via /info), exactly like a local
        `walk --source DUMP` — not from a random node straight into a miss."""
        from repro.server import serve_backend

        dump = tmp_path / "crawl.jsonl"
        record_args = ["--dump", str(dump), "--scale", "0.15",
                       "--walker", "cnrw", "--budget", "80", "--seed", "9"]
        assert main(["replay", "--record", *record_args]) == 0
        capsys.readouterr()
        assert main(["replay", *record_args]) == 0
        local = capsys.readouterr().out
        with serve_backend(dump) as server:
            assert main(["walk", "--source", server.url, "--walker", "cnrw",
                         "--budget", "80", "--seed", "9"]) == 0
            remote = capsys.readouterr().out

        def numbers(text):
            return re.sub(
                r"\([^)]*\)", "",
                next(line for line in text.splitlines() if line.startswith("Walk")),
            )

        assert numbers(remote) == numbers(local)
        assert "80 unique" in remote

    def test_partition_then_walk_matches_snapshot_walk(self, tmp_path, capsys):
        """`partition` splits a snapshot and a cluster.json walk reproduces
        the same crawl (same seed, same explicit start) step for step."""
        snap = tmp_path / "snap"
        assert main(["snapshot", "--dataset", "facebook_like", "--scale", "0.15",
                     "--seed", "2", "--out", str(snap)]) == 0
        capsys.readouterr()
        cluster = tmp_path / "cluster"
        assert main(["partition", "--source", str(snap), "--out", str(cluster),
                     "--shards", "3"]) == 0
        partition_out = capsys.readouterr().out
        assert "Partitioned" in partition_out and "3 shards" in partition_out
        walk_args = ["--walker", "cnrw", "--budget", "60", "--seed", "5",
                     "--start", "0"]
        assert main(["walk", "--source", str(cluster / "cluster.json"),
                     *walk_args]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["walk", "--source", str(snap), *walk_args]) == 0
        local_out = capsys.readouterr().out

        def fingerprint(text):
            return [
                re.sub(r"\([^)]*\)", "", line)
                for line in text.splitlines()
                if "steps," in line or "Estimated" in line
            ]

        assert fingerprint(sharded_out) == fingerprint(local_out)
        # The bare directory and the manifest path open identically.
        assert main(["walk", "--source", str(cluster), *walk_args]) == 0
        assert fingerprint(capsys.readouterr().out) == fingerprint(local_out)

    def test_partition_reports_friendly_errors(self, tmp_path, capsys):
        assert main(["partition", "--out", str(tmp_path / "c")]) == 2
        assert "requires --source" in capsys.readouterr().err
        assert main(["partition", "--source", str(tmp_path / "nowhere")]) == 2
        assert "requires --out" in capsys.readouterr().err
        assert main(["partition", "--source", str(tmp_path / "nowhere"),
                     "--out", str(tmp_path / "c")]) == 2
        assert "not a CSR snapshot" in capsys.readouterr().err
        assert main(["serve-cluster"]) == 2
        assert "requires --source" in capsys.readouterr().err
        assert main(["serve-cluster", "--source", str(tmp_path / "nowhere")]) == 2
        assert "no cluster manifest" in capsys.readouterr().err

    def _spawn_cli(self, *args):
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        env["PYTHONUNBUFFERED"] = "1"
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )

    def test_serve_shuts_down_gracefully_on_sigterm(self, tmp_path, capsys):
        """SIGTERM (how CI and supervisors stop a server) must drain and
        exit 0 — not die with the default 143."""
        import signal

        snap = tmp_path / "snap"
        assert main(["snapshot", "--dataset", "facebook_like", "--scale", "0.12",
                     "--seed", "2", "--out", str(snap)]) == 0
        capsys.readouterr()
        process = self._spawn_cli("serve", "--source", str(snap), "--port", "0")
        killer = threading.Timer(60, process.kill)
        killer.start()
        try:
            banner = process.stdout.readline()
            assert "Serving" in banner, f"serve printed no banner: {banner!r}"
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
            assert process.returncode == 0, output
            assert "stopping" in output
        finally:
            killer.cancel()
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()

    def test_serve_cluster_boots_every_shard_and_stops_on_sigterm(
        self, tmp_path, capsys
    ):
        import signal

        snap = tmp_path / "snap"
        assert main(["snapshot", "--dataset", "facebook_like", "--scale", "0.12",
                     "--seed", "2", "--out", str(snap)]) == 0
        cluster = tmp_path / "cluster"
        assert main(["partition", "--source", str(snap), "--out", str(cluster),
                     "--shards", "3"]) == 0
        capsys.readouterr()
        process = self._spawn_cli("serve-cluster", "--source", str(cluster),
                                  "--port", "0")
        killer = threading.Timer(60, process.kill)
        killer.start()
        try:
            banner = []
            while len(banner) < 4:
                line = process.stdout.readline()
                assert line, f"serve-cluster ended early: {banner}"
                banner.append(line)
            assert sum("Serving shard" in line for line in banner) == 3
            hint = next(line for line in banner if "cluster://" in line)
            url = re.search(r"(cluster://\S+)", hint).group(1)
            assert main(["walk", "--source", url, "--walker", "cnrw",
                         "--budget", "40", "--seed", "5", "--start", "0"]) == 0
            assert "Estimated average degree" in capsys.readouterr().out
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
            assert process.returncode == 0, output
        finally:
            killer.cancel()
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()

    def test_sweep_with_jobs_and_csv(self, tmp_path, capsys):
        code = main([
            "sweep", "--dataset", "facebook_like", "--scale", "0.12",
            "--sweep-walkers", "srw,cnrw", "--budgets", "40,80",
            "--trials", "2", "--jobs", "2", "--seed", "4", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "relative error" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())

    def test_sweep_rejects_unknown_walker(self, capsys):
        code = main([
            "sweep", "--dataset", "facebook_like", "--scale", "0.1",
            "--sweep-walkers", "definitely_not_a_walker", "--budgets", "40",
            "--trials", "1",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_theorem3_runs(self, capsys):
        assert main(["theorem3", "--trials", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "crossing probability" in out
