"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_known_experiments_listed(self):
        parser = build_parser()
        args = parser.parse_args(["figure6"])
        assert args.experiment == "figure6"
        assert args.seed == 0

    def test_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure99"])

    def test_all_figures_have_cli_entries(self):
        for name in (
            "figure6",
            "figure7_facebook",
            "figure7_youtube",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "theorem3",
            "ablation_recurrence",
        ):
            assert name in EXPERIMENTS


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure6" in out

    def test_table1_with_csv_output(self, tmp_path, capsys):
        assert main(["table1", "--scale", "0.2", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        csv_path = tmp_path / "table1.csv"
        assert csv_path.exists()
        assert csv_path.read_text().startswith("name,nodes,edges")

    def test_small_figure_run_with_csv(self, tmp_path, capsys):
        code = main([
            "figure11", "--trials", "2", "--seed", "1", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure11" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())

    def test_walk_ensemble(self, capsys):
        code = main([
            "walk", "--dataset", "facebook_like", "--scale", "0.15",
            "--walker", "cnrw", "--budget", "120", "--walkers", "4",
            "--steps", "40", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ensemble (4 x cnrw" in out
        assert "pooled samples" in out
        assert "Estimated average degree" in out

    def test_sweep_with_jobs_and_csv(self, tmp_path, capsys):
        code = main([
            "sweep", "--dataset", "facebook_like", "--scale", "0.12",
            "--sweep-walkers", "srw,cnrw", "--budgets", "40,80",
            "--trials", "2", "--jobs", "2", "--seed", "4", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "relative error" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())

    def test_sweep_rejects_unknown_walker(self, capsys):
        code = main([
            "sweep", "--dataset", "facebook_like", "--scale", "0.1",
            "--sweep-walkers", "definitely_not_a_walker", "--budgets", "40",
            "--trials", "1",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_theorem3_runs(self, capsys):
        assert main(["theorem3", "--trials", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "crossing probability" in out
