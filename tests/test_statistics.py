"""Unit tests for graph summary statistics (Table 1 quantities)."""

from __future__ import annotations

import pytest

from repro.exceptions import EmptyGraphError
from repro.graphs import (
    Graph,
    average_attribute,
    complete_graph,
    cycle_graph,
    degree_assortativity,
    degree_histogram,
    degree_sequence,
    density,
    star_graph,
    summarize,
)
from repro.graphs.statistics import conductance_of_cut


class TestSummarize:
    def test_clique_summary(self):
        summary = summarize(complete_graph(5, name="k5"))
        assert summary.name == "k5"
        assert summary.nodes == 5
        assert summary.edges == 10
        assert summary.average_degree == pytest.approx(4.0)
        assert summary.average_clustering == pytest.approx(1.0)
        assert summary.triangles == 10

    def test_cycle_summary(self):
        summary = summarize(cycle_graph(6))
        assert summary.triangles == 0
        assert summary.average_clustering == 0.0

    def test_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            summarize(Graph())

    def test_as_row_and_dict(self):
        summary = summarize(complete_graph(4, name="k4"))
        row = summary.as_row()
        assert row[0] == "k4"
        assert row[1] == 4
        record = summary.as_dict()
        assert record["edges"] == 6


class TestDegreeStatistics:
    def test_degree_histogram(self, small_star):
        histogram = degree_histogram(small_star)
        assert histogram[5] == 1
        assert histogram[1] == 5

    def test_degree_sequence(self, square_with_diagonal):
        assert degree_sequence(square_with_diagonal) == [3, 3, 2, 2]

    def test_density(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)
        assert density(star_graph(4)) == pytest.approx(2 * 4 / (5 * 4))
        assert density(Graph()) == 0.0

    def test_assortativity_star_is_negative(self):
        assert degree_assortativity(star_graph(6)) < 0

    def test_assortativity_regular_graph_is_degenerate(self):
        assert degree_assortativity(cycle_graph(6)) == 0.0

    def test_assortativity_requires_edges(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(EmptyGraphError):
            degree_assortativity(graph)

    def test_assortativity_matches_networkx(self, facebook_small):
        import networkx as nx

        expected = nx.degree_assortativity_coefficient(facebook_small.to_networkx())
        assert degree_assortativity(facebook_small) == pytest.approx(expected, abs=1e-6)


class TestAggregatesAndCuts:
    def test_average_attribute(self, attributed_graph):
        assert average_attribute(attributed_graph, "age") == pytest.approx(30.0)

    def test_average_attribute_with_default(self, attributed_graph):
        assert average_attribute(attributed_graph, "missing", default=2.0) == pytest.approx(2.0)

    def test_average_attribute_empty_graph(self):
        with pytest.raises(EmptyGraphError):
            average_attribute(Graph(), "age")

    def test_conductance_of_barbell_is_small(self, small_barbell):
        assert conductance_of_cut(small_barbell) < 0.1

    def test_conductance_requires_two_communities(self, small_clique):
        for node in small_clique.nodes():
            small_clique.set_attributes(node, community=0)
        with pytest.raises(EmptyGraphError):
            conductance_of_cut(small_clique)
