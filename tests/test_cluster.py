"""Tests for the sharded graph tier (`repro.cluster`).

The conformance matrix in ``tests/test_backend_conformance.py`` already pins
the ``ShardedBackend`` (over three live HTTP shard servers) to identical
records, golden walk CRCs and query accounting; this module covers what is
*specific* to the cluster subsystem: ring determinism, the partition layout
and its manifests, routing and ownership guards, the ``cluster://`` and
manifest wiring, per-shard failure attribution when a shard dies
mid-ensemble, and the connection-lifecycle satellites (context managers,
``SamplingSession.close``).
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.api import (
    HTTPGraphBackend,
    InMemoryBackend,
    SamplingSession,
    as_backend,
    build_api,
)
from repro.cluster import (
    CLUSTER_FORMAT,
    CLUSTER_VERSION,
    HashRing,
    ShardSliceBackend,
    ShardedBackend,
    cluster_from_urls,
    load_cluster,
    load_shard,
    parse_cluster_url,
    partition_snapshot,
)
from repro.exceptions import ClusterError, NodeNotFoundError, ShardError
from repro.graphs import load_dataset
from repro.storage import save_snapshot
from repro.walks import make_walker


@pytest.fixture(scope="module")
def cluster_graph():
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def reference(cluster_graph) -> InMemoryBackend:
    return InMemoryBackend(cluster_graph)


@pytest.fixture(scope="module")
def cluster_dir(cluster_graph, tmp_path_factory):
    base = tmp_path_factory.mktemp("cluster")
    snapshot = save_snapshot(cluster_graph, base / "snap")
    return partition_snapshot(snapshot, base / "parts", shards=3)


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_routes_are_pinned_across_runs(self):
        """The ring must never re-route a node between releases: the on-disk
        partition layout depends on it.  These values are frozen."""
        ring = HashRing(3, vnodes=8)
        assert [ring.shard_of(node) for node in range(10)] == [
            0, 2, 1, 2, 0, 0, 1, 1, 2, 2,
        ]
        assert [ring.shard_of(node) for node in ("alice", "bob", "carol", "dave")] == [
            2, 0, 2, 2,
        ]
        default = HashRing(5)
        assert [default.shard_of(node) for node in range(8)] == [
            1, 3, 4, 4, 3, 3, 4, 0,
        ]

    def test_int_and_str_ids_route_independently(self):
        ring = HashRing(3, vnodes=8)
        assert ring.shard_of(5) == 0
        assert ring.shard_of("5") == 1

    def test_spec_round_trip(self):
        ring = HashRing(4, vnodes=16)
        rebuilt = HashRing.from_spec(ring.spec())
        assert rebuilt.shards == 4 and rebuilt.vnodes == 16
        assert all(rebuilt.shard_of(node) == ring.shard_of(node) for node in range(200))

    def test_distribution_is_roughly_even(self):
        counts = Counter(HashRing(3).shard_of(node) for node in range(3000))
        assert len(counts) == 3
        assert min(counts.values()) > 3000 / 3 * 0.6

    @pytest.mark.parametrize("spec", [
        None, [], {"algorithm": "md5-ring", "shards": 2},
        {"algorithm": "consistent-hash-blake2b64"},
        {"algorithm": "consistent-hash-blake2b64", "shards": "many"},
    ])
    def test_malformed_specs_raise_typed_errors(self, spec):
        with pytest.raises(ClusterError):
            HashRing.from_spec(spec)

    def test_invalid_shard_counts_raise(self):
        with pytest.raises(ClusterError):
            HashRing(0)
        with pytest.raises(ClusterError):
            HashRing(3, vnodes=0)

    def test_unroutable_node_id_raises_typed_error(self):
        with pytest.raises(ClusterError, match="routed"):
            HashRing(3).shard_of(object())


# ----------------------------------------------------------------------
# Partitioning and shard slices
# ----------------------------------------------------------------------
class TestPartition:
    def test_manifest_layout(self, cluster_dir):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        assert manifest["format"] == CLUSTER_FORMAT
        assert manifest["version"] == CLUSTER_VERSION
        assert manifest["ring"]["shards"] == 3
        entries = manifest["shards"]
        assert [entry["shard"] for entry in entries] == [0, 1, 2]
        assert sum(entry["nodes"] for entry in entries) == manifest["nodes"]
        for entry in entries:
            shard_dir = cluster_dir / entry["source"]
            assert (shard_dir / "manifest.json").is_file()  # a real snapshot
            assert (shard_dir / "shard.json").is_file()

    def test_shards_partition_the_node_set(self, cluster_dir, reference):
        owned = []
        for shard in range(3):
            slice_backend = load_shard(cluster_dir / f"shard-{shard:02d}")
            assert isinstance(slice_backend, ShardSliceBackend)
            owned.extend(slice_backend.node_ids())
        assert sorted(owned) == sorted(reference.node_ids())
        assert len(owned) == len(set(owned))  # disjoint

    def test_shards_route_by_the_manifest_ring(self, cluster_dir):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        for shard in range(3):
            slice_backend = load_shard(cluster_dir / f"shard-{shard:02d}")
            assert all(ring.shard_of(node) == shard for node in slice_backend.node_ids())

    def test_slice_serves_owned_records_and_guards_the_rest(
        self, cluster_dir, reference
    ):
        """A shard answers exactly its owned nodes with *global* neighbor
        lists; a mis-routed node fails loudly instead of answering with the
        boundary row's empty adjacency."""
        slice_backend = load_shard(cluster_dir / "shard-00")
        owned = slice_backend.node_ids()
        for node in owned[:10]:
            assert slice_backend.fetch(node) == reference.fetch(node)
            assert slice_backend.metadata(node) == reference.metadata(node)
        foreign = next(
            node for node in reference.node_ids() if node not in set(owned)
        )
        with pytest.raises(NodeNotFoundError):
            slice_backend.fetch(foreign)
        with pytest.raises(NodeNotFoundError):
            slice_backend.fetch_many([owned[0], foreign])
        assert not slice_backend.contains(foreign)
        assert slice_backend.metadata(foreign) is None
        assert foreign not in slice_backend.node_ids()
        assert len(slice_backend) == len(owned)

    def test_partition_accepts_in_memory_sources(self, cluster_graph, tmp_path):
        out_dir = partition_snapshot(cluster_graph, tmp_path / "direct", shards=2)
        with load_cluster(out_dir) as cluster:
            assert len(cluster) == cluster_graph.number_of_nodes

    def test_partition_rejects_unsupported_sources(self, tmp_path):
        with pytest.raises(TypeError, match="partition"):
            partition_snapshot(42, tmp_path / "bad", shards=2)


# ----------------------------------------------------------------------
# ShardedBackend routing and federation (local slices; HTTP is covered by
# the conformance suite)
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_cluster_reassembles_the_whole_graph(self, cluster_dir, reference):
        with load_cluster(cluster_dir) as cluster:
            assert len(cluster) == len(reference)
            assert sorted(cluster.node_ids()) == sorted(reference.node_ids())
            nodes = reference.node_ids()
            probe = [nodes[2], nodes[0], nodes[2], nodes[5]]
            assert cluster.fetch_many(probe) == reference.fetch_many(probe)
            assert cluster.fetch(nodes[1]) == reference.fetch(nodes[1])
            assert cluster.metadata(nodes[3]) == reference.metadata(nodes[3])
            assert cluster.metadata("no-such-node") is None
            assert not cluster.contains("no-such-node")
            with pytest.raises(NodeNotFoundError):
                cluster.fetch("no-such-node")

    def test_walks_identical_to_unpartitioned_graph(self, cluster_dir, reference):
        def run(source):
            api = build_api(source, budget=60)
            start = reference.node_ids()[0]
            result = make_walker("cnrw", api=api, seed=7).run(start, max_steps=None)
            return result.path, api.unique_queries, api.total_queries

        with load_cluster(cluster_dir) as cluster:
            assert run(cluster) == run(reference)

    def test_shard_count_must_match_ring(self, cluster_dir):
        backends = [load_shard(cluster_dir / f"shard-{shard:02d}") for shard in range(3)]
        with pytest.raises(ClusterError, match="ring routes"):
            ShardedBackend(backends, HashRing(2))
        with pytest.raises(ClusterError, match="at least one"):
            ShardedBackend([])

    def test_manifest_validation_raises_typed_errors(self, cluster_dir, tmp_path):
        with pytest.raises(ClusterError, match="no cluster manifest"):
            load_cluster(tmp_path / "nowhere")
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "something-else"}')
        with pytest.raises(ClusterError, match="format"):
            load_cluster(foreign)
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        manifest["version"] = 99
        future = tmp_path / "future.json"
        future.write_text(json.dumps(manifest))
        with pytest.raises(ClusterError, match="version"):
            load_cluster(future)
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        del manifest["shards"][1]
        missing = tmp_path / "missing-shard.json"
        missing.write_text(json.dumps(manifest))
        with pytest.raises(ClusterError, match="shards"):
            load_cluster(missing)

    def test_parse_cluster_url(self):
        assert parse_cluster_url("cluster://a:1,b:2") == ["http://a:1", "http://b:2"]
        assert parse_cluster_url("cluster://https://a:1, b:2") == [
            "https://a:1", "http://b:2",
        ]
        with pytest.raises(ClusterError, match="no shard servers"):
            parse_cluster_url("cluster://")
        with pytest.raises(ClusterError, match="cluster://"):
            parse_cluster_url("http://a:1")


# ----------------------------------------------------------------------
# Live-cluster wiring and failure attribution
# ----------------------------------------------------------------------
class TestLiveCluster:
    @pytest.fixture()
    def shard_servers(self, cluster_dir, graph_server):
        return [
            graph_server(load_shard(cluster_dir / f"shard-{shard:02d}"))
            for shard in range(3)
        ]

    def test_cluster_url_drives_live_shards(self, cluster_dir, shard_servers, reference):
        url = "cluster://" + ",".join(
            server.url.removeprefix("http://") for server in shard_servers
        )
        with as_backend(url) as cluster:
            assert isinstance(cluster, ShardedBackend)
            assert len(cluster) == len(reference)
            node = reference.node_ids()[0]
            assert cluster.fetch(node) == reference.fetch(node)

    def test_shard_death_mid_ensemble_names_the_shard(
        self, cluster_dir, shard_servers, reference
    ):
        """One shard dying mid-ensemble fails typed, naming the dead shard.

        Shard 1's storage starts failing after its first two batched
        fetches; the client's bounded retries exhaust against persistent
        500s and the scheduler's next frontier batch surfaces a ShardError
        attributing the failure to shard 1's address — not a generic error.
        """
        from fakes import FlakyBackend

        doomed = shard_servers[1]
        doomed.graph_backend = FlakyBackend(
            doomed.graph_backend,
            plan=[None, None] + [RuntimeError("storage tier died")] * 1000,
        )
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        clients = [
            HTTPGraphBackend(server.url, retries=1, backoff=0.0, sleep=lambda _: None)
            for server in shard_servers
        ]
        with ShardedBackend(clients, ring) as cluster:
            api = build_api(cluster, budget=200)
            walkers = [make_walker("cnrw", api=api, seed=seed) for seed in (1, 2, 3, 4)]
            starts = reference.node_ids()[:4]
            from repro.engine import WalkScheduler

            with pytest.raises(ShardError) as excinfo:
                WalkScheduler(api).run(walkers, starts, steps=60)
            assert excinfo.value.shard == 1
            assert excinfo.value.url == shard_servers[1].url
            assert shard_servers[1].url in str(excinfo.value)
            # The healthy shards still answer after the failure.
            healthy = next(
                node for node in reference.node_ids()
                if cluster.shard_of(node) != 1
            )
            assert cluster.fetch(healthy) == reference.fetch(healthy)

    def test_fetch_many_single_shard_failure_is_attributed(
        self, cluster_dir, shard_servers, reference
    ):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        clients = [
            HTTPGraphBackend(server.url, retries=0, timeout=2.0)
            for server in shard_servers
        ]
        shard_servers[2].close()  # this shard is simply gone
        with ShardedBackend(clients, ring) as cluster:
            victim = next(
                node for node in reference.node_ids() if cluster.shard_of(node) == 2
            )
            survivor = next(
                node for node in reference.node_ids() if cluster.shard_of(node) == 0
            )
            with pytest.raises(ShardError) as excinfo:
                cluster.fetch_many([survivor, victim])
            assert excinfo.value.shard == 2
            with pytest.raises(ShardError) as single_info:
                cluster.fetch(victim)
            assert single_info.value.shard == 2


# ----------------------------------------------------------------------
# Connection lifecycle (satellite: context managers + Session.close)
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_with_as_backend_closes_http_connection(self, cluster_graph, graph_server):
        server = graph_server(InMemoryBackend(cluster_graph))
        with as_backend(server.url) as backend:
            assert isinstance(backend, HTTPGraphBackend)
            backend.fetch(cluster_graph.nodes()[0])
            assert backend._connection is not None
        assert backend._connection is None

    def test_with_as_backend_closes_cluster(self, cluster_dir, graph_server):
        urls = [
            graph_server(load_shard(cluster_dir / f"shard-{shard:02d}")).url
            for shard in range(3)
        ]
        with cluster_from_urls(urls) as cluster:
            cluster.fetch_many(cluster.node_ids()[:8])
        for client in cluster.shard_backends:
            assert client._connection is None

    def test_local_backends_are_context_managers_too(self, reference):
        with as_backend(reference) as backend:
            assert backend is reference
        reference.fetch(reference.node_ids()[0])  # close was a no-op

    def test_session_close_delegates_to_backend(self, cluster_graph, graph_server):
        server = graph_server(InMemoryBackend(cluster_graph))
        with SamplingSession(server.url, seed=1) as session:
            session.budget(30).walker("srw", seed=1)
            session.run(max_steps=5)
            client = session.api.backend
            assert client._connection is not None
        assert client._connection is None
        # The session stays usable: the next query reconnects.
        session.run(start=cluster_graph.nodes()[0], max_steps=2)
        assert client._connection is not None
        session.close()
        assert client._connection is None

    def test_session_close_without_built_stack_closes_backend_source(
        self, cluster_graph, graph_server
    ):
        server = graph_server(InMemoryBackend(cluster_graph))
        client = HTTPGraphBackend(server.url)
        client.fetch(cluster_graph.nodes()[0])
        session = SamplingSession(client)
        session.close()  # never built a stack; must close the source itself
        assert client._connection is None
