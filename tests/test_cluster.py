"""Tests for the sharded graph tier (`repro.cluster`).

The conformance matrix in ``tests/test_backend_conformance.py`` already pins
the ``ShardedBackend`` (over three live HTTP shard servers) to identical
records, golden walk CRCs and query accounting; this module covers what is
*specific* to the cluster subsystem: ring determinism, the partition layout
and its manifests, routing and ownership guards, the ``cluster://`` and
manifest wiring, per-shard failure attribution when a shard dies
mid-ensemble, and the connection-lifecycle satellites (context managers,
``SamplingSession.close``).
"""

from __future__ import annotations

import json
from collections import Counter, deque

import pytest

from repro.api import (
    HTTPGraphBackend,
    InMemoryBackend,
    SamplingSession,
    as_backend,
    build_api,
)
from repro.cluster import (
    CLUSTER_FORMAT,
    CLUSTER_VERSION,
    HashRing,
    ShardSliceBackend,
    ShardedBackend,
    cluster_from_urls,
    load_cluster,
    load_shard,
    parse_cluster_url,
    partition_snapshot,
    repartition,
)
from repro.exceptions import (
    ClusterError,
    NodeNotFoundError,
    ShardError,
    StaleManifestError,
)
from repro.graphs import load_dataset
from repro.storage import save_snapshot
from repro.walks import make_walker


@pytest.fixture(scope="module")
def cluster_graph():
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def reference(cluster_graph) -> InMemoryBackend:
    return InMemoryBackend(cluster_graph)


@pytest.fixture(scope="module")
def cluster_dir(cluster_graph, tmp_path_factory):
    base = tmp_path_factory.mktemp("cluster")
    snapshot = save_snapshot(cluster_graph, base / "snap")
    return partition_snapshot(snapshot, base / "parts", shards=3)


@pytest.fixture(scope="module")
def replicated_dir(cluster_graph, tmp_path_factory):
    """The same graph partitioned with replication factor 2."""
    base = tmp_path_factory.mktemp("replicated")
    snapshot = save_snapshot(cluster_graph, base / "snap")
    return partition_snapshot(snapshot, base / "parts", shards=3, replicas=2)


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_routes_are_pinned_across_runs(self):
        """The ring must never re-route a node between releases: the on-disk
        partition layout depends on it.  These values are frozen."""
        ring = HashRing(3, vnodes=8)
        assert [ring.shard_of(node) for node in range(10)] == [
            0, 2, 1, 2, 0, 0, 1, 1, 2, 2,
        ]
        assert [ring.shard_of(node) for node in ("alice", "bob", "carol", "dave")] == [
            2, 0, 2, 2,
        ]
        default = HashRing(5)
        assert [default.shard_of(node) for node in range(8)] == [
            1, 3, 4, 4, 3, 3, 4, 0,
        ]

    def test_int_and_str_ids_route_independently(self):
        ring = HashRing(3, vnodes=8)
        assert ring.shard_of(5) == 0
        assert ring.shard_of("5") == 1

    def test_spec_round_trip(self):
        ring = HashRing(4, vnodes=16)
        rebuilt = HashRing.from_spec(ring.spec())
        assert rebuilt.shards == 4 and rebuilt.vnodes == 16
        assert all(rebuilt.shard_of(node) == ring.shard_of(node) for node in range(200))

    def test_distribution_is_roughly_even(self):
        counts = Counter(HashRing(3).shard_of(node) for node in range(3000))
        assert len(counts) == 3
        assert min(counts.values()) > 3000 / 3 * 0.6

    @pytest.mark.parametrize("spec", [
        None, [], {"algorithm": "md5-ring", "shards": 2},
        {"algorithm": "consistent-hash-blake2b64"},
        {"algorithm": "consistent-hash-blake2b64", "shards": "many"},
    ])
    def test_malformed_specs_raise_typed_errors(self, spec):
        with pytest.raises(ClusterError):
            HashRing.from_spec(spec)

    def test_invalid_shard_counts_raise(self):
        with pytest.raises(ClusterError):
            HashRing(0)
        with pytest.raises(ClusterError):
            HashRing(3, vnodes=0)

    def test_unroutable_node_id_raises_typed_error(self):
        with pytest.raises(ClusterError, match="routed"):
            HashRing(3).shard_of(object())


# ----------------------------------------------------------------------
# Partitioning and shard slices
# ----------------------------------------------------------------------
class TestPartition:
    def test_manifest_layout(self, cluster_dir):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        assert manifest["format"] == CLUSTER_FORMAT
        assert manifest["version"] == CLUSTER_VERSION
        assert manifest["ring"]["shards"] == 3
        entries = manifest["shards"]
        assert [entry["shard"] for entry in entries] == [0, 1, 2]
        assert sum(entry["nodes"] for entry in entries) == manifest["nodes"]
        for entry in entries:
            shard_dir = cluster_dir / entry["source"]
            assert (shard_dir / "manifest.json").is_file()  # a real snapshot
            assert (shard_dir / "shard.json").is_file()

    def test_shards_partition_the_node_set(self, cluster_dir, reference):
        owned = []
        for shard in range(3):
            slice_backend = load_shard(cluster_dir / f"shard-{shard:02d}")
            assert isinstance(slice_backend, ShardSliceBackend)
            owned.extend(slice_backend.node_ids())
        assert sorted(owned) == sorted(reference.node_ids())
        assert len(owned) == len(set(owned))  # disjoint

    def test_shards_route_by_the_manifest_ring(self, cluster_dir):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        for shard in range(3):
            slice_backend = load_shard(cluster_dir / f"shard-{shard:02d}")
            assert all(ring.shard_of(node) == shard for node in slice_backend.node_ids())

    def test_slice_serves_owned_records_and_guards_the_rest(
        self, cluster_dir, reference
    ):
        """A shard answers exactly its owned nodes with *global* neighbor
        lists; a mis-routed node fails loudly instead of answering with the
        boundary row's empty adjacency."""
        slice_backend = load_shard(cluster_dir / "shard-00")
        owned = slice_backend.node_ids()
        for node in owned[:10]:
            assert slice_backend.fetch(node) == reference.fetch(node)
            assert slice_backend.metadata(node) == reference.metadata(node)
        foreign = next(
            node for node in reference.node_ids() if node not in set(owned)
        )
        with pytest.raises(NodeNotFoundError):
            slice_backend.fetch(foreign)
        with pytest.raises(NodeNotFoundError):
            slice_backend.fetch_many([owned[0], foreign])
        assert not slice_backend.contains(foreign)
        assert slice_backend.metadata(foreign) is None
        assert foreign not in slice_backend.node_ids()
        assert len(slice_backend) == len(owned)

    def test_partition_accepts_in_memory_sources(self, cluster_graph, tmp_path):
        out_dir = partition_snapshot(cluster_graph, tmp_path / "direct", shards=2)
        with load_cluster(out_dir) as cluster:
            assert len(cluster) == cluster_graph.number_of_nodes

    def test_partition_rejects_unsupported_sources(self, tmp_path):
        with pytest.raises(TypeError, match="partition"):
            partition_snapshot(42, tmp_path / "bad", shards=2)


# ----------------------------------------------------------------------
# ShardedBackend routing and federation (local slices; HTTP is covered by
# the conformance suite)
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_cluster_reassembles_the_whole_graph(self, cluster_dir, reference):
        with load_cluster(cluster_dir) as cluster:
            assert len(cluster) == len(reference)
            assert sorted(cluster.node_ids()) == sorted(reference.node_ids())
            nodes = reference.node_ids()
            probe = [nodes[2], nodes[0], nodes[2], nodes[5]]
            assert cluster.fetch_many(probe) == reference.fetch_many(probe)
            assert cluster.fetch(nodes[1]) == reference.fetch(nodes[1])
            assert cluster.metadata(nodes[3]) == reference.metadata(nodes[3])
            assert cluster.metadata("no-such-node") is None
            assert not cluster.contains("no-such-node")
            with pytest.raises(NodeNotFoundError):
                cluster.fetch("no-such-node")

    def test_walks_identical_to_unpartitioned_graph(self, cluster_dir, reference):
        def run(source):
            api = build_api(source, budget=60)
            start = reference.node_ids()[0]
            result = make_walker("cnrw", api=api, seed=7).run(start, max_steps=None)
            return result.path, api.unique_queries, api.total_queries

        with load_cluster(cluster_dir) as cluster:
            assert run(cluster) == run(reference)

    def test_shard_count_must_match_ring(self, cluster_dir):
        backends = [load_shard(cluster_dir / f"shard-{shard:02d}") for shard in range(3)]
        with pytest.raises(ClusterError, match="ring routes"):
            ShardedBackend(backends, HashRing(2))
        with pytest.raises(ClusterError, match="at least one"):
            ShardedBackend([])

    def test_manifest_validation_raises_typed_errors(self, cluster_dir, tmp_path):
        with pytest.raises(ClusterError, match="no cluster manifest"):
            load_cluster(tmp_path / "nowhere")
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "something-else"}')
        with pytest.raises(ClusterError, match="format"):
            load_cluster(foreign)
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        manifest["version"] = 99
        future = tmp_path / "future.json"
        future.write_text(json.dumps(manifest))
        with pytest.raises(ClusterError, match="version"):
            load_cluster(future)
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        del manifest["shards"][1]
        missing = tmp_path / "missing-shard.json"
        missing.write_text(json.dumps(manifest))
        with pytest.raises(ClusterError, match="shards"):
            load_cluster(missing)

    def test_parse_cluster_url(self):
        assert parse_cluster_url("cluster://a:1,b:2") == ["http://a:1", "http://b:2"]
        assert parse_cluster_url("cluster://https://a:1, b:2") == [
            "https://a:1", "http://b:2",
        ]
        with pytest.raises(ClusterError, match="no shard servers"):
            parse_cluster_url("cluster://")
        with pytest.raises(ClusterError, match="cluster://"):
            parse_cluster_url("http://a:1")


# ----------------------------------------------------------------------
# Live-cluster wiring and failure attribution
# ----------------------------------------------------------------------
class TestLiveCluster:
    @pytest.fixture()
    def shard_servers(self, cluster_dir, graph_server):
        return [
            graph_server(load_shard(cluster_dir / f"shard-{shard:02d}"))
            for shard in range(3)
        ]

    def test_cluster_url_drives_live_shards(self, cluster_dir, shard_servers, reference):
        url = "cluster://" + ",".join(
            server.url.removeprefix("http://") for server in shard_servers
        )
        with as_backend(url) as cluster:
            assert isinstance(cluster, ShardedBackend)
            assert len(cluster) == len(reference)
            node = reference.node_ids()[0]
            assert cluster.fetch(node) == reference.fetch(node)

    def test_shard_death_mid_ensemble_names_the_shard(
        self, cluster_dir, shard_servers, reference
    ):
        """One shard dying mid-ensemble fails typed, naming the dead shard.

        Shard 1's storage starts failing after its first two batched
        fetches; the client's bounded retries exhaust against persistent
        500s and the scheduler's next frontier batch surfaces a ShardError
        attributing the failure to shard 1's address — not a generic error.
        """
        from fakes import FlakyBackend

        doomed = shard_servers[1]
        doomed.graph_backend = FlakyBackend(
            doomed.graph_backend,
            plan=[None, None] + [RuntimeError("storage tier died")] * 1000,
        )
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        clients = [
            HTTPGraphBackend(server.url, retries=1, backoff=0.0, sleep=lambda _: None)
            for server in shard_servers
        ]
        with ShardedBackend(clients, ring) as cluster:
            api = build_api(cluster, budget=200)
            walkers = [make_walker("cnrw", api=api, seed=seed) for seed in (1, 2, 3, 4)]
            starts = reference.node_ids()[:4]
            from repro.engine import WalkScheduler

            with pytest.raises(ShardError) as excinfo:
                WalkScheduler(api).run(walkers, starts, steps=60)
            assert excinfo.value.shard == 1
            assert excinfo.value.url == shard_servers[1].url
            assert shard_servers[1].url in str(excinfo.value)
            # The healthy shards still answer after the failure.
            healthy = next(
                node for node in reference.node_ids()
                if cluster.shard_of(node) != 1
            )
            assert cluster.fetch(healthy) == reference.fetch(healthy)

    def test_fetch_many_single_shard_failure_is_attributed(
        self, cluster_dir, shard_servers, reference
    ):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        clients = [
            HTTPGraphBackend(server.url, retries=0, timeout=2.0)
            for server in shard_servers
        ]
        shard_servers[2].close()  # this shard is simply gone
        with ShardedBackend(clients, ring) as cluster:
            victim = next(
                node for node in reference.node_ids() if cluster.shard_of(node) == 2
            )
            survivor = next(
                node for node in reference.node_ids() if cluster.shard_of(node) == 0
            )
            with pytest.raises(ShardError) as excinfo:
                cluster.fetch_many([survivor, victim])
            assert excinfo.value.shard == 2
            with pytest.raises(ShardError) as single_info:
                cluster.fetch(victim)
            assert single_info.value.shard == 2


# ----------------------------------------------------------------------
# Connection lifecycle (satellite: context managers + Session.close)
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_with_as_backend_closes_http_connection(self, cluster_graph, graph_server):
        server = graph_server(InMemoryBackend(cluster_graph))
        with as_backend(server.url) as backend:
            assert isinstance(backend, HTTPGraphBackend)
            backend.fetch(cluster_graph.nodes()[0])
            assert backend._connection is not None
        assert backend._connection is None

    def test_with_as_backend_closes_cluster(self, cluster_dir, graph_server):
        urls = [
            graph_server(load_shard(cluster_dir / f"shard-{shard:02d}")).url
            for shard in range(3)
        ]
        with cluster_from_urls(urls) as cluster:
            cluster.fetch_many(cluster.node_ids()[:8])
        for client in cluster.shard_backends:
            assert client._connection is None

    def test_local_backends_are_context_managers_too(self, reference):
        with as_backend(reference) as backend:
            assert backend is reference
        reference.fetch(reference.node_ids()[0])  # close was a no-op

    def test_session_close_delegates_to_backend(self, cluster_graph, graph_server):
        server = graph_server(InMemoryBackend(cluster_graph))
        with SamplingSession(server.url, seed=1) as session:
            session.budget(30).walker("srw", seed=1)
            session.run(max_steps=5)
            client = session.api.backend
            assert client._connection is not None
        assert client._connection is None
        # The session stays usable: the next query reconnects.
        session.run(start=cluster_graph.nodes()[0], max_steps=2)
        assert client._connection is not None
        session.close()
        assert client._connection is None

    def test_session_close_without_built_stack_closes_backend_source(
        self, cluster_graph, graph_server
    ):
        server = graph_server(InMemoryBackend(cluster_graph))
        client = HTTPGraphBackend(server.url)
        client.fetch(cluster_graph.nodes()[0])
        session = SamplingSession(client)
        session.close()  # never built a stack; must close the source itself
        assert client._connection is None


# ----------------------------------------------------------------------
# Replica routing (ring successor walks)
# ----------------------------------------------------------------------
class TestReplicaRouting:
    def test_replica_routes_are_pinned_across_runs(self):
        """Replica placement must never re-route between releases: the
        on-disk replicated layout (and failover) depend on it.  Frozen."""
        ring = HashRing(3, vnodes=8)
        assert [ring.shards_of(node, 2) for node in range(10)] == [
            (0, 2), (2, 1), (1, 2), (2, 1), (0, 2),
            (0, 2), (1, 2), (1, 2), (2, 1), (2, 1),
        ]
        assert [
            ring.shards_of(node, 2) for node in ("alice", "bob", "carol", "dave")
        ] == [(2, 1), (0, 2), (2, 0), (2, 1)]
        default = HashRing(5)
        assert [default.shards_of(node, 3) for node in range(8)] == [
            (1, 3, 2), (3, 0, 4), (4, 3, 0), (4, 3, 1),
            (3, 4, 2), (3, 0, 1), (4, 3, 0), (0, 4, 3),
        ]

    def test_first_replica_is_the_primary(self):
        ring = HashRing(4)
        for node in range(50):
            route = ring.shards_of(node, 3)
            assert route[0] == ring.shard_of(node)
            assert len(set(route)) == len(route) == 3
            assert all(0 <= shard < 4 for shard in route)
        # k=1 degenerates to plain primary routing.
        assert all(
            ring.shards_of(node, 1) == (ring.shard_of(node),) for node in range(50)
        )

    def test_full_replication_covers_every_shard(self):
        ring = HashRing(3)
        for node in range(20):
            assert sorted(ring.shards_of(node, 3)) == [0, 1, 2]

    def test_replica_count_is_validated(self):
        ring = HashRing(3)
        with pytest.raises(ClusterError, match="replicas"):
            ring.shards_of(0, 0)
        with pytest.raises(ClusterError, match="replicas"):
            ring.shards_of(0, 4)


# ----------------------------------------------------------------------
# Replicated partition layout (v2 manifests)
# ----------------------------------------------------------------------
class TestReplicatedPartition:
    def test_manifest_records_replica_spec_and_epoch(self, replicated_dir, reference):
        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        assert manifest["format"] == CLUSTER_FORMAT
        assert manifest["version"] == CLUSTER_VERSION
        assert manifest["replicas"] == 2
        assert manifest["epoch"] == 0
        assert manifest["nodes"] == len(reference)
        # Every node is stored twice, but owned (primary) exactly once.
        assert sum(entry["nodes"] for entry in manifest["shards"]) == 2 * len(reference)
        assert sum(entry["primary"] for entry in manifest["shards"]) == len(reference)

    def test_every_node_is_stored_on_its_replica_set(self, replicated_dir, reference):
        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        slices = [
            load_shard(replicated_dir / f"shard-{shard:02d}") for shard in range(3)
        ]
        try:
            for node in reference.node_ids():
                stored_on = [
                    shard for shard, backend in enumerate(slices)
                    if backend.contains(node)
                ]
                assert sorted(ring.shards_of(node, 2)) == stored_on
                for shard in stored_on:
                    assert slices[shard].fetch(node) == reference.fetch(node)
                assert slices[ring.shard_of(node)].contains(node)
        finally:
            for backend in slices:
                backend.close()

    def test_cluster_reassembles_without_double_counting(
        self, replicated_dir, reference
    ):
        with load_cluster(replicated_dir) as cluster:
            assert cluster.replicas == 2
            assert len(cluster) == len(reference)
            assert sorted(cluster.node_ids()) == sorted(reference.node_ids())
            nodes = reference.node_ids()
            probe = [nodes[2], nodes[0], nodes[2], nodes[5]]
            assert cluster.fetch_many(probe) == reference.fetch_many(probe)
            assert cluster.metadata(nodes[3]) == reference.metadata(nodes[3])
            assert cluster.metadata("no-such-node") is None
            with pytest.raises(NodeNotFoundError):
                cluster.fetch("no-such-node")

    def test_walks_identical_to_unpartitioned_graph(self, replicated_dir, reference):
        def run(source):
            api = build_api(source, budget=60)
            start = reference.node_ids()[0]
            result = make_walker("cnrw", api=api, seed=7).run(start, max_steps=None)
            return result.path, api.unique_queries, api.total_queries

        with load_cluster(replicated_dir) as cluster:
            assert run(cluster) == run(reference)

    def test_v1_manifest_loads_as_single_replica(self, cluster_graph, tmp_path):
        """Pre-replication manifests stay loadable: replicas=1, no epoch check."""
        snapshot = save_snapshot(cluster_graph, tmp_path / "snap")
        out = partition_snapshot(snapshot, tmp_path / "parts", shards=2)
        manifest_path = out / "cluster.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        del manifest["replicas"]
        del manifest["epoch"]
        for entry in manifest["shards"]:
            entry.pop("primary", None)
        manifest_path.write_text(json.dumps(manifest))
        with load_cluster(out) as cluster:
            assert cluster.replicas == 1
            assert cluster.expected_epoch is None
            node = cluster.node_ids()[0]
            assert cluster.fetch(node).node == node

    def test_replicas_beyond_shards_are_rejected(self, cluster_graph, tmp_path):
        snapshot = save_snapshot(cluster_graph, tmp_path / "snap")
        with pytest.raises(ClusterError, match="replicas"):
            partition_snapshot(snapshot, tmp_path / "parts", shards=3, replicas=4)


# ----------------------------------------------------------------------
# Incremental repartition + epoch-versioned membership
# ----------------------------------------------------------------------
class TestRepartition:
    @staticmethod
    def _partition(cluster_graph, tmp_path, **kwargs):
        snapshot = save_snapshot(cluster_graph, tmp_path / "snap")
        return partition_snapshot(snapshot, tmp_path / "parts", shards=3, **kwargs)

    def test_identity_repartition_moves_nothing(
        self, cluster_graph, reference, tmp_path
    ):
        out = self._partition(cluster_graph, tmp_path)
        report = repartition(out)
        assert report["moved"] == 0
        assert report["rebuilt"] == []
        assert report["epoch"] == 1
        assert report["shards"] == 3
        assert report["replicas"] == 1
        assert report["nodes"] == len(reference)
        manifest = json.loads((out / "cluster.json").read_text())
        assert manifest["epoch"] == 1
        with load_cluster(out) as cluster:
            node = reference.node_ids()[0]
            assert cluster.fetch(node) == reference.fetch(node)

    def test_scale_out_copies_only_reassigned_nodes(
        self, cluster_graph, reference, tmp_path
    ):
        out = self._partition(cluster_graph, tmp_path)
        report = repartition(out, shards=4)
        assert report["shards"] == 4
        assert report["epoch"] == 1
        # Consistent hashing: adding one shard moves ~nodes/shards, never all.
        assert 0 < report["moved"] < len(reference)
        assert (out / "shard-03").is_dir()
        with load_cluster(out) as cluster:
            assert len(cluster) == len(reference)
            for node in reference.node_ids():
                assert cluster.fetch(node) == reference.fetch(node)

    def test_scale_in_removes_orphan_shards(self, cluster_graph, reference, tmp_path):
        out = self._partition(cluster_graph, tmp_path)
        report = repartition(out, shards=2)
        assert report["shards"] == 2
        assert not (out / "shard-02").exists()
        with load_cluster(out) as cluster:
            assert len(cluster) == len(reference)
            assert sorted(cluster.node_ids()) == sorted(reference.node_ids())

    def test_raising_the_replication_factor_stores_second_copies(
        self, cluster_graph, reference, tmp_path
    ):
        out = self._partition(cluster_graph, tmp_path)
        report = repartition(out, replicas=2)
        assert report["replicas"] == 2
        assert report["moved"] == len(reference)  # one new copy per node
        manifest = json.loads((out / "cluster.json").read_text())
        assert manifest["replicas"] == 2
        ring = HashRing.from_spec(manifest["ring"])
        slices = [load_shard(out / f"shard-{shard:02d}") for shard in range(3)]
        try:
            for node in reference.node_ids():
                stored_on = [
                    shard for shard, backend in enumerate(slices)
                    if backend.contains(node)
                ]
                assert sorted(ring.shards_of(node, 2)) == stored_on
        finally:
            for backend in slices:
                backend.close()
        with load_cluster(out) as cluster:
            assert cluster.replicas == 2
            assert len(cluster) == len(reference)

    def test_remote_clusters_are_rejected(self, cluster_dir, tmp_path):
        manifest = json.loads((cluster_dir / "cluster.json").read_text())
        for entry in manifest["shards"]:
            entry["source"] = "http://127.0.0.1:1/"
        (tmp_path / "cluster.json").write_text(json.dumps(manifest))
        with pytest.raises(ClusterError, match="remote server"):
            repartition(tmp_path)

    def test_stale_manifest_is_detected_through_the_epoch(
        self, cluster_graph, tmp_path
    ):
        """A client loading a pre-repartition manifest fails typed, not wrong."""
        out = self._partition(cluster_graph, tmp_path, replicas=2)
        stale = (out / "cluster.json").read_text()
        repartition(out)  # bumps every shard's epoch to 1
        (out / "cluster.json").write_text(stale)  # the client kept epoch 0
        with pytest.raises(StaleManifestError) as excinfo:
            load_cluster(out)
        assert isinstance(excinfo.value, ShardError)  # per-shard attribution
        assert excinfo.value.shard is not None
        assert "epoch" in str(excinfo.value)


# ----------------------------------------------------------------------
# Replica failover (the self-healing read path)
# ----------------------------------------------------------------------
class TestFailover:
    @pytest.fixture()
    def replicated_servers(self, replicated_dir, graph_server):
        return [
            graph_server(load_shard(replicated_dir / f"shard-{shard:02d}"))
            for shard in range(3)
        ]

    @staticmethod
    def _cluster(replicated_dir, servers, *, retries=1, **options):
        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        clients = [
            HTTPGraphBackend(
                server.url, retries=retries, backoff=0.0, sleep=lambda _: None
            )
            for server in servers
        ]
        return ShardedBackend(clients, ring, replicas=2, **options)

    def test_ensemble_bit_identical_while_one_replica_is_down(
        self, replicated_dir, replicated_servers, reference
    ):
        """Kill one shard mid-ensemble: the walk must not notice.

        Shard 1's storage dies after its first two batched fetches.  With
        replication factor 2 every node it stored has one more replica, so
        the scheduler's ensemble completes and its paths and query
        accounting are bit-identical to the healthy-cluster run *and* to a
        local single-backend run.
        """
        from fakes import FlakyBackend
        from repro.engine import WalkScheduler

        def run_ensemble(source):
            api = build_api(source, budget=500)
            walkers = [
                make_walker("cnrw", api=api, seed=seed) for seed in (1, 2, 3, 4)
            ]
            starts = reference.node_ids()[:4]
            results = WalkScheduler(api).run(walkers, starts, steps=60)
            paths = [result.path for result in results]
            return paths, api.unique_queries, api.total_queries

        local = run_ensemble(reference)
        with self._cluster(replicated_dir, replicated_servers) as cluster:
            healthy = run_ensemble(cluster)
        assert healthy == local

        doomed = replicated_servers[1]
        doomed.graph_backend = FlakyBackend(
            doomed.graph_backend,
            plan=[None, None] + [RuntimeError("storage tier died")] * 1000,
        )
        with self._cluster(
            replicated_dir, replicated_servers, failover_cooldown=300.0
        ) as cluster:
            wounded = run_ensemble(cluster)
            assert 1 in cluster.dead_shards  # the failure was noticed...
        assert wounded == local  # ...and completely absorbed

    def test_cluster_urls_autodetect_replication_from_info(
        self, replicated_servers, reference
    ):
        """`cluster://` clients read replicas + epoch off `GET /info`, so a
        replicated layout gets failover (and honest len()) without a
        manifest."""
        with cluster_from_urls([s.url for s in replicated_servers]) as cluster:
            assert cluster.replicas == 2
            assert cluster.expected_epoch == 0
            assert len(cluster) == len(reference)
            assert sorted(cluster.node_ids()) == sorted(reference.node_ids())
        with cluster_from_urls(
            [s.url for s in replicated_servers], replicas=1
        ) as cluster:  # explicit factor skips the probe
            assert cluster.replicas == 1
            assert cluster.expected_epoch is None

    def test_total_outage_raises_an_attributed_error(
        self, replicated_dir, replicated_servers, reference
    ):
        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        victim = next(
            node for node in reference.node_ids()
            if sorted(ring.shards_of(node, 2)) == [1, 2]
        )
        survivor = next(
            node for node in reference.node_ids() if 0 in ring.shards_of(node, 2)
        )
        replicated_servers[1].close()
        replicated_servers[2].close()
        with self._cluster(
            replicated_dir, replicated_servers, retries=0
        ) as cluster:
            with pytest.raises(ShardError, match="every replica") as excinfo:
                cluster.fetch(victim)
            assert excinfo.value.shard in (1, 2)
            assert isinstance(excinfo.value.__cause__, ShardError)
            with pytest.raises(ShardError, match="every replica"):
                cluster.fetch_many([survivor, victim])
            # Nodes with one live replica still answer through failover.
            assert cluster.fetch(survivor) == reference.fetch(survivor)

    def test_reads_round_robin_across_live_replicas(self, replicated_dir, reference):
        class Counting:
            def __init__(self, inner):
                self.inner = inner
                self.fetches = 0

            def fetch(self, node):
                self.fetches += 1
                return self.inner.fetch(node)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        slices = [
            Counting(load_shard(replicated_dir / f"shard-{shard:02d}"))
            for shard in range(3)
        ]
        cluster = ShardedBackend(slices, ring, replicas=2)
        try:
            node = reference.node_ids()[0]
            route = cluster.shards_of(node)
            for _ in range(4):
                assert cluster.fetch(node) == reference.fetch(node)
            assert [slices[shard].fetches for shard in route] == [2, 2]
        finally:
            cluster.close()

    def test_node_ids_survive_a_dead_shard_when_replicated(
        self, replicated_dir, cluster_dir, reference
    ):
        """Id enumeration tolerates up to replicas-1 failed shards.

        With replication factor 2 every node's ids live on two shards, so
        the union over any two survivors is provably complete; a second
        concurrent failure (or any failure at k=1) still raises attributed.
        """
        class Dead:
            name = "dead"

            def node_ids(self):
                raise RuntimeError("enumeration tier died")

            def close(self):
                pass

        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        backends = [
            load_shard(replicated_dir / f"shard-{shard:02d}") for shard in range(3)
        ]
        live = list(backends)
        live[1] = Dead()
        backends[1].close()
        with ShardedBackend(live, ring, replicas=2) as cluster:
            assert sorted(cluster.node_ids()) == sorted(reference.node_ids())
            assert len(cluster) == len(reference)
            assert 1 in cluster.dead_shards
        two_dead = [load_shard(replicated_dir / "shard-00"), Dead(), Dead()]
        with ShardedBackend(two_dead, ring, replicas=2) as cluster:
            with pytest.raises(ShardError) as excinfo:
                cluster.node_ids()
            assert excinfo.value.shard == 2
        unreplicated = [
            load_shard(cluster_dir / f"shard-{shard:02d}") for shard in range(3)
        ]
        unreplicated[1] = Dead()
        with ShardedBackend(unreplicated, HashRing(3)) as cluster:
            with pytest.raises(ShardError) as excinfo:
                cluster.node_ids()
            assert excinfo.value.shard == 1

    def test_dead_replica_sits_out_the_cooldown_then_is_reprobed(
        self, replicated_dir, reference
    ):
        class Failing:
            def __init__(self, inner):
                self.inner = inner
                self.attempts = 0

            def fetch(self, node):
                self.attempts += 1
                raise RuntimeError("flapping storage")

            def __getattr__(self, name):
                return getattr(self.inner, name)

        manifest = json.loads((replicated_dir / "cluster.json").read_text())
        ring = HashRing.from_spec(manifest["ring"])
        node = reference.node_ids()[0]
        primary = ring.shards_of(node, 2)[0]
        backends = [
            load_shard(replicated_dir / f"shard-{shard:02d}") for shard in range(3)
        ]
        failing = Failing(backends[primary])
        backends[primary] = failing
        now = [0.0]
        cluster = ShardedBackend(
            backends, ring, replicas=2,
            failover_cooldown=10.0, clock=lambda: now[0],
        )
        try:
            # First read probes the primary, fails over, marks it dead.
            assert cluster.fetch(node) == reference.fetch(node)
            assert failing.attempts == 1
            assert primary in cluster.dead_shards
            # Inside the cool-down the dead replica is not touched again.
            assert cluster.fetch(node) == reference.fetch(node)
            assert failing.attempts == 1
            # Past the cool-down the next reads probe it once more.
            now[0] = 11.0
            for _ in range(2):
                assert cluster.fetch(node) == reference.fetch(node)
            assert failing.attempts == 2
            assert primary in cluster.dead_shards
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# Satellites: best-effort close, bounded route cache, aborted-batch drain
# ----------------------------------------------------------------------
class TestCloseAndCaches:
    def test_close_is_best_effort_across_shards(self):
        class Exploding:
            def __init__(self, boom):
                self.boom = boom
                self.name = boom
                self.closed = False

            def close(self):
                self.closed = True
                raise RuntimeError(self.boom)

        class Quiet:
            name = "quiet"

            def __init__(self):
                self.closed = False

            def close(self):
                self.closed = True

        shards = [Exploding("boom-0"), Quiet(), Exploding("boom-2")]
        cluster = ShardedBackend(shards, HashRing(3))
        with pytest.raises(RuntimeError, match="boom-0"):
            cluster.close()  # first error re-raised, but every shard closed
        assert all(shard.closed for shard in shards)

    def test_route_cache_is_bounded(self, cluster_dir):
        backends = [
            load_shard(cluster_dir / f"shard-{shard:02d}") for shard in range(3)
        ]
        cluster = ShardedBackend(backends, HashRing(3), route_cache=8)
        try:
            for node in range(100):
                cluster.shard_of(node)
            assert len(cluster._route_cache) <= 8
            # Resident routes are served from the cache (same tuple object).
            route = cluster.shards_of(99)
            assert cluster.shards_of(99) is route
        finally:
            cluster.close()


class TestAbortedBatchDrain:
    """A fetch_many aborted mid-drain must leave every connection reusable."""

    @pytest.fixture()
    def flaky_servers(self, cluster_dir, graph_server):
        from fakes import FlakyHTTPHandler

        return [
            graph_server(
                load_shard(cluster_dir / f"shard-{shard:02d}"),
                handler_class=FlakyHTTPHandler,
            )
            for shard in range(3)
        ]

    def _cluster(self, flaky_servers):
        clients = [
            HTTPGraphBackend(server.url, retries=0, timeout=5.0)
            for server in flaky_servers
        ]
        return ShardedBackend(clients, HashRing(3))

    def test_second_batch_succeeds_after_a_shard_failure_abort(
        self, cluster_dir, flaky_servers, reference
    ):
        with self._cluster(flaky_servers) as cluster:
            batch = reference.node_ids()[:12]
            assert {cluster.shard_of(node) for node in batch} == {0, 1, 2}
            # Two 500s: one for the pipelined response, one for the replay.
            flaky_servers[1].fault_plan = deque(["500", "500"])
            with pytest.raises(ShardError) as excinfo:
                cluster.fetch_many(batch)
            assert excinfo.value.shard == 1
            # The healthy shards' keep-alive connections were fully drained,
            # so the very next pipelined batch reuses them and succeeds.
            assert cluster.fetch_many(batch) == reference.fetch_many(batch)

    def test_second_batch_succeeds_after_a_miss_abort(
        self, cluster_dir, flaky_servers, reference
    ):
        with self._cluster(flaky_servers) as cluster:
            nodes = reference.node_ids()
            batch = nodes[:12]
            with pytest.raises(NodeNotFoundError):
                cluster.fetch_many([nodes[0], "no-such-node", nodes[5]])
            assert cluster.fetch_many(batch) == reference.fetch_many(batch)
