"""Unit tests for the Graph substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AttributeNotFoundError,
    EdgeNotFoundError,
    EmptyGraphError,
    NodeNotFoundError,
)
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, star_graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes == 0
        assert graph.number_of_edges == 0
        assert len(graph) == 0

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(1, color="red")
        graph.add_node(1, size=3)
        assert graph.number_of_nodes == 1
        assert graph.attributes(1) == {"color": "red", "size": 3}

    def test_add_edge_creates_nodes(self):
        graph = Graph()
        graph.add_edge("a", "b")
        assert graph.has_node("a")
        assert graph.has_node("b")
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")

    def test_add_edge_is_idempotent(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.number_of_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_add_nodes_and_edges_bulk(self):
        graph = Graph()
        graph.add_nodes([1, 2, 3])
        graph.add_edges([(1, 2), (2, 3)])
        assert graph.number_of_nodes == 3
        assert graph.number_of_edges == 2

    def test_remove_edge(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.number_of_edges == 0

    def test_remove_missing_edge_raises(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        graph = star_graph(4)
        graph.remove_node(0)
        assert graph.number_of_edges == 0
        assert not graph.has_node(0)

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(99)


class TestQueries:
    def test_neighbors_and_degree(self, square_with_diagonal):
        graph = square_with_diagonal
        assert sorted(graph.neighbors(0)) == [1, 2, 3]
        assert graph.degree(0) == 3
        assert graph.degree(1) == 2

    def test_neighbors_returns_copy(self, triangle_graph):
        neighbors = triangle_graph.neighbors(0)
        neighbors.append(99)
        assert 99 not in triangle_graph.neighbors(0)

    def test_missing_node_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.neighbors(42)
        with pytest.raises(NodeNotFoundError):
            triangle_graph.degree(42)
        with pytest.raises(NodeNotFoundError):
            triangle_graph.attributes(42)

    def test_contains_and_iter(self, triangle_graph):
        assert 0 in triangle_graph
        assert 42 not in triangle_graph
        assert sorted(triangle_graph) == [0, 1, 2]

    def test_edges_listed_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        as_sets = {frozenset(edge) for edge in edges}
        assert len(as_sets) == 3

    def test_degrees_mapping(self, square_with_diagonal):
        degrees = square_with_diagonal.degrees()
        assert degrees[0] == 3
        assert degrees[1] == 2
        assert sum(degrees.values()) == 2 * square_with_diagonal.number_of_edges

    def test_attribute_access(self, attributed_graph):
        assert attributed_graph.attribute(0, "age") == 20
        assert attributed_graph.attribute(0, "missing", default=None) is None
        with pytest.raises(AttributeNotFoundError):
            attributed_graph.attribute(0, "missing")

    def test_attribute_names(self, attributed_graph):
        assert attributed_graph.attribute_names() == {"age", "city"}

    def test_set_attribute_for_all(self, triangle_graph):
        triangle_graph.set_attribute_for_all("score", {0: 1.0, 1: 2.0, 2: 3.0})
        assert triangle_graph.attribute(1, "score") == 2.0

    def test_set_attributes_missing_node(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.set_attributes(10, x=1)


class TestStructure:
    def test_average_degree(self, triangle_graph):
        assert triangle_graph.average_degree() == pytest.approx(2.0)
        assert Graph().average_degree() == 0.0

    def test_total_degree(self, square_with_diagonal):
        assert square_with_diagonal.total_degree() == 10

    def test_isolated_nodes(self):
        graph = Graph()
        graph.add_node("lonely")
        graph.add_edge(1, 2)
        assert graph.isolated_nodes() == ["lonely"]

    def test_connected_components(self):
        graph = Graph()
        graph.add_edges([(1, 2), (2, 3), (10, 11)])
        components = sorted(graph.connected_components(), key=len)
        assert {10, 11} in components
        assert {1, 2, 3} in components

    def test_is_connected(self, triangle_graph):
        assert triangle_graph.is_connected()
        triangle_graph.add_node("isolated")
        assert not triangle_graph.is_connected()
        assert not Graph().is_connected()

    def test_largest_connected_component(self):
        graph = Graph()
        graph.add_edges([(1, 2), (2, 3), (10, 11)])
        lcc = graph.largest_connected_component()
        assert sorted(lcc.nodes()) == [1, 2, 3]

    def test_largest_connected_component_empty(self):
        with pytest.raises(EmptyGraphError):
            Graph().largest_connected_component()

    def test_subgraph_preserves_attributes(self, attributed_graph):
        sub = attributed_graph.subgraph([0, 1, 2])
        assert sub.number_of_nodes == 3
        assert sub.attribute(0, "age") == 20
        assert sub.has_edge(0, 1)
        assert not sub.has_node(4)

    def test_subgraph_missing_node(self, attributed_graph):
        with pytest.raises(NodeNotFoundError):
            attributed_graph.subgraph([0, 99])

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.add_edge(0, 99)
        assert not triangle_graph.has_node(99)
        assert clone.number_of_edges == triangle_graph.number_of_edges + 1

    def test_shortest_path_length(self):
        graph = path_graph(5)
        assert graph.shortest_path_length(0, 4) == 4
        assert graph.shortest_path_length(2, 2) == 0

    def test_shortest_path_no_path(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        with pytest.raises(ValueError):
            graph.shortest_path_length(1, 3)

    def test_triangles_and_clustering(self):
        clique = complete_graph(4)
        assert clique.triangle_count() == 4
        assert clique.local_clustering(0) == pytest.approx(1.0)
        assert clique.average_clustering() == pytest.approx(1.0)
        chain = path_graph(4)
        assert chain.triangle_count() == 0
        assert chain.average_clustering() == 0.0

    def test_clustering_of_low_degree_node(self, small_star):
        assert small_star.local_clustering(1) == 0.0

    def test_bipartiteness(self):
        assert cycle_graph(4).is_bipartite()
        assert not cycle_graph(5).is_bipartite()
        assert not complete_graph(3).is_bipartite()

    def test_stationary_distribution(self, square_with_diagonal):
        pi = square_with_diagonal.stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)
        assert pi[0] == pytest.approx(3 / 10)
        assert pi[1] == pytest.approx(2 / 10)

    def test_stationary_distribution_empty(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(EmptyGraphError):
            graph.stationary_distribution()


class TestInterop:
    def test_networkx_round_trip(self, attributed_graph):
        nx_graph = attributed_graph.to_networkx()
        back = Graph.from_networkx(nx_graph, name="roundtrip")
        assert back.number_of_nodes == attributed_graph.number_of_nodes
        assert back.number_of_edges == attributed_graph.number_of_edges
        assert back.attribute(0, "age") == 20

    def test_from_networkx_drops_self_loops(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 1)
        nx_graph.add_edge(1, 2)
        graph = Graph.from_networkx(nx_graph)
        assert graph.number_of_edges == 1

    def test_from_edges_with_attributes(self):
        graph = Graph.from_edges([(1, 2), (2, 3)], attributes={1: {"x": 5}})
        assert graph.attribute(1, "x") == 5
        assert graph.number_of_edges == 2

    def test_matches_networkx_statistics(self, facebook_small):
        nx_graph = facebook_small.to_networkx()
        import networkx as nx

        assert facebook_small.number_of_edges == nx_graph.number_of_edges()
        assert facebook_small.triangle_count() == sum(nx.triangles(nx_graph).values()) // 3
        assert facebook_small.average_clustering() == pytest.approx(
            nx.average_clustering(nx_graph), abs=1e-9
        )
