"""Unit tests for simulated clocks, rate limits and budgets."""

from __future__ import annotations

import pytest

from repro.api import QueryBudget
from repro.api.ratelimit import (
    FixedWindowPolicy,
    SimulatedClock,
    TokenBucketPolicy,
    UnlimitedPolicy,
    estimate_crawl_time,
    twitter_policy,
    yelp_policy,
)
from repro.exceptions import QueryBudgetExceededError, RateLimitExceededError


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        assert clock.now == 5.0
        clock.advance(0.0)
        assert clock.now == 5.0

    def test_cannot_go_backwards(self):
        clock = SimulatedClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0


class TestFixedWindowPolicy:
    def test_within_limit_no_wait(self):
        policy = FixedWindowPolicy(max_calls=3, window_seconds=60.0)
        clock = SimulatedClock()
        assert policy.acquire(clock) == 0.0
        assert policy.acquire(clock) == 0.0
        assert policy.acquire(clock) == 0.0
        assert clock.now == 0.0
        assert policy.calls_in_window == 3

    def test_blocking_wait(self):
        policy = FixedWindowPolicy(max_calls=1, window_seconds=30.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        wait = policy.acquire(clock)
        assert wait == pytest.approx(30.0)
        assert clock.now == pytest.approx(30.0)

    def test_non_blocking_raises(self):
        policy = FixedWindowPolicy(max_calls=1, window_seconds=30.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        with pytest.raises(RateLimitExceededError) as excinfo:
            policy.acquire(clock, blocking=False)
        assert excinfo.value.retry_after == pytest.approx(30.0)

    def test_window_expiry(self):
        policy = FixedWindowPolicy(max_calls=1, window_seconds=10.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        clock.advance(11.0)
        assert policy.acquire(clock) == 0.0

    def test_reset(self):
        policy = FixedWindowPolicy(max_calls=1, window_seconds=10.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        policy.reset()
        assert policy.acquire(clock) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FixedWindowPolicy(max_calls=0, window_seconds=10)
        with pytest.raises(ValueError):
            FixedWindowPolicy(max_calls=1, window_seconds=0)


class TestTokenBucketPolicy:
    def test_burst_then_throttle(self):
        policy = TokenBucketPolicy(rate_per_second=1.0, capacity=2.0)
        clock = SimulatedClock()
        assert policy.acquire(clock) == 0.0
        assert policy.acquire(clock) == 0.0
        wait = policy.acquire(clock)
        assert wait == pytest.approx(1.0)
        assert clock.now == pytest.approx(1.0)

    def test_refill(self):
        policy = TokenBucketPolicy(rate_per_second=2.0, capacity=2.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        policy.acquire(clock)
        clock.advance(1.0)
        assert policy.acquire(clock) == 0.0

    def test_non_blocking(self):
        policy = TokenBucketPolicy(rate_per_second=0.5, capacity=1.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        with pytest.raises(RateLimitExceededError):
            policy.acquire(clock, blocking=False)

    def test_reset_restores_capacity(self):
        policy = TokenBucketPolicy(rate_per_second=1.0, capacity=1.0)
        clock = SimulatedClock()
        policy.acquire(clock)
        policy.reset()
        assert policy.available_tokens == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucketPolicy(rate_per_second=0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucketPolicy(rate_per_second=1, capacity=0)


class TestNamedPolicies:
    def test_twitter_policy(self):
        policy = twitter_policy()
        assert policy.max_calls == 15
        assert policy.window_seconds == 900

    def test_yelp_policy(self):
        policy = yelp_policy()
        assert policy.max_calls == 25_000
        assert policy.window_seconds == 86_400


class TestCrawlTimeEstimation:
    def test_unlimited_policy_is_instant(self):
        assert estimate_crawl_time(100, UnlimitedPolicy()) == 0.0

    def test_twitter_rate_dominates(self):
        # 1000 unique queries at 15 per 15 minutes is roughly 1000 minutes,
        # i.e. the "1 minute/query" figure quoted in the paper's introduction.
        seconds = estimate_crawl_time(1000, twitter_policy())
        assert seconds == pytest.approx(1000 * 60, rel=0.05)

    def test_processing_time_added(self):
        assert estimate_crawl_time(10, UnlimitedPolicy(), seconds_per_query=2.0) == 20.0

    def test_negative_queries_rejected(self):
        with pytest.raises(ValueError):
            estimate_crawl_time(-1)


class TestQueryBudget:
    def test_unlimited(self):
        budget = QueryBudget(None)
        assert budget.unlimited
        assert budget.remaining is None
        budget.spend(1000)
        assert not budget.exhausted

    def test_limited(self):
        budget = QueryBudget(3)
        budget.spend(2)
        assert budget.remaining == 1
        assert budget.can_spend(1)
        assert not budget.can_spend(2)
        budget.spend(1)
        assert budget.exhausted
        with pytest.raises(QueryBudgetExceededError):
            budget.spend(1)

    def test_reset(self):
        budget = QueryBudget(2)
        budget.spend(2)
        budget.reset()
        assert budget.remaining == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            QueryBudget(-1)
        with pytest.raises(ValueError):
            QueryBudget(5).spend(-1)
