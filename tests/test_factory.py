"""Unit tests for the walker factory/registry."""

from __future__ import annotations

import pytest

from repro.api import GraphAPI
from repro.exceptions import InvalidConfigurationError
from repro.walks import (
    CirculatedNeighborsRandomWalk,
    GroupByNeighborsRandomWalk,
    MetropolisHastingsRandomWalk,
    NonBacktrackingCNRW,
    NonBacktrackingRandomWalk,
    SimpleRandomWalk,
    available_walkers,
    make_walker,
    register_walker,
)


class TestRegistry:
    def test_all_paper_walkers_available(self):
        names = available_walkers()
        for expected in ("srw", "mhrw", "nbsrw", "cnrw", "gnrw", "gnrw_by_degree",
                         "gnrw_by_md5", "gnrw_by_attribute", "nbcnrw", "cnrw_node"):
            assert expected in names

    def test_unknown_walker(self, api):
        with pytest.raises(InvalidConfigurationError):
            make_walker("definitely_not_a_walker", api=api)

    def test_case_insensitive(self, api):
        assert isinstance(make_walker("SRW", api=api), SimpleRandomWalk)
        assert isinstance(make_walker("CnRw", api=api), CirculatedNeighborsRandomWalk)

    def test_register_custom_walker(self, api):
        @register_walker("test_custom_walker")
        def _build(api, seed=None, **_):
            return SimpleRandomWalk(api, seed=seed)

        walker = make_walker("test_custom_walker", api=api)
        assert isinstance(walker, SimpleRandomWalk)


class TestConstruction:
    def test_types(self, api):
        assert isinstance(make_walker("srw", api=api), SimpleRandomWalk)
        assert isinstance(make_walker("mhrw", api=api), MetropolisHastingsRandomWalk)
        assert isinstance(make_walker("nbsrw", api=api), NonBacktrackingRandomWalk)
        assert isinstance(make_walker("nb-srw", api=api), NonBacktrackingRandomWalk)
        assert isinstance(make_walker("cnrw", api=api), CirculatedNeighborsRandomWalk)
        assert isinstance(make_walker("gnrw", api=api), GroupByNeighborsRandomWalk)
        assert isinstance(make_walker("nbcnrw", api=api), NonBacktrackingCNRW)

    def test_cnrw_variants(self, api):
        edge = make_walker("cnrw", api=api)
        node = make_walker("cnrw_node", api=api)
        assert edge.recurrence == "edge"
        assert node.recurrence == "node"

    def test_gnrw_by_degree_grouping(self, api):
        walker = make_walker("gnrw_by_degree", api=api)
        assert "degree" in walker.grouping.name

    def test_gnrw_by_md5_custom_groups(self, api):
        walker = make_walker("gnrw_by_md5", api=api, num_groups=7)
        assert walker.grouping.num_groups == 7

    def test_gnrw_by_attribute_requires_attribute(self, api):
        with pytest.raises(InvalidConfigurationError):
            make_walker("gnrw_by_attribute", api=api)
        walker = make_walker("gnrw_by_attribute", api=api, group_attribute="age")
        assert walker.grouping.attribute == "age"

    def test_gnrw_with_group_attribute_shortcut(self, api):
        walker = make_walker("gnrw", api=api, group_attribute="age")
        assert walker.grouping.attribute == "age"

    def test_seed_is_threaded(self, attributed_graph):
        a = make_walker("cnrw", api=GraphAPI(attributed_graph), seed=11)
        b = make_walker("cnrw", api=GraphAPI(attributed_graph), seed=11)
        assert a.run(0, max_steps=40).path == b.run(0, max_steps=40).path

    def test_explicit_grouping_overrides_name(self, api):
        from repro.walks import HashGrouping

        walker = make_walker("gnrw_by_degree", api=api, grouping=None)
        assert "degree" in walker.grouping.name
        walker2 = make_walker("gnrw", api=api, grouping=HashGrouping(5))
        assert walker2.grouping.num_groups == 5
