"""Unit tests for the simulated restrictive-access API."""

from __future__ import annotations

import pytest

from repro.api import GraphAPI, InstrumentedAPI, QueryBudget, TraceLayer
from repro.api.ratelimit import FixedWindowPolicy, SimulatedClock
from repro.exceptions import NodeNotFoundError, QueryBudgetExceededError


class TestQueryAccounting:
    def test_unique_vs_total_queries(self, api):
        api.query(0)
        api.query(0)
        api.query(1)
        assert api.unique_queries == 2
        assert api.total_queries == 3

    def test_duplicate_queries_are_free(self, attributed_graph):
        api = GraphAPI(attributed_graph, budget=QueryBudget(1))
        api.query(0)
        # Repeating the same node must not consume the exhausted budget.
        view = api.query(0)
        assert view.node == 0
        assert api.unique_queries == 1

    def test_budget_enforced(self, attributed_graph):
        api = GraphAPI(attributed_graph, budget=QueryBudget(2))
        api.query(0)
        api.query(1)
        with pytest.raises(QueryBudgetExceededError):
            api.query(2)
        assert api.unique_queries == 2

    def test_reset_counters(self, api):
        api.query(0)
        api.query(1)
        api.reset_counters()
        assert api.unique_queries == 0
        assert api.total_queries == 0

    def test_missing_node(self, api):
        with pytest.raises(NodeNotFoundError):
            api.query(999)
        # Failed queries are not billed.
        assert api.unique_queries == 0


class TestNodeView:
    def test_view_contents(self, api, attributed_graph):
        view = api.query(0)
        assert view.node == 0
        assert set(view.neighbors) == set(attributed_graph.neighbors(0))
        assert view.degree == attributed_graph.degree(0)
        assert view.attributes["age"] == 20

    def test_convenience_wrappers(self, api, attributed_graph):
        assert set(api.neighbors(1)) == set(attributed_graph.neighbors(1))
        assert api.degree(1) == attributed_graph.degree(1)
        assert api.attributes(1)["city"] == "austin"

    def test_shuffled_neighbor_order_is_stable_per_node(self, attributed_graph):
        api = GraphAPI(attributed_graph, shuffle_neighbors=True, seed=5)
        first = api.query(0).neighbors
        second = api.query(0).neighbors
        assert first == second

    def test_peek_metadata_is_free(self, api):
        metadata = api.peek_metadata(0)
        assert metadata["degree"] == 3
        assert metadata["attributes"]["age"] == 20
        assert api.unique_queries == 0
        assert api.peek_metadata(999) is None


class TestRateLimitIntegration:
    def test_rate_limited_queries_advance_clock(self, attributed_graph):
        clock = SimulatedClock()
        api = GraphAPI(
            attributed_graph,
            rate_limit=FixedWindowPolicy(max_calls=2, window_seconds=60.0),
            clock=clock,
        )
        api.query(0)
        api.query(1)
        assert clock.now == 0.0
        api.query(2)
        assert clock.now == pytest.approx(60.0)

    def test_cache_hits_do_not_touch_rate_limit(self, attributed_graph):
        clock = SimulatedClock()
        api = GraphAPI(
            attributed_graph,
            rate_limit=FixedWindowPolicy(max_calls=1, window_seconds=60.0),
            clock=clock,
        )
        api.query(0)
        for _ in range(5):
            api.query(0)
        assert clock.now == 0.0


class TestLRUCacheMode:
    def test_evicted_nodes_are_billed_again(self, attributed_graph):
        api = GraphAPI(attributed_graph, cache_capacity=1)
        api.query(0)
        api.query(1)  # evicts 0
        api.query(0)  # billed again
        assert api.unique_queries == 3


class TestRandomNode:
    def test_random_node_is_in_graph(self, api, attributed_graph):
        node = api.random_node(seed=3)
        assert attributed_graph.has_node(node)

    def test_random_node_reproducible(self, attributed_graph):
        api = GraphAPI(attributed_graph)
        assert api.random_node(seed=3) == api.random_node(seed=3)


class TestInstrumentedAPIDeprecationShim:
    """Lock the deprecated alias so it cannot silently rot.

    ``InstrumentedAPI`` must stay a warning-on-construction subclass of
    :class:`~repro.api.middleware.TraceLayer` that survives copy/pickle (the
    code paths that bypass ``__init__``) until the alias is removed.
    """

    def test_construction_warns_exactly_once_and_names_replacement(self, api):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            instrumented = InstrumentedAPI(api)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "InstrumentedAPI" in message and "TraceLayer" in message
        # The warning must point at the caller, not the shim module.
        assert deprecations[0].filename == __file__
        assert isinstance(instrumented, TraceLayer)

    def test_alias_shares_trace_machinery_with_trace_layer(self, api):
        import warnings

        from repro.api import QueryTrace
        from repro.api.instrumented import QueryRecord as aliased_record
        from repro.api.middleware import QueryRecord

        assert aliased_record is QueryRecord
        trace = QueryTrace()
        with pytest.warns(DeprecationWarning):
            instrumented = InstrumentedAPI(api, trace=trace)
        instrumented.query(0)
        assert instrumented.trace is trace
        assert [record.node for record in trace.records] == [0]

    def test_pickle_roundtrip_preserves_state_without_rewarning(self, api):
        import pickle
        import warnings

        with pytest.warns(DeprecationWarning):
            instrumented = InstrumentedAPI(api)
        instrumented.query(0)
        instrumented.query(0)
        with warnings.catch_warnings():
            # Unpickling bypasses __init__, so restoring a stored crawl must
            # neither warn again nor hit the delegation guard.
            warnings.simplefilter("error", DeprecationWarning)
            restored = pickle.loads(pickle.dumps(instrumented))
        assert type(restored) is InstrumentedAPI
        assert restored.trace.queried_nodes == [0, 0]
        assert restored.trace.fresh_nodes == [0]
        assert restored.unique_queries == 1
        assert restored.total_queries == 2

    def test_copy_does_not_rewarn(self, api):
        import copy
        import warnings

        with pytest.warns(DeprecationWarning):
            instrumented = InstrumentedAPI(api)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clone = copy.copy(instrumented)
        assert clone.inner is api


class TestInstrumentedAPI:
    def test_trace_records_fresh_and_cached(self, api):
        instrumented = InstrumentedAPI(api)
        instrumented.query(0)
        instrumented.query(0)
        instrumented.query(1)
        assert len(instrumented.trace) == 3
        assert instrumented.trace.fresh_nodes == [0, 1]
        assert instrumented.trace.frequency()[0] == 2
        assert instrumented.unique_queries == 2
        assert instrumented.total_queries == 3

    def test_delegates_extra_attributes(self, api):
        instrumented = InstrumentedAPI(api)
        assert instrumented.graph is api.graph
        assert instrumented.peek_metadata(0) is not None

    def test_reset_clears_trace(self, api):
        instrumented = InstrumentedAPI(api)
        instrumented.query(0)
        instrumented.reset_counters()
        assert len(instrumented.trace) == 0
        assert instrumented.unique_queries == 0
