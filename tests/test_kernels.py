"""Tests for the transition-kernel layer of the walk engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GraphAPI, build_api
from repro.walks import make_walker
from repro.walks.kernels import (
    CNRWKernel,
    GNRWKernel,
    MHRWKernel,
    NBCNRWKernel,
    NBSRWKernel,
    SRWKernel,
    TransitionKernel,
    WalkState,
    uniform_choice,
)

ALL_WALKERS = ["srw", "mhrw", "nbsrw", "cnrw", "cnrw_node", "nbcnrw", "gnrw_by_degree", "gnrw_by_md5"]


class TestWalkState:
    def test_place_and_advance(self):
        state = WalkState()
        assert state.current is None and state.previous is None
        state.place(5)
        assert (state.current, state.previous, state.step_index) == (5, None, 0)
        state.advance(7)
        assert (state.current, state.previous, state.step_index) == (7, 5, 1)
        state.advance(5)
        assert (state.current, state.previous, state.step_index) == (5, 7, 2)
        state.clear()
        assert (state.current, state.previous, state.step_index) == (None, None, 0)

    def test_place_resets_history_fields(self):
        state = WalkState(current=1, previous=2, step_index=9)
        state.place(3)
        assert (state.current, state.previous, state.step_index) == (3, None, 0)


class TestKernelWiring:
    @pytest.mark.parametrize("name,kernel_type", [
        ("srw", SRWKernel),
        ("mhrw", MHRWKernel),
        ("nbsrw", NBSRWKernel),
        ("cnrw", CNRWKernel),
        ("nbcnrw", NBCNRWKernel),
        ("gnrw_by_degree", GNRWKernel),
    ])
    def test_walkers_carry_their_kernel(self, attributed_graph, name, kernel_type):
        walker = make_walker(name, api=GraphAPI(attributed_graph), seed=0)
        assert isinstance(walker.kernel, kernel_type)

    def test_cnrw_recurrence_variants(self, attributed_graph):
        edge = make_walker("cnrw", api=GraphAPI(attributed_graph), seed=0)
        node = make_walker("cnrw_node", api=GraphAPI(attributed_graph), seed=0)
        assert edge.kernel.recurrence == "edge"
        assert node.kernel.recurrence == "node"

    def test_history_property_is_kernel_history(self, attributed_graph):
        walker = make_walker("cnrw", api=GraphAPI(attributed_graph), seed=0)
        assert walker.history is walker.kernel.history

    def test_base_kernel_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TransitionKernel().choose(WalkState(), None, np.random.default_rng(0))

    def test_kernel_reset_clears_history(self, facebook_small):
        walker = make_walker("cnrw", api=GraphAPI(facebook_small), seed=1)
        walker.run(facebook_small.nodes()[0], max_steps=30)
        assert walker.kernel.history.tracked_edges > 0
        walker.kernel.reset()
        assert walker.kernel.history.tracked_edges == 0


class TestUniformChoice:
    def test_matches_legacy_draw(self):
        items = [10, 20, 30, 40]
        a = uniform_choice(np.random.default_rng(3), items)
        rng = np.random.default_rng(3)
        b = items[int(rng.integers(0, len(items)))]
        assert a == b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform_choice(np.random.default_rng(0), [])


class TestKernelDrivenParity:
    """A kernel fed views externally must replay the walker's own choices."""

    @pytest.mark.parametrize("name", ALL_WALKERS)
    def test_manual_drive_matches_run(self, facebook_small, name):
        start = facebook_small.nodes()[0]
        reference = make_walker(name, api=build_api(facebook_small), seed=13)
        expected = reference.run(start, max_steps=40).path

        api = build_api(facebook_small)
        walker = make_walker(name, api=api, seed=13)
        kernel, rng, state = walker.kernel, walker.rng, walker.state
        kernel.reset()
        state.place(start)
        path = [start]
        for _ in range(40):
            view = api.query(state.current)
            target = kernel.choose(state, view, rng)
            kernel.observe(state, target, view)
            state.advance(target)
            path.append(target)
        assert path == expected

    def test_shared_kernel_state_survives_step_with_view(self, facebook_small):
        """step_with_view and step are interchangeable mid-walk."""
        start = facebook_small.nodes()[0]
        expected = make_walker("cnrw", api=build_api(facebook_small), seed=4).run(
            start, max_steps=20
        ).path

        api = build_api(facebook_small)
        walker = make_walker("cnrw", api=api, seed=4)
        walker.reset()
        walker.start(start)
        path = [start]
        for index in range(20):
            if index % 2 == 0:
                transition = walker.step()
            else:
                transition = walker.step_with_view(api.query(walker.current))
            path.append(transition.target)
        assert path == expected
