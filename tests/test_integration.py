"""End-to-end integration tests across the whole public API."""

from __future__ import annotations

import pytest

import repro
from repro import (
    AggregateQuery,
    GraphAPI,
    QueryBudget,
    estimate,
    ground_truth,
    load_dataset,
    make_walker,
    relative_error,
)
from repro.api import InstrumentedAPI, twitter_policy
from repro.api.ratelimit import SimulatedClock
from repro.experiments import (
    WalkerSpec,
    figure11,
    render_report,
    report_to_markdown,
    table1,
    theorem3_escape,
)
from repro.experiments.figures import figure7_facebook, figure9


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        """The exact flow advertised in the package docstring / README."""
        graph = load_dataset("facebook_like", seed=1, scale=0.2)
        api = GraphAPI(graph, budget=QueryBudget(300))
        walker = make_walker("cnrw", api=api, seed=1)
        result = walker.run(api.random_node(seed=1), max_steps=None)
        answer = estimate(result.samples, AggregateQuery.average_degree())
        truth = ground_truth(graph, AggregateQuery.average_degree())
        assert result.unique_queries <= 300
        assert relative_error(answer.value, truth) < 0.5

    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"


class TestCrawlSimulation:
    def test_rate_limited_crawl_reports_wall_clock(self):
        graph = load_dataset("facebook_like", seed=2, scale=0.1)
        clock = SimulatedClock()
        api = GraphAPI(
            graph, budget=QueryBudget(40), rate_limit=twitter_policy(), clock=clock
        )
        walker = make_walker("cnrw", api=api, seed=2)
        result = walker.run(graph.nodes()[0], max_steps=None)
        assert result.stopped_by_budget
        # 40 unique queries at 15 per 15 minutes needs at least one full window.
        assert clock.now >= 15 * 60

    def test_instrumented_api_tracks_walker_queries(self):
        graph = load_dataset("facebook_like", seed=3, scale=0.1)
        api = InstrumentedAPI(GraphAPI(graph, budget=QueryBudget(30)))
        walker = make_walker("gnrw_by_degree", api=api, seed=3)
        result = walker.run(graph.nodes()[0], max_steps=None)
        assert len(api.trace) >= result.unique_queries
        assert set(api.trace.fresh_nodes).issubset(set(result.path))


class TestAggregateWorkflows:
    def test_conditional_aggregate_estimation(self):
        graph = load_dataset("yelp_like", seed=4, scale=0.08)
        query = AggregateQuery(
            kind=repro.AggregateKind.AVERAGE,
            measure="reviews_count",
            predicate=lambda node, attrs: attrs.get("age", 0) > 25,
            name="avg reviews of older users",
        )
        truth = ground_truth(graph, query)
        api = GraphAPI(graph, budget=QueryBudget(400))
        walker = make_walker("gnrw_by_attribute", api=api, seed=4, group_attribute="reviews_count")
        result = walker.run(graph.nodes()[0], max_steps=None)
        answer = estimate(result.samples, query)
        assert relative_error(answer.value, truth) < 1.0

    def test_count_aggregate_with_population_size(self):
        graph = load_dataset("yelp_like", seed=5, scale=0.08)
        # Count the nodes whose reviews_count exceeds the population median,
        # so the predicate matches a meaningful fraction at any graph scale.
        from repro.graphs import attribute_values
        import numpy as np

        threshold = float(np.median(list(attribute_values(graph, "reviews_count").values())))
        predicate = lambda node, attrs: attrs.get("reviews_count", 0) > threshold  # noqa: E731
        query = AggregateQuery.count(predicate)
        truth = ground_truth(graph, query)
        api = GraphAPI(graph, budget=QueryBudget(500))
        walker = make_walker("cnrw", api=api, seed=5)
        result = walker.run(graph.nodes()[0], max_steps=None)
        answer = estimate(
            result.samples, query, population_size=graph.number_of_nodes
        )
        assert truth > 0
        assert relative_error(answer.value, truth) < 1.0


class TestFigurePipelines:
    """Miniature runs of the figure definitions: structure + qualitative shape."""

    def test_table1_structure(self):
        summaries = table1(seed=0, scale=0.2, datasets=("clustered", "barbell"))
        names = [summary.name for summary in summaries]
        assert names == ["clustered", "barbell"]
        assert all(summary.nodes > 0 for summary in summaries)

    def test_figure7_facebook_small_run(self):
        report = figure7_facebook(seed=1, scale=0.12, trials=3, budgets=(20, 50))
        assert set(report.keys()) == {"relative_error", "kl_divergence", "l2_distance"}
        table = report.get("relative_error")
        assert set(table.labels()) == {"SRW", "NB-SRW", "CNRW", "GNRW"}
        rendered = render_report(report)
        assert "figure7" in rendered
        markdown = report_to_markdown(report)
        assert markdown.startswith("###")

    def test_figure9_small_run_has_two_reports(self):
        reports = figure9(seed=1, scale=0.1, trials=2, budgets=(50, 100))
        assert len(reports) == 2
        for report in reports:
            labels = set(report.get("relative_error").labels())
            assert labels == {"SRW", "GNRW_By_Degree", "GNRW_By_MD5", "GNRW_By_ReviewsCount"}

    def test_figure11_small_run(self):
        report = figure11(seed=1, sizes=(4, 6), budget=20, trials=3)
        table = report.get("relative_error")
        assert table.x_values() == [4.0, 6.0]

    def test_theorem3_small_run(self):
        report = theorem3_escape(seed=1, clique_sizes=(6,), steps=80, trials=20)
        table = report.get("crossing_probability")
        assert set(table.labels()) == {"SRW", "CNRW"}


class TestCustomWalkerSpecRoundTrip:
    def test_spec_built_walker_matches_direct_construction(self):
        graph = load_dataset("facebook_like", seed=6, scale=0.1)
        spec = WalkerSpec.make("cnrw", label="CNRW")
        from repro.experiments.runner import run_single_trial

        outcome = run_single_trial(
            graph, spec, AggregateQuery.average_degree(), budget=40, seed=1
        )
        assert outcome["estimate"] is not None
        assert outcome["unique_queries"] <= 40


class TestDropInReplacementContract:
    """CNRW/GNRW are drop-in replacements: same interface, same distribution."""

    @pytest.mark.parametrize("name", ["srw", "nbsrw", "cnrw", "gnrw_by_degree", "nbcnrw"])
    def test_every_walker_supports_the_same_api(self, name):
        graph = load_dataset("facebook_like", seed=7, scale=0.1)
        api = GraphAPI(graph, budget=QueryBudget(60))
        walker = make_walker(name, api=api, seed=7)
        result = walker.run(graph.nodes()[0], max_steps=None, burn_in=5, thinning=2)
        assert result.unique_queries <= 60
        assert all(sample.step_index >= 5 for sample in result.samples)
        answer = estimate(result.samples, AggregateQuery.average_degree())
        assert answer.value > 0
