"""Fault-injection regressions for the four PR-9 wire bugfixes.

Each test class pins one fix by reproducing the pre-fix failure mode at the
socket level, against *both* server frontends where the bug lived in shared
code:

1. **EOF mid-headers** — a half-sent request (client shut its write side
   before the blank line) used to parse as a complete header block and get
   dispatched; now the server closes without responding and without counting
   an endpoint hit.
2. **Conflicting duplicate headers** — duplicate ``Content-Length`` lines
   used to be last-wins (the request-smuggling shape, and a phantom-body
   hang on a GET); now they answer 400 with ``Connection: close``.
3. **Reachable URLs** — ``server.url`` used to echo wildcard binds
   (``http://0.0.0.0:p``) and unbracketed IPv6 literals; now wildcards
   resolve to loopback and IPv6 hosts are bracketed.
4. **Oversized status line** — the lean client capped header lines but let
   ``readline`` silently truncate a 64 KiB+ *status* line, misparsing the
   remainder as headers; now it refuses with ``oversized status line``.
"""

from __future__ import annotations

import socket
from collections import deque

import pytest

from fakes import FAULT_LONG_STATUS, FlakyHTTPHandler
from repro.api import AsyncHTTPGraphBackend, HTTPGraphBackend, InMemoryBackend
from repro.exceptions import RemoteBackendError
from repro.graphs import complete_graph
from repro.server.wire import reachable_url


@pytest.fixture(scope="module")
def backend_graph():
    return complete_graph(6)


@pytest.fixture(scope="module")
def threaded_server(backend_graph, graph_server):
    return graph_server(InMemoryBackend(backend_graph))


@pytest.fixture(scope="module")
def async_server(backend_graph, async_graph_server):
    return async_graph_server(InMemoryBackend(backend_graph))


def _raw_exchange(server, payload: bytes, *, shut_wr: bool = False) -> bytes:
    """Write raw bytes to the server, return everything it answers until EOF."""
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=5) as sock:
        sock.sendall(payload)
        if shut_wr:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Fix 1: EOF mid-headers is not a blank line
# ----------------------------------------------------------------------
class TestHalfSentRequest:
    HALF_REQUEST = b"GET /info HTTP/1.1\r\nHost: x\r\n"  # no terminating CRLF

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_half_sent_request_gets_no_response_and_no_dispatch(
        self, frontend, threaded_server, async_server
    ):
        server = threaded_server if frontend == "threaded" else async_server
        server.reset_stats()
        answer = _raw_exchange(server, self.HALF_REQUEST, shut_wr=True)
        # Pre-fix the EOF parsed like the end-of-headers blank line: the
        # request was dispatched and a full /info response came back.
        assert answer == b""
        assert sum(server.endpoint_counts.values()) == 0

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_immediate_disconnect_is_silent_too(
        self, frontend, threaded_server, async_server
    ):
        server = threaded_server if frontend == "threaded" else async_server
        server.reset_stats()
        answer = _raw_exchange(server, b"", shut_wr=True)
        assert answer == b""
        assert sum(server.endpoint_counts.values()) == 0


# ----------------------------------------------------------------------
# Fix 2: conflicting duplicate headers answer 400 + Connection: close
# ----------------------------------------------------------------------
class TestDuplicateHeaders:
    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_conflicting_content_length_is_refused(
        self, frontend, threaded_server, async_server
    ):
        server = threaded_server if frontend == "threaded" else async_server
        # Pre-fix: last-wins kept Content-Length 5 and the server hung
        # reading a phantom body off a GET (the smuggling shape).  Post-fix
        # the refusal is immediate — the 5-second socket timeout in
        # _raw_exchange is the hang detector.
        probe = (
            b"GET /info HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 0\r\nContent-Length: 5\r\n\r\n"
        )
        answer = _raw_exchange(server, probe)
        status_line = answer.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"connection: close" in answer.lower()

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_conflicting_duplicates_of_any_header_are_refused(
        self, frontend, threaded_server, async_server
    ):
        server = threaded_server if frontend == "threaded" else async_server
        probe = (
            b"GET /info HTTP/1.1\r\nHost: x\r\n"
            b"X-Api-Key: alice\r\nX-Api-Key: bob\r\n\r\n"
        )
        answer = _raw_exchange(server, probe)
        assert b"400" in answer.split(b"\r\n", 1)[0]

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_repeated_identical_headers_stay_accepted(
        self, frontend, threaded_server, async_server
    ):
        server = threaded_server if frontend == "threaded" else async_server
        probe = (
            b"GET /info HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 0\r\nContent-Length: 0\r\n"
            b"Connection: close\r\n\r\n"
        )
        answer = _raw_exchange(server, probe)
        assert b"200" in answer.split(b"\r\n", 1)[0]
        assert b"repro-graph-http" in answer


# ----------------------------------------------------------------------
# Fix 3: server.url is always client-connectable
# ----------------------------------------------------------------------
class TestReachableUrl:
    def test_wildcard_ipv4_resolves_to_loopback(self):
        assert reachable_url("0.0.0.0", 8000) == "http://127.0.0.1:8000"

    def test_wildcard_ipv6_resolves_to_bracketed_loopback(self):
        assert reachable_url("::", 8000) == "http://[::1]:8000"

    def test_ipv6_literal_is_bracketed(self):
        assert reachable_url("::1", 8000) == "http://[::1]:8000"
        assert reachable_url("fe80::2", 80) == "http://[fe80::2]:80"

    def test_plain_hosts_pass_through(self):
        assert reachable_url("127.0.0.1", 1234) == "http://127.0.0.1:1234"
        assert reachable_url("example.org", 80) == "http://example.org:80"

    @pytest.mark.parametrize("serve_fixture", ["graph_server", "async_graph_server"])
    def test_wildcard_bound_server_publishes_connectable_url(
        self, serve_fixture, backend_graph, request
    ):
        serve = request.getfixturevalue(serve_fixture)
        server = serve(InMemoryBackend(backend_graph), host="0.0.0.0")
        assert server.url.startswith("http://127.0.0.1:")
        # The published URL must actually answer: pre-fix it embedded the
        # literal wildcard, which is not connectable on every platform.
        with HTTPGraphBackend(server.url, timeout=5.0) as client:
            assert client.info()["nodes"] == len(backend_graph.nodes())

    @pytest.mark.skipif(not socket.has_ipv6, reason="IPv6 unavailable")
    @pytest.mark.parametrize("serve_fixture", ["graph_server", "async_graph_server"])
    def test_ipv6_bound_server_publishes_bracketed_url(
        self, serve_fixture, backend_graph, request
    ):
        serve = request.getfixturevalue(serve_fixture)
        try:
            server = serve(InMemoryBackend(backend_graph), host="::1")
        except OSError:
            pytest.skip("IPv6 loopback not bindable here")
        assert server.url.startswith("http://[::1]:")
        with HTTPGraphBackend(server.url, timeout=5.0) as client:
            assert client.info()["nodes"] == len(backend_graph.nodes())


# ----------------------------------------------------------------------
# Fix 4: oversized status lines are refused, not truncated
# ----------------------------------------------------------------------
class TestOversizedStatusLine:
    @pytest.fixture()
    def flaky_server(self, backend_graph, graph_server):
        server = graph_server(
            InMemoryBackend(backend_graph), handler_class=FlakyHTTPHandler
        )
        server.fault_plan = deque()
        return server

    @pytest.mark.parametrize("client_class", [HTTPGraphBackend, AsyncHTTPGraphBackend])
    def test_oversized_status_line_raises_typed_wire_error(
        self, flaky_server, client_class
    ):
        flaky_server.fault_plan.clear()
        flaky_server.fault_plan.append(FAULT_LONG_STATUS)
        client = client_class(flaky_server.url, timeout=5.0, retries=0)
        try:
            with pytest.raises(RemoteBackendError) as excinfo:
                client.fetch(0)
            # Pre-fix the 64 KiB readline truncation surfaced as a confusing
            # "malformed header line" on the *next* read; the refusal must
            # name the actual problem.
            assert "oversized status line" in str(excinfo.value)
        finally:
            client.close()

    @pytest.mark.parametrize("client_class", [HTTPGraphBackend, AsyncHTTPGraphBackend])
    def test_client_recovers_on_retry_after_oversized_status(
        self, flaky_server, client_class
    ):
        flaky_server.fault_plan.clear()
        flaky_server.fault_plan.append(FAULT_LONG_STATUS)
        client = client_class(
            flaky_server.url, timeout=5.0, retries=2, sleep=lambda _s: None
        )
        try:
            record = client.fetch(0)
            assert record.node == 0
        finally:
            client.close()
