"""Unit tests for edge-list loading and directed-to-undirected conversion."""

from __future__ import annotations

import gzip

import pytest

from repro.exceptions import LoaderError
from repro.graphs import (
    Graph,
    from_directed_edges,
    load_attributes,
    load_edge_list,
    relabel_consecutively,
    save_edge_list,
    undirected_from_edges,
)
from repro.graphs.loaders import parse_edge_lines


class TestParseEdgeLines:
    def test_skips_comments_and_blanks(self):
        lines = ["# comment", "", "1 2", "% other comment", "2 3"]
        assert list(parse_edge_lines(lines)) == [("1", "2"), ("2", "3")]

    def test_extra_fields_ignored(self):
        assert list(parse_edge_lines(["1 2 0.5 stamp"])) == [("1", "2")]

    def test_short_line_raises(self):
        with pytest.raises(LoaderError):
            list(parse_edge_lines(["42"]))

    def test_custom_delimiter(self):
        assert list(parse_edge_lines(["1,2"], delimiter=",")) == [("1", "2")]


class TestLoadEdgeList:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# SNAP style\n1 2\n2 3\n3 1\n")
        graph = load_edge_list(path)
        assert graph.number_of_nodes == 3
        assert graph.number_of_edges == 3
        assert graph.name == "graph"

    def test_gzip_load(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("1 2\n2 3\n")
        graph = load_edge_list(path)
        assert graph.number_of_edges == 2

    def test_directed_mutual_only(self, tmp_path):
        path = tmp_path / "directed.txt"
        path.write_text("1 2\n2 1\n2 3\n")
        mutual = load_edge_list(path, directed=True, mutual_only=True)
        either = load_edge_list(path, directed=True, mutual_only=False)
        assert mutual.number_of_edges == 1
        assert either.number_of_edges == 2

    def test_node_type_conversion_error(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(LoaderError):
            load_edge_list(path, node_type=int)
        graph = load_edge_list(path, node_type=str)
        assert graph.has_edge("a", "b")

    def test_duplicate_and_self_loop_handling(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("1 2\n2 1\n1 1\n1 2\n")
        graph = load_edge_list(path)
        assert graph.number_of_edges == 1


class TestDirectedConversion:
    def test_mutual_only(self):
        edges = [(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)]
        graph = from_directed_edges(edges, mutual_only=True)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(3, 4)
        assert not graph.has_edge(2, 3)
        # Node 2 and 3 still exist even though their edge was dropped.
        assert graph.has_node(3)

    def test_either_direction(self):
        edges = [(1, 2), (2, 3)]
        graph = from_directed_edges(edges, mutual_only=False)
        assert graph.number_of_edges == 2

    def test_undirected_from_edges_drops_self_loops(self):
        graph = undirected_from_edges([(1, 1), (1, 2)])
        assert graph.number_of_edges == 1


class TestSaveAndRelabel:
    def test_save_round_trip(self, tmp_path):
        graph = undirected_from_edges([(1, 2), (2, 3), (3, 1)], name="tri")
        path = tmp_path / "out.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.number_of_edges == graph.number_of_edges
        assert set(map(frozenset, loaded.edges())) == set(map(frozenset, graph.edges()))

    def test_relabel_consecutively(self):
        graph = Graph()
        graph.add_edge("alice", "bob")
        graph.add_edge("bob", "carol")
        graph.set_attributes("alice", age=30)
        relabelled, mapping = relabel_consecutively(graph)
        assert sorted(relabelled.nodes()) == [0, 1, 2]
        assert relabelled.number_of_edges == 2
        assert relabelled.attribute(mapping["alice"], "age") == 30

    def test_load_attributes(self, tmp_path):
        graph = undirected_from_edges([(1, 2), (2, 3)])
        path = tmp_path / "attrs.txt"
        path.write_text("1 10.5\n2 20\n99 5\n")
        count = load_attributes(path, graph, attribute="score")
        assert count == 2
        assert graph.attribute(1, "score") == 10.5
        assert graph.attribute(3, "score", default=None) is None

    def test_load_attributes_strict(self, tmp_path):
        graph = undirected_from_edges([(1, 2)])
        path = tmp_path / "attrs.txt"
        path.write_text("99 5\n")
        with pytest.raises(LoaderError):
            load_attributes(path, graph, attribute="score", strict=True)

    def test_load_attributes_bad_value(self, tmp_path):
        graph = undirected_from_edges([(1, 2)])
        path = tmp_path / "attrs.txt"
        path.write_text("1 notanumber\n")
        with pytest.raises(LoaderError):
            load_attributes(path, graph, attribute="score")
