"""Shared fixtures for the test suite."""

from __future__ import annotations

import threading

import pytest

from repro.api import GraphAPI, QueryBudget
from repro.graphs import (
    Graph,
    barbell_graph,
    clustered_cliques_graph,
    complete_graph,
    cycle_graph,
    load_dataset,
    star_graph,
)


@pytest.fixture
def triangle_graph() -> Graph:
    """The smallest non-bipartite connected graph (3-cycle)."""
    graph = Graph(name="triangle")
    graph.add_edges([(0, 1), (1, 2), (2, 0)])
    return graph


@pytest.fixture
def square_with_diagonal() -> Graph:
    """A 4-cycle plus one diagonal: degrees 2,2,3,3."""
    graph = Graph(name="square-diag")
    graph.add_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    return graph


@pytest.fixture
def attributed_graph() -> Graph:
    """A small attributed graph used by estimator and grouping tests."""
    graph = Graph(name="attributed")
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3), (0, 2)]
    graph.add_edges(edges)
    ages = {0: 20, 1: 25, 2: 30, 3: 35, 4: 40}
    cities = {0: "austin", 1: "austin", 2: "dallas", 3: "dallas", 4: "houston"}
    for node in graph.nodes():
        graph.set_attributes(node, age=ages[node], city=cities[node])
    return graph


@pytest.fixture
def small_clique() -> Graph:
    return complete_graph(6)


@pytest.fixture
def small_star() -> Graph:
    return star_graph(5)


@pytest.fixture
def small_cycle() -> Graph:
    return cycle_graph(8)


@pytest.fixture
def small_barbell() -> Graph:
    return barbell_graph(5)


@pytest.fixture
def small_clustered() -> Graph:
    return clustered_cliques_graph((4, 6, 8), seed=0)


@pytest.fixture
def facebook_small() -> Graph:
    """A small instance of the facebook_like dataset for walk tests."""
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def graph_server():
    """Factory booting in-process graph HTTP servers, torn down per module.

    Yields ``serve(source, **kwargs) -> GraphHTTPServer``: each call binds an
    ephemeral port, starts the server on a background thread and registers it
    for teardown, so a whole conformance matrix shares one live server
    instead of booting one per test.  Teardown asserts every server actually
    released its thread and listening socket.
    """
    from repro.server import serve_backend

    servers = []

    def serve(source, **kwargs):
        server = serve_backend(source, **kwargs).start()
        servers.append(server)
        return server

    yield serve
    for server in servers:
        server.close()
        assert server.closed
        # The listening socket must be released (fileno -1 once closed) and
        # the serve thread joined — close() hangs, loudly, otherwise.
        assert server.socket.fileno() == -1


@pytest.fixture(scope="module")
def async_graph_server():
    """Factory booting in-process *asyncio* graph servers, torn down per module.

    The asyncio twin of :func:`graph_server`: yields
    ``serve(source, **kwargs) -> AsyncGraphServer`` (``tenants=`` /
    ``access_log=`` / ``clock=`` pass through).  Teardown closes every server
    and asserts its event-loop thread and listening socket are gone.
    """
    from repro.server import serve_backend_async

    servers = []

    def serve(source, **kwargs):
        server = serve_backend_async(source, **kwargs).start()
        servers.append(server)
        return server

    yield serve
    for server in servers:
        server.close()
        assert server.closed


@pytest.fixture(autouse=True, scope="session")
def no_graph_server_leaks():
    """Assert no graph server (threaded or asyncio) outlives the suite."""
    yield
    from repro.server import AsyncGraphServer, GraphHTTPServer

    leaked = GraphHTTPServer.live_servers() + AsyncGraphServer.live_servers()
    assert not leaked, f"graph servers never closed: {leaked}"
    lingering = [
        thread for thread in threading.enumerate()
        if (thread.name.startswith("repro-http")
            or thread.name.startswith("repro-aio"))
        and thread.is_alive()
    ]
    assert not lingering, f"graph server threads leaked: {lingering}"


@pytest.fixture
def api(attributed_graph) -> GraphAPI:
    return GraphAPI(attributed_graph)


@pytest.fixture
def budgeted_api(attributed_graph) -> GraphAPI:
    return GraphAPI(attributed_graph, budget=QueryBudget(50))
