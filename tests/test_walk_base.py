"""Unit tests for the RandomWalk base machinery (run/sample/budget handling)."""

from __future__ import annotations

import pytest

from repro.api import GraphAPI, QueryBudget
from repro.exceptions import DeadEndError, InvalidStartNodeError
from repro.graphs import Graph, complete_graph
from repro.walks import SimpleRandomWalk


class TestStartAndStep:
    def test_must_start_before_step(self, api):
        walk = SimpleRandomWalk(api, seed=0)
        with pytest.raises(InvalidStartNodeError):
            walk.step()

    def test_start_on_isolated_node(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_node(3)
        walk = SimpleRandomWalk(GraphAPI(graph), seed=0)
        with pytest.raises(InvalidStartNodeError):
            walk.start(3)

    def test_step_moves_to_a_neighbor(self, api, attributed_graph):
        walk = SimpleRandomWalk(api, seed=0)
        walk.start(0)
        transition = walk.step()
        assert transition.source == 0
        assert transition.target in attributed_graph.neighbors(0)
        assert walk.current == transition.target
        assert walk.previous == 0
        assert walk.step_index == 1

    def test_dead_end_detection(self):
        # A dead end can only be reached if the graph mutates mid-walk; build
        # the situation directly by removing edges after start.
        graph = Graph()
        graph.add_edge(1, 2)
        api = GraphAPI(graph)
        walk = SimpleRandomWalk(api, seed=0)
        walk.start(1)
        graph.remove_edge(1, 2)
        api.cache.clear()
        with pytest.raises(DeadEndError):
            walk.step()

    def test_reset_clears_state(self, api):
        walk = SimpleRandomWalk(api, seed=0)
        walk.start(0)
        walk.step()
        walk.reset()
        assert walk.current is None
        assert walk.previous is None
        assert walk.step_index == 0


class TestRun:
    def test_fixed_steps(self, api):
        walk = SimpleRandomWalk(api, seed=1)
        result = walk.run(0, max_steps=25)
        assert result.steps == 25
        assert len(result.path) == 26
        assert len(result.samples) == 26  # burn_in=0, thinning=1
        assert not result.stopped_by_budget

    def test_burn_in_discards_prefix(self, api):
        walk = SimpleRandomWalk(api, seed=1)
        result = walk.run(0, max_steps=20, burn_in=5)
        assert all(sample.step_index >= 5 for sample in result.samples)
        assert len(result.samples) == 16

    def test_thinning(self, api):
        walk = SimpleRandomWalk(api, seed=1)
        result = walk.run(0, max_steps=20, thinning=4)
        assert len(result.samples) == 6  # steps 0, 4, 8, 12, 16, 20
        assert [sample.step_index for sample in result.samples] == [0, 4, 8, 12, 16, 20]

    def test_max_samples(self, api):
        walk = SimpleRandomWalk(api, seed=1)
        result = walk.run(0, max_samples=5)
        assert len(result.samples) == 5

    def test_budget_stops_walk(self, attributed_graph):
        api = GraphAPI(attributed_graph, budget=QueryBudget(3))
        walk = SimpleRandomWalk(api, seed=2)
        result = walk.run(0, max_steps=10_000)
        assert result.stopped_by_budget
        assert result.unique_queries == 3

    def test_budget_exhausted_before_start(self, attributed_graph):
        budget = QueryBudget(1)
        api = GraphAPI(attributed_graph, budget=budget)
        api.query(1)  # spend the only query on something else
        walk = SimpleRandomWalk(api, seed=2)
        result = walk.run(0, max_steps=10)
        assert result.stopped_by_budget
        assert result.path == []
        assert result.samples == []

    def test_unbounded_run_rejected(self, api):
        walk = SimpleRandomWalk(api, seed=0)
        with pytest.raises(ValueError):
            walk.run(0, max_steps=None)

    def test_invalid_parameters(self, api):
        walk = SimpleRandomWalk(api, seed=0)
        with pytest.raises(ValueError):
            walk.run(0, max_steps=5, thinning=0)
        with pytest.raises(ValueError):
            walk.run(0, max_steps=5, burn_in=-1)

    def test_walk_alias(self, api):
        walk = SimpleRandomWalk(api, seed=3)
        result = walk.walk(0, steps=10)
        assert result.steps == 10

    def test_path_is_contiguous(self, api, attributed_graph):
        walk = SimpleRandomWalk(api, seed=4)
        result = walk.run(0, max_steps=50)
        for u, v in zip(result.path, result.path[1:]):
            assert attributed_graph.has_edge(u, v)

    def test_sample_fields(self, api, attributed_graph):
        walk = SimpleRandomWalk(api, seed=5)
        result = walk.run(0, max_steps=10)
        for sample in result.samples:
            assert sample.degree == attributed_graph.degree(sample.node)
            assert sample.attributes["age"] == attributed_graph.attribute(sample.node, "age")
            assert sample.query_cost <= result.unique_queries

    def test_visit_counts(self, api):
        walk = SimpleRandomWalk(api, seed=6)
        result = walk.run(0, max_steps=30)
        counts = result.visit_counts()
        assert sum(counts.values()) == len(result.path)

    def test_sample_nodes_helper(self, api):
        walk = SimpleRandomWalk(api, seed=6)
        result = walk.run(0, max_steps=10)
        assert result.sample_nodes() == [sample.node for sample in result.samples]


class TestIterSteps:
    def test_streaming_until_budget(self, attributed_graph):
        api = GraphAPI(attributed_graph, budget=QueryBudget(4))
        walk = SimpleRandomWalk(api, seed=7)
        transitions = list(walk.iter_steps(0))
        assert len(transitions) >= 1
        assert api.budget.exhausted

    def test_streaming_with_exhausted_budget(self, attributed_graph):
        api = GraphAPI(attributed_graph, budget=QueryBudget(0))
        walk = SimpleRandomWalk(api, seed=7)
        assert list(walk.iter_steps(0)) == []


class TestDeterminism:
    def test_same_seed_same_walk(self, attributed_graph):
        a = SimpleRandomWalk(GraphAPI(attributed_graph), seed=42).run(0, max_steps=50)
        b = SimpleRandomWalk(GraphAPI(attributed_graph), seed=42).run(0, max_steps=50)
        assert a.path == b.path

    def test_different_seed_different_walk(self, attributed_graph):
        a = SimpleRandomWalk(GraphAPI(attributed_graph), seed=1).run(0, max_steps=50)
        b = SimpleRandomWalk(GraphAPI(attributed_graph), seed=2).run(0, max_steps=50)
        assert a.path != b.path

    def test_complete_graph_visits_everything(self):
        graph = complete_graph(6)
        walk = SimpleRandomWalk(GraphAPI(graph), seed=0)
        result = walk.run(0, max_steps=200)
        assert set(result.path) == set(graph.nodes())
