"""Cross-backend conformance suite: the contract every GraphBackend must pass.

One suite, parametrized over all shipped backends — InMemory, CSR,
memory-mapped CSR snapshot, crawl-dump replay, the remote
``HTTPGraphBackend`` driving a live in-process server, the
``ShardedBackend`` driving *three* live in-process shard servers through a
consistent-hash ring (once unreplicated, once with replication factor 2),
and the SQLite-served ``WarehouseBackend`` over an ingested full dump — asserting that they are *indistinguishable* through
the access layer: identical ``RawRecord``s (neighbor order included),
identical golden walk fingerprints for every transition kernel under fixed
seeds, identical ``QueryStats`` accounting through the full middleware
stack, and loss-free snapshot / dump round trips.

Any future backend (async, tiered) must be added to ``BACKEND_KINDS`` and
pass unchanged: the paper's cost model and every seeded experiment depend on
storage being invisible above the backend protocol.  The ``http`` entry is
the proof for the client/server split, and the ``sharded`` entry for the
cluster tier: a partitioned graph walks bit-identically to a local one,
with the exact same accounting.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import pytest

from repro.api import (
    AsyncHTTPGraphBackend,
    CSRBackend,
    GraphBackend,
    HTTPGraphBackend,
    InMemoryBackend,
    as_backend,
    build_api,
)
from repro.api.ratelimit import FixedWindowPolicy
from repro.exceptions import (
    CrawlDumpError,
    NodeNotFoundError,
    ReplayMissError,
    SnapshotError,
)
from repro.graphs import Graph, load_dataset
from repro.storage import (
    MmapCSRBackend,
    ReplayBackend,
    dump_crawl,
    load_crawl,
    load_snapshot,
    save_snapshot,
)
from repro.walks import make_walker
import repro.obs as obs

#: Every backend the library ships; the whole suite runs once per entry.
BACKEND_KINDS = (
    "memory", "csr", "mmap", "replay", "http", "async", "sharded",
    "replicated", "warehouse",
)

#: Kernels whose walks must fingerprint identically on every backend.
KERNEL_NAMES = ("srw", "mhrw", "nbsrw", "cnrw", "nbcnrw", "gnrw_by_degree")

# Golden fingerprints for the conformance graph (facebook_like, seed=7,
# scale=0.12; start nodes()[0]; walker seed 7; budget 60) — the exact walks
# the pre-refactor monolithic GraphAPI produced, re-pinned here independently
# of tests/test_api_stack.py so storage backends are checked against the
# historic behaviour, not merely against each other.
GOLDEN = {
    "srw": dict(unique=60, total=309, path_len=155, crc=4134503233),
    "cnrw": dict(unique=60, total=313, path_len=157, crc=4053506785),
    "gnrw_by_degree": dict(unique=60, total=265, path_len=133, crc=3972249094),
    "nbcnrw": dict(unique=60, total=251, path_len=126, crc=2042235279),
    "mhrw": dict(unique=60, total=405, path_len=203, crc=726656939),
}
GOLDEN_BUDGET = 60
GOLDEN_SEED = 7


def _path_crc(path):
    return zlib.crc32(",".join(map(str, path)).encode())


@pytest.fixture(scope="module", autouse=True)
def _telemetry_on():
    """The whole conformance suite runs with telemetry enabled.

    The golden fingerprints are the proof that tracing is inert: every
    backend must reproduce the exact pre-telemetry walks while a live
    tracer collects spans and the global registry counts every query.
    """
    tracer = obs.Tracer()
    obs.enable_telemetry()
    try:
        with obs.use_tracer(tracer):
            yield
    finally:
        obs.disable_telemetry()
        obs.global_registry().reset()


@pytest.fixture(scope="module")
def conformance_graph() -> Graph:
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def snapshot_dir(conformance_graph, tmp_path_factory) -> Path:
    return save_snapshot(conformance_graph, tmp_path_factory.mktemp("snap") / "csr")


@pytest.fixture(scope="module")
def dump_path(conformance_graph, tmp_path_factory) -> Path:
    # A full dump (every node) so any seeded walk stays inside the replay.
    backend = InMemoryBackend(conformance_graph)
    return dump_crawl(
        backend,
        tmp_path_factory.mktemp("dump") / "crawl.jsonl",
        nodes=backend.node_ids(),
    )


@pytest.fixture(scope="module")
def warehouse_path(dump_path, tmp_path_factory) -> Path:
    """A warehouse holding one ingested full dump of the conformance graph."""
    from repro.warehouse import CrawlWarehouse

    store = tmp_path_factory.mktemp("warehouse") / "wh.sqlite"
    warehouse = CrawlWarehouse.create(store, name="conformance")
    try:
        warehouse.ingest(dump_path)
    finally:
        warehouse.close()
    return store


@pytest.fixture(scope="module")
def http_server(conformance_graph, graph_server):
    """One live in-process server over the conformance graph, per module."""
    return graph_server(InMemoryBackend(conformance_graph))


@pytest.fixture(scope="module")
def async_http_server(conformance_graph, async_graph_server):
    """One live in-process *asyncio* server over the conformance graph."""
    return async_graph_server(InMemoryBackend(conformance_graph))


@pytest.fixture(scope="module")
def remote_cluster_manifest(snapshot_dir, graph_server, tmp_path_factory) -> Path:
    """Partition the conformance snapshot, serve every shard, point a
    ``cluster.json`` at the three live servers."""
    from repro.cluster import load_shard, partition_snapshot

    out_dir = partition_snapshot(
        snapshot_dir, tmp_path_factory.mktemp("cluster") / "parts", shards=3
    )
    manifest = json.loads((out_dir / "cluster.json").read_text())
    for entry in manifest["shards"]:
        server = graph_server(load_shard(out_dir / entry["source"]))
        entry["source"] = server.url
    remote = out_dir / "cluster-remote.json"
    remote.write_text(json.dumps(manifest, indent=2))
    return remote


@pytest.fixture(scope="module")
def replicated_cluster_manifest(snapshot_dir, graph_server, tmp_path_factory) -> Path:
    """Same cluster wiring, but every node stored on two of the three shards:
    reads rotate round-robin across replicas, so conformance here proves
    failover routing is invisible above the backend protocol."""
    from repro.cluster import load_shard, partition_snapshot

    out_dir = partition_snapshot(
        snapshot_dir, tmp_path_factory.mktemp("replicated") / "parts",
        shards=3, replicas=2,
    )
    manifest = json.loads((out_dir / "cluster.json").read_text())
    for entry in manifest["shards"]:
        server = graph_server(load_shard(out_dir / entry["source"]))
        entry["source"] = server.url
    remote = out_dir / "cluster-remote.json"
    remote.write_text(json.dumps(manifest, indent=2))
    return remote


@pytest.fixture(params=BACKEND_KINDS)
def backend(
    request, conformance_graph, snapshot_dir, dump_path, http_server,
    async_http_server, remote_cluster_manifest, replicated_cluster_manifest,
    warehouse_path,
):
    kind = request.param
    if kind == "memory":
        made: GraphBackend = InMemoryBackend(conformance_graph)
    elif kind == "csr":
        made = CSRBackend.from_graph(conformance_graph)
    elif kind == "mmap":
        made = load_snapshot(snapshot_dir)
    elif kind == "replay":
        made = load_crawl(dump_path)
    elif kind == "http":
        made = HTTPGraphBackend(http_server.url, timeout=10.0)
    elif kind == "async":
        # The asyncio client against the asyncio multi-tenant server: both
        # halves of the PR-9 frontend must be invisible above the protocol.
        made = AsyncHTTPGraphBackend(async_http_server.url, timeout=10.0)
    elif kind == "warehouse":
        from repro.warehouse import WarehouseBackend

        made = WarehouseBackend(warehouse_path)
    elif kind == "replicated":
        # Replicated cluster: three live shard servers, replication factor 2.
        made = as_backend(str(replicated_cluster_manifest))
    else:
        # The whole cluster path: manifest -> ring + three HTTP shard clients.
        made = as_backend(str(remote_cluster_manifest))
    yield made
    made.close()


@pytest.fixture
def reference(conformance_graph) -> InMemoryBackend:
    return InMemoryBackend(conformance_graph)


# ----------------------------------------------------------------------
# Raw record conformance
# ----------------------------------------------------------------------
class TestRawRecords:
    def test_every_record_identical_to_reference(self, backend, reference):
        for node in reference.node_ids():
            assert backend.fetch(node) == reference.fetch(node)

    def test_fetch_many_preserves_order_and_duplicates(self, backend, reference):
        nodes = reference.node_ids()
        probe = [nodes[2], nodes[0], nodes[2], nodes[5]]
        records = backend.fetch_many(probe)
        assert [record.node for record in records] == probe
        assert records == reference.fetch_many(probe)

    def test_missing_node_raises_node_not_found(self, backend):
        missing = "no-such-node"
        with pytest.raises(NodeNotFoundError):
            backend.fetch(missing)
        with pytest.raises(NodeNotFoundError):
            backend.fetch_many([missing])
        assert not backend.contains(missing)

    @pytest.mark.parametrize("bogus", ["zzz", 1.5, -1, 10**9])
    def test_identity_id_backends_reject_foreign_ids(self, tmp_path, bogus):
        """Identity-id CSR (and its snapshot) must match fetch()'s typed miss.

        The fetch_many fast path skips the id table entirely, so it needs its
        own guard: a float, string or out-of-range id raises
        NodeNotFoundError — never ValueError, never a silently wrong record.
        """
        csr = CSRBackend.from_edges([(0, 1), (1, 2), (2, 0)])
        mmapped = load_snapshot(save_snapshot(csr, tmp_path / "identity"))
        for identity_backend in (csr, mmapped):
            with pytest.raises(NodeNotFoundError):
                identity_backend.fetch(bogus)
            with pytest.raises(NodeNotFoundError):
                identity_backend.fetch_many([0, bogus])
            assert not identity_backend.contains(bogus)

    def test_contains_metadata_and_len_agree(self, backend, reference):
        assert len(backend) == len(reference)
        assert sorted(backend.node_ids()) == sorted(reference.node_ids())
        for node in reference.node_ids()[:25]:
            assert backend.contains(node)
            assert backend.metadata(node) == reference.metadata(node)
        assert backend.metadata("no-such-node") is None


# ----------------------------------------------------------------------
# Golden walk fingerprints
# ----------------------------------------------------------------------
class TestGoldenWalks:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_kernel_fingerprint_identical_on_every_backend(
        self, backend, reference, conformance_graph, kernel_name
    ):
        def run(source):
            api = build_api(source, budget=GOLDEN_BUDGET)
            result = make_walker(kernel_name, api=api, seed=GOLDEN_SEED).run(
                conformance_graph.nodes()[0], max_steps=None
            )
            return result.path, result.unique_queries, result.total_queries

        path, unique, total = run(backend)
        assert (path, unique, total) == run(reference)
        golden = GOLDEN.get(kernel_name)
        if golden is not None:
            assert unique == golden["unique"]
            assert total == golden["total"]
            assert len(path) == golden["path_len"]
            assert _path_crc(path) == golden["crc"]

    def test_scheduler_ensemble_identical_on_every_backend(
        self, backend, reference, conformance_graph
    ):
        """Batched lockstep ensembles fingerprint identically too."""
        from repro.engine import WalkScheduler

        def run(source):
            api = build_api(source, budget=120)
            walkers = [make_walker("cnrw", api=api, seed=seed) for seed in (1, 2, 3, 4)]
            starts = conformance_graph.nodes()[:4]
            results = WalkScheduler(api).run(walkers, starts, steps=40)
            return (
                [result.path for result in results],
                api.unique_queries,
                api.total_queries,
            )

        assert run(backend) == run(reference)


# ----------------------------------------------------------------------
# QueryStats through the full middleware stack
# ----------------------------------------------------------------------
class TestQueryStatsConformance:
    def _crawl(self, source, conformance_graph):
        api = build_api(
            source,
            budget=GOLDEN_BUDGET,
            rate_limit=FixedWindowPolicy(max_calls=100, window_seconds=1.0),
            trace=True,
        )
        make_walker("cnrw", api=api, seed=GOLDEN_SEED).run(
            conformance_graph.nodes()[0], max_steps=None
        )
        return api

    def test_full_stack_accounting_identical(self, backend, reference, conformance_graph):
        stacked = self._crawl(backend, conformance_graph)
        expected = self._crawl(reference, conformance_graph)
        assert stacked.unique_queries == expected.unique_queries
        assert stacked.total_queries == expected.total_queries
        assert stacked.trace.queried_nodes == expected.trace.queried_nodes
        assert stacked.trace.fresh_nodes == expected.trace.fresh_nodes
        assert stacked.trace.frequency() == expected.trace.frequency()
        assert stacked.clock.now == expected.clock.now

    def test_batched_query_many_accounting_identical(self, backend, reference):
        def batch(source):
            api = build_api(source)
            nodes = sorted(source.node_ids(), key=repr)[:10]
            views = api.query_many(nodes + nodes)  # second half are cache hits
            return (
                [view.node for view in views],
                [view.neighbors for view in views],
                api.unique_queries,
                api.total_queries,
            )

        assert batch(backend) == batch(reference)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_snapshot_roundtrip_is_lossless(self, conformance_graph, tmp_path):
        csr = CSRBackend.from_graph(conformance_graph)
        directory = save_snapshot(csr, tmp_path / "snap")
        for loaded in (load_snapshot(directory), load_snapshot(directory, mmap=False)):
            assert len(loaded) == len(csr)
            assert loaded.node_ids() == csr.node_ids()
            for node in csr.node_ids():
                assert loaded.fetch(node) == csr.fetch(node)
        assert isinstance(load_snapshot(directory), MmapCSRBackend)
        assert not isinstance(load_snapshot(directory, mmap=False), MmapCSRBackend)

    def test_snapshot_of_mmap_backend_copies(self, snapshot_dir, tmp_path):
        first = load_snapshot(snapshot_dir)
        copied = save_snapshot(first, tmp_path / "copy")
        second = load_snapshot(copied)
        assert second.node_ids() == first.node_ids()
        assert second.fetch(first.node_ids()[0]) == first.fetch(first.node_ids()[0])

    def test_resaving_snapshot_onto_itself_is_safe(self, conformance_graph, tmp_path):
        """Saving a live mmap backend back over its own directory must not
        truncate the files its arrays are mapped from."""
        directory = save_snapshot(conformance_graph, tmp_path / "self")
        live = load_snapshot(directory)
        reference = live.fetch(live.node_ids()[0])
        save_snapshot(live, directory)
        # Both the still-open backend and a fresh load stay intact.
        assert live.fetch(live.node_ids()[0]) == reference
        reopened = load_snapshot(directory)
        assert reopened.node_ids() == live.node_ids()
        assert reopened.fetch(live.node_ids()[0]) == reference

    def test_dump_roundtrip_is_lossless(self, conformance_graph, tmp_path):
        backend = InMemoryBackend(conformance_graph)
        path = dump_crawl(backend, tmp_path / "crawl.jsonl", nodes=backend.node_ids())
        replay = load_crawl(path)
        assert replay.node_ids() == backend.node_ids()
        for node in backend.node_ids():
            assert replay.fetch(node) == backend.fetch(node)

    def test_gzip_dump_roundtrip(self, conformance_graph, tmp_path):
        backend = InMemoryBackend(conformance_graph)
        nodes = backend.node_ids()[:10]
        path = dump_crawl(backend, tmp_path / "crawl.jsonl.gz", nodes=nodes)
        replay = load_crawl(path)
        assert replay.node_ids() == nodes

    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_traced_run_dump_replays_the_same_walk(
        self, conformance_graph, tmp_path, kernel_name
    ):
        """Record -> dump -> replay reproduces the walk for *every* kernel.

        The metadata-peeking kernels (MHRW degree lookups, GNRW grouping) are
        the demanding cases: they consult neighbors the crawl never fetched,
        so the dump's boundary ``meta`` records must answer those peeks.
        """
        api = build_api(conformance_graph, budget=GOLDEN_BUDGET, trace=True)
        start = conformance_graph.nodes()[0]
        original = make_walker(kernel_name, api=api, seed=GOLDEN_SEED).run(
            start, max_steps=None
        )
        path = dump_crawl(api, tmp_path / "run.jsonl")
        replay_api = build_api(load_crawl(path), budget=GOLDEN_BUDGET)
        replayed = make_walker(kernel_name, api=replay_api, seed=GOLDEN_SEED).run(
            start, max_steps=None
        )
        assert replayed.path == original.path
        assert replayed.unique_queries == original.unique_queries
        assert replayed.total_queries == original.total_queries

    def test_dump_requires_nodes_or_trace(self, conformance_graph, tmp_path):
        with pytest.raises(ValueError, match="trace"):
            dump_crawl(build_api(conformance_graph), tmp_path / "x.jsonl")


# ----------------------------------------------------------------------
# Replay misses and malformed storage
# ----------------------------------------------------------------------
class TestStorageErrors:
    def test_out_of_dump_query_raises_typed_error(self, conformance_graph, tmp_path):
        backend = InMemoryBackend(conformance_graph)
        nodes = backend.node_ids()[:5]
        replay = load_crawl(dump_crawl(backend, tmp_path / "part.jsonl", nodes=nodes))
        outside = backend.node_ids()[10]
        with pytest.raises(ReplayMissError) as excinfo:
            replay.fetch(outside)
        assert excinfo.value.node == outside
        assert isinstance(excinfo.value, NodeNotFoundError)
        # Through a full stack the miss surfaces unchanged.
        api = build_api(replay, budget=50)
        with pytest.raises(ReplayMissError):
            api.query(outside)

    def test_replay_miss_roundtrips_over_http(
        self, conformance_graph, graph_server, tmp_path
    ):
        """ReplayMissError -> HTTP 404 -> client typed error, id intact.

        A replay-backed *server* must report out-of-dump queries exactly like
        a local replay: the client raises a NodeNotFoundError (specifically
        ReplayMissError) carrying the original node id — both as the typed
        ``.node`` attribute and in the human-readable message.
        """
        backend = InMemoryBackend(conformance_graph)
        nodes = backend.node_ids()[:5]
        dump = dump_crawl(backend, tmp_path / "part.jsonl", nodes=nodes)
        server = graph_server(load_crawl(dump))
        outside = backend.node_ids()[10]
        with HTTPGraphBackend(server.url) as client:
            # Recorded nodes replay identically through the service.
            assert client.fetch(nodes[0]) == backend.fetch(nodes[0])
            with pytest.raises(NodeNotFoundError) as excinfo:
                client.fetch(outside)
            assert isinstance(excinfo.value, ReplayMissError)
            assert excinfo.value.node == outside
            assert str(outside) in str(excinfo.value)
            # Through a full middleware stack the typed miss surfaces too.
            api = build_api(client, budget=20)
            with pytest.raises(ReplayMissError):
                api.query(outside)
            # Batched fetches 404 with the same typed, id-carrying error.
            with pytest.raises(ReplayMissError) as batch_info:
                client.fetch_many([nodes[0], outside])
            assert batch_info.value.node == outside

    def test_snapshot_rejects_missing_or_foreign_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            load_snapshot(tmp_path)

    def test_snapshot_rejects_malformed_manifest_shapes(self, snapshot_dir, tmp_path):
        """Valid JSON of the wrong shape must still fail with SnapshotError."""
        import json
        import shutil

        non_object = tmp_path / "non-object"
        non_object.mkdir()
        (non_object / "manifest.json").write_text("[]")
        with pytest.raises(SnapshotError, match="JSON object"):
            load_snapshot(non_object)

        clone = tmp_path / "no-counts"
        shutil.copytree(snapshot_dir, clone)
        manifest = json.loads((clone / "manifest.json").read_text())
        del manifest["nodes"]
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="nodes"):
            load_snapshot(clone)

    def test_snapshot_rejects_foreign_dtype(self, snapshot_dir, tmp_path):
        """A non-int64 snapshot must fail loudly, not silently copy into RAM."""
        import json
        import shutil

        clone = tmp_path / "int32"
        shutil.copytree(snapshot_dir, clone)
        manifest = json.loads((clone / "manifest.json").read_text())
        manifest["dtype"] = "int32"
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="dtype"):
            load_snapshot(clone)

    def test_session_dump_requires_a_recorded_run(self, conformance_graph, tmp_path):
        from repro.api import SamplingSession

        session = SamplingSession(conformance_graph).trace()
        with pytest.raises(ValueError, match="empty"):
            session.dump_crawl(tmp_path / "early.jsonl")
        untraced = SamplingSession(conformance_graph)
        with pytest.raises(ValueError, match="trac"):
            untraced.dump_crawl(tmp_path / "untraced.jsonl")

    def test_snapshot_rejects_future_version(self, snapshot_dir, tmp_path):
        import json
        import shutil

        clone = tmp_path / "future"
        shutil.copytree(snapshot_dir, clone)
        manifest = json.loads((clone / "manifest.json").read_text())
        manifest["version"] = 99
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(clone)

    def test_save_rejects_ids_and_attributes_json_would_degrade(self, tmp_path):
        """Tuple ids / non-native attribute values fail loudly at save time.

        JSON would silently turn them into lists (reported as a successful
        save, then an unreadable or different snapshot), so both writers must
        refuse before touching the disk.
        """
        tuple_ids = Graph(name="tuples")
        tuple_ids.add_edges([(("a", 1), ("b", 2)), (("b", 2), ("c", 3))])
        with pytest.raises(SnapshotError, match="JSON round trip"):
            save_snapshot(tuple_ids, tmp_path / "bad-ids")
        assert not (tmp_path / "bad-ids" / "manifest.json").exists()
        with pytest.raises(CrawlDumpError, match="JSON-representable"):
            backend = InMemoryBackend(tuple_ids)
            dump_crawl(backend, tmp_path / "bad.jsonl", nodes=backend.node_ids())

        tuple_attrs = Graph(name="attrs")
        tuple_attrs.add_edges([(0, 1)])
        tuple_attrs.set_attributes(0, coords=(1, 2))
        with pytest.raises(SnapshotError, match="attributes"):
            save_snapshot(tuple_attrs, tmp_path / "bad-attrs")
        with pytest.raises(CrawlDumpError, match="JSON-representable"):
            dump_crawl(InMemoryBackend(tuple_attrs), tmp_path / "bad2.jsonl", nodes=[0])

    def test_truncated_gzip_dump_raises_typed_error(self, conformance_graph, tmp_path):
        backend = InMemoryBackend(conformance_graph)
        path = dump_crawl(
            backend, tmp_path / "crawl.jsonl.gz", nodes=backend.node_ids()
        )
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(CrawlDumpError, match="truncated"):
            load_crawl(cut)

    def test_corrupt_sidecar_files_raise_snapshot_error(self, tmp_path):
        graph = Graph(name="named")
        graph.add_edges([("a", "b"), ("b", "c")])  # forces node_ids.json
        directory = save_snapshot(graph, tmp_path / "snap")
        (directory / "node_ids.json").write_text("{not json")
        with pytest.raises(SnapshotError, match="node_ids"):
            load_snapshot(directory)
        (directory / "node_ids.json").unlink()
        with pytest.raises(SnapshotError, match="node_ids"):
            load_snapshot(directory)

    def test_dump_rejects_foreign_and_truncated_files(self, conformance_graph, tmp_path):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"format": "something-else"}\n')
        with pytest.raises(CrawlDumpError, match="format"):
            load_crawl(foreign)
        backend = InMemoryBackend(conformance_graph)
        path = dump_crawl(backend, tmp_path / "t.jsonl", nodes=backend.node_ids()[:5])
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(CrawlDumpError, match="truncated"):
            load_crawl(path)


# ----------------------------------------------------------------------
# as_backend coercion (satellite: clear errors + path branch)
# ----------------------------------------------------------------------
class TestAsBackend:
    def test_backend_passes_through(self, reference):
        assert as_backend(reference) is reference

    def test_graph_wraps_in_memory(self, conformance_graph):
        assert isinstance(as_backend(conformance_graph), InMemoryBackend)

    def test_str_path_opens_snapshot(self, snapshot_dir):
        assert isinstance(as_backend(str(snapshot_dir)), MmapCSRBackend)

    def test_pathlib_path_opens_dump(self, dump_path):
        assert isinstance(as_backend(Path(dump_path)), ReplayBackend)

    def test_warehouse_file_opens_warehouse_backend(self, warehouse_path):
        """SQLite magic (not the suffix) routes a file to the warehouse."""
        from repro.warehouse import WarehouseBackend

        backend = as_backend(warehouse_path)
        assert isinstance(backend, WarehouseBackend)
        backend.close()
        disguised = warehouse_path.parent / "crawl.jsonl"
        disguised.write_bytes(warehouse_path.read_bytes())
        backend = as_backend(str(disguised))
        assert isinstance(backend, WarehouseBackend)
        backend.close()

    def test_url_opens_http_backend(self, http_server):
        backend = as_backend(http_server.url)
        assert isinstance(backend, HTTPGraphBackend)
        backend.close()

    def test_missing_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="snapshot"):
            as_backend(tmp_path / "nowhere")

    @pytest.mark.parametrize("bogus", [42, 3.5, ["edges"], {"a": 1}, None])
    def test_unsupported_type_lists_accepted_types(self, bogus):
        """The TypeError enumerates *every* accepted source, not a subset."""
        with pytest.raises(TypeError) as excinfo:
            as_backend(bogus)
        message = str(excinfo.value)
        assert type(bogus).__name__ in message
        for accepted in ("Graph", "GraphBackend", "str", "Path", "http(s)://",
                         "cluster://", "snapshot", "cluster.json",
                         "crawl-dump", ".sqlite"):
            assert accepted in message

    def test_missing_path_error_lists_accepted_formats(self, tmp_path):
        """The FileNotFoundError enumerates every on-disk format too."""
        with pytest.raises(FileNotFoundError) as excinfo:
            as_backend(tmp_path / "nowhere")
        message = str(excinfo.value)
        for accepted in ("snapshot", "shard", "cluster.json", "crawl-dump",
                         ".sqlite"):
            assert accepted in message

    def test_build_api_accepts_paths(self, snapshot_dir, conformance_graph):
        api = build_api(snapshot_dir, budget=10)
        node = conformance_graph.nodes()[0]
        assert api.query(node).neighbors == tuple(conformance_graph.neighbors(node))

    def test_random_node_identical_and_lazy_for_identity_ids(self, tmp_path):
        """Identity backends sample starts without materialising node_ids.

        The direct draw must consume the rng exactly like the historic
        node_ids()[rng.integers(...)] lookup, so seeded runs are unchanged.
        """
        from repro.rng import make_rng

        csr = CSRBackend.from_edges([(i, i + 1) for i in range(50)])
        mmapped = load_snapshot(save_snapshot(csr, tmp_path / "ids"))
        assert csr.identity_ids and mmapped.identity_ids
        for identity_backend in (csr, mmapped):
            direct = identity_backend.sample_node(make_rng(11))
            legacy = identity_backend.node_ids()[
                int(make_rng(11).integers(0, len(identity_backend)))
            ]
            assert direct == legacy
            api = build_api(identity_backend)
            assert api.random_node(seed=11) == direct

    def test_session_accepts_paths(self, snapshot_dir, dump_path):
        from repro.api import SamplingSession

        for source in (snapshot_dir, str(dump_path)):
            session = SamplingSession(source, seed=1).budget(20).walker("srw", seed=1)
            result = session.run(max_steps=5)
            assert result.steps <= 5
