"""Tests for the walk-engine scheduler (`repro.engine`)."""

from __future__ import annotations

import pytest

from repro import SchedulerPolicy, WalkScheduler, build_api
from repro.api.backend import GraphBackend, RawRecord
from repro.exceptions import DeadEndError, InvalidConfigurationError, InvalidStartNodeError
from repro.walks import make_walker

ALL_WALKERS = ["srw", "mhrw", "nbsrw", "cnrw", "cnrw_node", "nbcnrw", "gnrw_by_degree", "gnrw_by_md5"]


def _schedule(graph_or_backend, names_seeds, starts, *, budget=None, steps=None,
              policy=None, burn_in=0, thinning=1):
    """Build a fresh stack plus walkers and run one schedule."""
    api = build_api(graph_or_backend, budget=budget)
    walkers = [make_walker(name, api=api, seed=seed) for name, seed in names_seeds]
    results = WalkScheduler(api, policy=policy).run(
        walkers, starts, steps=steps, burn_in=burn_in, thinning=thinning
    )
    return api, results


class TestSequentialParity:
    """The scheduler must reproduce RandomWalk.run bit for bit."""

    @pytest.mark.parametrize("name", ALL_WALKERS)
    def test_steps_bounded_walks_match_run(self, facebook_small, name):
        start = facebook_small.nodes()[0]
        reference = make_walker(name, api=build_api(facebook_small), seed=7).run(
            start, max_steps=120
        )
        _, results = _schedule(facebook_small, [(name, 7)], [start], steps=120)
        scheduled = results[0]
        assert scheduled.path == reference.path
        assert [s.node for s in scheduled.samples] == [s.node for s in reference.samples]
        assert [s.query_cost for s in scheduled.samples] == [
            s.query_cost for s in reference.samples
        ]
        assert scheduled.unique_queries == reference.unique_queries

    @pytest.mark.parametrize("name", ALL_WALKERS)
    def test_budget_bounded_walks_match_run(self, facebook_small, name):
        """The LEGACY_GOLDEN configuration: walk until a 60-query budget dies."""
        start = facebook_small.nodes()[0]
        reference = make_walker(name, api=build_api(facebook_small, budget=60), seed=7).run(
            start, max_steps=None
        )
        _, results = _schedule(facebook_small, [(name, 7)], [start], budget=60)
        scheduled = results[0]
        assert scheduled.path == reference.path
        assert scheduled.stopped_by_budget and reference.stopped_by_budget
        assert scheduled.unique_queries == reference.unique_queries == 60

    def test_burn_in_and_thinning_match_run(self, facebook_small):
        start = facebook_small.nodes()[0]
        reference = make_walker("cnrw", api=build_api(facebook_small), seed=3).run(
            start, max_steps=90, burn_in=10, thinning=3
        )
        _, results = _schedule(
            facebook_small, [("cnrw", 3)], [start], steps=90, burn_in=10, thinning=3
        )
        scheduled = results[0]
        assert scheduled.path == reference.path
        assert [(s.node, s.step_index) for s in scheduled.samples] == [
            (s.node, s.step_index) for s in reference.samples
        ]

    def test_scheduler_issues_fewer_total_queries(self, facebook_small):
        """View-fed stepping removes the per-walker cache-hit query calls."""
        start = facebook_small.nodes()[0]
        reference_api = build_api(facebook_small)
        make_walker("srw", api=reference_api, seed=7).run(start, max_steps=120)
        api, _ = _schedule(facebook_small, [("srw", 7)], [start], steps=120)
        assert api.unique_queries == reference_api.unique_queries
        assert api.total_queries < reference_api.total_queries


class TestFrontierBatching:
    def test_duplicate_frontier_nodes_fetched_once(self, facebook_small):
        """Identical walkers collapse to a frontier of one node per round."""
        start = facebook_small.nodes()[0]
        solo_api, solo = _schedule(facebook_small, [("cnrw", 9)], [start], steps=40)
        quad_api, quad = _schedule(
            facebook_small, [("cnrw", 9)] * 4, [start] * 4, steps=40
        )
        assert all(result.path == solo[0].path for result in quad)
        # Same frontier every round -> same unique AND same total query count.
        assert quad_api.unique_queries == solo_api.unique_queries
        assert quad_api.total_queries == solo_api.total_queries

    def test_ensemble_unique_cost_no_worse_than_sequential(self, facebook_small):
        starts = facebook_small.nodes()[:4]
        seeds = [(f"srw", seed) for seed in (1, 2, 3, 4)]
        sequential_api = build_api(facebook_small)
        for (name, seed), start in zip(seeds, starts):
            make_walker(name, api=sequential_api, seed=seed).run(start, max_steps=50)
        scheduled_api, _ = _schedule(facebook_small, seeds, starts, steps=50)
        assert scheduled_api.unique_queries <= sequential_api.unique_queries


class TestStepBudgets:
    def test_per_walker_step_budgets(self, facebook_small):
        starts = facebook_small.nodes()[:3]
        _, results = _schedule(
            facebook_small, [("srw", 1), ("srw", 2), ("srw", 3)], starts, steps=[10, 25, 0]
        )
        assert [result.steps for result in results] == [10, 25, 0]
        assert len(results[2].path) == 1  # placed, sampled, never stepped
        assert len(results[2].samples) == 1

    def test_steps_sequence_length_validated(self, facebook_small):
        with pytest.raises(ValueError):
            _schedule(facebook_small, [("srw", 1)], [facebook_small.nodes()[0]], steps=[5, 5])

    def test_unbounded_without_budget_rejected(self, facebook_small):
        with pytest.raises(ValueError):
            _schedule(facebook_small, [("srw", 1)], [facebook_small.nodes()[0]], steps=None)

    def test_starts_must_match_walkers(self, facebook_small):
        api = build_api(facebook_small)
        walkers = [make_walker("srw", api=api, seed=1)]
        with pytest.raises(ValueError):
            WalkScheduler(api).run(walkers, facebook_small.nodes()[:2], steps=5)

    def test_empty_schedule_is_empty(self, facebook_small):
        api = build_api(facebook_small)
        assert WalkScheduler(api).run([], [], steps=5) == []


class TestCachelessStacks:
    """Without a cache layer every query bills; the view memo must not
    silently waive that (a cache-less crawl study enforces its budget)."""

    def test_revisits_are_rebilled(self, small_cycle):
        api = build_api(small_cycle, cache=False)
        walkers = [make_walker("srw", api=api, seed=1)]
        WalkScheduler(api).run(walkers, [0], steps=40)
        # An 8-cycle has 8 distinct nodes; 40 steps of re-billed revisits
        # must cost far more than the distinct-node count.
        assert api.unique_queries > 8

    def test_budget_is_enforced(self, facebook_small):
        api = build_api(facebook_small, budget=30, cache=False)
        walkers = [make_walker("srw", api=api, seed=7)]
        results = WalkScheduler(api).run(walkers, [facebook_small.nodes()[0]], steps=200)
        assert results[0].stopped_by_budget
        assert api.unique_queries <= 30

    def test_cached_stack_memo_still_amortises(self, small_cycle):
        api = build_api(small_cycle)  # default stack: unbounded cache
        walkers = [make_walker("srw", api=api, seed=1)]
        WalkScheduler(api).run(walkers, [0], steps=40)
        assert api.unique_queries <= 8

    def test_bounded_lru_cache_rebills_evicted_revisits(self, small_cycle):
        """An LRU cache's re-billing semantics must survive scheduling: the
        schedule-long memo would otherwise shadow evictions entirely."""
        api = build_api(small_cycle, cache_capacity=2)
        walkers = [make_walker("srw", api=api, seed=1)]
        WalkScheduler(api).run(walkers, [0], steps=60)
        # With only 2 cache slots on an 8-cycle, revisits keep getting
        # evicted and re-billed; 8 unique bills would mean the memo leaked.
        assert api.unique_queries > 8


class TestBudgetExhaustion:
    def test_all_lanes_stop_within_one_step(self, facebook_small):
        starts = facebook_small.nodes()[:5]
        _, results = _schedule(
            facebook_small, [("srw", seed) for seed in range(5)], starts,
            budget=23, steps=200,
        )
        assert all(result.stopped_by_budget for result in results)
        step_counts = [result.steps for result in results]
        assert max(step_counts) - min(step_counts) <= 1

    def test_budget_spent_exactly(self, facebook_small):
        api, results = _schedule(
            facebook_small, [("srw", 0), ("srw", 1)], facebook_small.nodes()[:2],
            budget=9, steps=100,
        )
        assert api.unique_queries <= 9
        assert all(result.stopped_by_budget for result in results)

    def test_completed_lanes_not_flagged_as_budget_stopped(self, facebook_small):
        """A lane that finished its own step budget before the shared query
        budget died completed normally and must not carry the flag."""
        api = build_api(facebook_small, budget=30)
        walkers = [make_walker("srw", api=api, seed=s) for s in (1, 2)]
        results = WalkScheduler(api).run(
            walkers, facebook_small.nodes()[:2], steps=[1, 500]
        )
        assert results[0].steps == 1
        assert not results[0].stopped_by_budget
        assert results[1].stopped_by_budget

    def test_budget_exhausted_before_start(self, attributed_graph):
        api = build_api(attributed_graph, budget=0)
        walkers = [make_walker("srw", api=api, seed=0)]
        results = WalkScheduler(api).run(walkers, [0], steps=5)
        assert results[0].path == []
        assert results[0].stopped_by_budget


class _AsymmetricBackend(GraphBackend):
    """Directed-style adjacency with a genuine dead end (node 3)."""

    name = "asymmetric"

    def __init__(self):
        self._adjacency = {
            0: (1, 2),
            1: (2, 3),
            2: (0, 3),
            3: (),          # dead end: no outgoing neighbors
            4: (0,),        # restart landing zone
        }

    def fetch(self, node):
        if node not in self._adjacency:
            from repro.exceptions import NodeNotFoundError

            raise NodeNotFoundError(node)
        return RawRecord(node=node, neighbors=tuple(self._adjacency[node]), attributes={})

    def contains(self, node):
        return node in self._adjacency

    def metadata(self, node):
        if node not in self._adjacency:
            return None
        return {"degree": len(self._adjacency[node]), "attributes": {}}

    def node_ids(self):
        return list(self._adjacency)


class TestDeadEndPolicy:
    def test_raise_is_default(self):
        api = build_api(_AsymmetricBackend())
        walkers = [make_walker("srw", api=api, seed=0)]
        with pytest.raises(DeadEndError):
            WalkScheduler(api).run(walkers, [1], steps=50)

    def test_stop_retires_only_the_dead_lane(self):
        api = build_api(_AsymmetricBackend())
        walkers = [make_walker("srw", api=api, seed=seed) for seed in (0, 1)]
        policy = SchedulerPolicy(on_dead_end="stop")
        results = WalkScheduler(api, policy=policy).run(walkers, [1, 1], steps=40)
        # Every lane ends either at the step budget or parked on the dead end.
        for result in results:
            assert result.steps == 40 or result.path[-1] == 3
        assert any(result.path[-1] == 3 and result.steps < 40 for result in results)

    def test_restart_replants_the_walker(self):
        api = build_api(_AsymmetricBackend())
        walkers = [make_walker("srw", api=api, seed=2)]
        policy = SchedulerPolicy(on_dead_end="restart")
        results = WalkScheduler(api, policy=policy).run(walkers, [1], steps=30)
        result = results[0]
        assert 3 in result.path  # reached the dead end...
        assert result.path[-1] != 3  # ...and kept walking elsewhere afterwards
        assert result.steps > 0

    def test_restart_budget_respected(self):
        api = build_api(_AsymmetricBackend())
        walkers = [make_walker("srw", api=api, seed=2)]
        policy = SchedulerPolicy(on_dead_end="restart", max_restarts=0)
        results = WalkScheduler(api, policy=policy).run(walkers, [1], steps=30)
        # Out of restarts -> the lane stops at the dead end instead.
        assert results[0].path[-1] == 3

    def test_dead_start_raises_by_default(self):
        api = build_api(_AsymmetricBackend())
        walkers = [make_walker("srw", api=api, seed=0)]
        with pytest.raises(InvalidStartNodeError):
            WalkScheduler(api).run(walkers, [3], steps=5)

    def test_dead_start_stop_policy(self):
        api = build_api(_AsymmetricBackend())
        walkers = [make_walker("srw", api=api, seed=0), make_walker("srw", api=api, seed=1)]
        policy = SchedulerPolicy(on_dead_end="stop")
        results = WalkScheduler(api, policy=policy).run(walkers, [3, 0], steps=10)
        assert results[0].path == []
        # The viable lane keeps going until its budget or its own dead end.
        assert results[1].steps > 0
        assert results[1].steps == 10 or results[1].path[-1] == 3

    def test_policy_validation(self):
        with pytest.raises(InvalidConfigurationError):
            SchedulerPolicy(on_dead_end="explode")
        with pytest.raises(InvalidConfigurationError):
            SchedulerPolicy(max_restarts=-1)


class TestTracing:
    def test_scheduled_rounds_trace_as_batches(self, facebook_small):
        api = build_api(facebook_small, trace=True)
        walkers = [make_walker("srw", api=api, seed=seed) for seed in (0, 1, 2)]
        WalkScheduler(api).run(walkers, facebook_small.nodes()[:3], steps=10)
        batches = api.trace.batches
        assert len(batches) == 11  # the start batch plus one per round
        assert all(len(batch) <= 3 for batch in batches)
        # Node-level accounting stays exact under batch records.
        assert len(api.trace.fresh_nodes) == api.unique_queries
