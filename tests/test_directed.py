"""Unit tests for the directed-to-undirected API adapter."""

from __future__ import annotations

import pytest

from repro.api import (
    DirectedGraphStore,
    DirectedToUndirectedAPI,
    QueryBudget,
    mutual_undirected_edges,
    store_from_edges,
)
from repro.exceptions import NodeNotFoundError, QueryBudgetExceededError


@pytest.fixture
def store() -> DirectedGraphStore:
    """Twitter-style store: some mutual follows, some one-way."""
    edges = [
        ("a", "b"), ("b", "a"),           # mutual
        ("a", "c"),                        # one-way
        ("c", "d"), ("d", "c"),           # mutual
        ("d", "a"),                        # one-way
    ]
    store = store_from_edges(edges, attributes={"a": {"followers": 100}})
    return store


class TestDirectedGraphStore:
    def test_successors_and_predecessors(self, store):
        assert set(store.successors("a")) == {"b", "c"}
        assert set(store.predecessors("a")) == {"b", "d"}

    def test_attributes(self, store):
        assert store.attributes("a") == {"followers": 100}
        assert store.attributes("b") == {}

    def test_missing_node(self, store):
        with pytest.raises(NodeNotFoundError):
            store.successors("zzz")

    def test_self_loops_rejected(self):
        store = DirectedGraphStore()
        with pytest.raises(ValueError):
            store.add_edge("x", "x")

    def test_store_from_edges_skips_self_loops(self):
        store = store_from_edges([("x", "x"), ("x", "y")])
        assert store.number_of_edges() == 1


class TestMutualConversion:
    def test_mutual_only_view(self, store):
        api = DirectedToUndirectedAPI(store, mutual_only=True)
        assert set(api.query("a").neighbors) == {"b"}
        assert set(api.query("c").neighbors) == {"d"}

    def test_either_direction_view(self, store):
        api = DirectedToUndirectedAPI(store, mutual_only=False)
        assert set(api.query("a").neighbors) == {"b", "c", "d"}

    def test_mutual_edge_list_helper(self, store):
        edges = {frozenset(edge) for edge in mutual_undirected_edges(store)}
        assert edges == {frozenset(("a", "b")), frozenset(("c", "d"))}

    def test_symmetry_of_mutual_view(self, store):
        api = DirectedToUndirectedAPI(store, mutual_only=True)
        for node in store.nodes():
            for neighbor in api.query(node).neighbors:
                assert node in api.query(neighbor).neighbors


class TestQueryCost:
    def test_each_node_costs_two_calls(self, store):
        api = DirectedToUndirectedAPI(store, queries_per_node=2)
        api.query("a")
        assert api.unique_queries == 2
        api.query("a")
        assert api.unique_queries == 2
        assert api.total_queries == 2

    def test_budget_counts_billable_calls(self, store):
        api = DirectedToUndirectedAPI(store, queries_per_node=2, budget=QueryBudget(3))
        api.query("a")
        with pytest.raises(QueryBudgetExceededError):
            api.query("b")

    def test_reset_counters(self, store):
        api = DirectedToUndirectedAPI(store)
        api.query("a")
        api.reset_counters()
        assert api.unique_queries == 0
        assert api.total_queries == 0

    def test_invalid_queries_per_node(self, store):
        with pytest.raises(ValueError):
            DirectedToUndirectedAPI(store, queries_per_node=0)

    def test_edge_existence_helper(self, store):
        api = DirectedToUndirectedAPI(store, mutual_only=True)
        assert api.undirected_edge_exists("a", "b")
        assert not api.undirected_edge_exists("a", "c")


class TestWalkOverDirectedStore:
    def test_srw_runs_on_mutual_view(self, store):
        from repro.walks import SimpleRandomWalk

        api = DirectedToUndirectedAPI(store, mutual_only=True)
        walk = SimpleRandomWalk(api, seed=1)
        result = walk.run("a", max_steps=20)
        # The mutual view of this store is two disjoint edges, so the walk
        # oscillates between a and b.
        assert set(result.path) == {"a", "b"}
