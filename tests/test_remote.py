"""HTTP client/server tests: wire protocol, fault injection, middleware composition.

The conformance suite (``tests/test_backend_conformance.py``) proves a clean
remote backend is indistinguishable from a local one; this module pins the
parts conformance cannot see:

* the wire encoding itself (node ids in URL paths, crawl-record JSON bodies),
* retry / backoff / error-mapping semantics under deterministically injected
  faults (timeouts, 5xx, malformed JSON, dropped connections) — walks either
  complete bit-identically after retries or fail with a typed error,
* middleware-over-remote composition: the cache makes revisit-heavy walks hit
  the network exactly ``unique_queries`` times, and budget exhaustion
  mid-retry never double-bills.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.api import (
    HTTPGraphBackend,
    InMemoryBackend,
    SamplingSession,
    build_api,
)
from repro.api.remote import (
    decode_node_id,
    encode_node_id,
    record_from_wire,
    record_to_wire,
)
from repro.api.backend import RawRecord
from repro.engine import WalkScheduler
from repro.exceptions import (
    NodeNotFoundError,
    QueryBudgetExceededError,
    RemoteBackendError,
)
from repro.graphs import load_dataset
from repro.walks import make_walker

from fakes import FlakyBackend, FlakyHTTPHandler


@pytest.fixture(scope="module")
def remote_graph():
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def local_backend(remote_graph):
    return InMemoryBackend(remote_graph)


class RecordingSleep:
    """A sleep stand-in that records the requested delays instead of waiting."""

    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------
class TestWireEncoding:
    @pytest.mark.parametrize(
        "node", [0, -7, 10**12, "plain", "5", "with/slash", "sp ace", "café ☕", ""]
    )
    def test_node_id_url_round_trip(self, node):
        segment = encode_node_id(node)
        assert segment.isascii() and "/" not in segment
        decoded = decode_node_id(segment)
        assert decoded == node and type(decoded) is type(node)

    def test_int_and_str_ids_stay_distinguishable(self):
        assert encode_node_id(5) != encode_node_id("5")

    def test_record_round_trip_matches_crawl_schema(self):
        record = RawRecord(node="u", neighbors=("v", 3), attributes={"age": 1.5})
        wire = record_to_wire(record)
        assert wire == {"node": "u", "neighbors": ["v", 3], "attributes": {"age": 1.5}}
        assert record_from_wire(wire) == record
        # Empty attributes are omitted on the wire, exactly like a crawl dump.
        bare = RawRecord(node=1, neighbors=(2,))
        assert "attributes" not in record_to_wire(bare)
        assert record_from_wire(record_to_wire(bare)) == bare

    def test_malformed_record_raises_typed_error(self):
        with pytest.raises(RemoteBackendError, match="malformed"):
            record_from_wire({"neighbors": [1]})

    def test_unrepresentable_node_id_raises_typed_error(self):
        with pytest.raises(RemoteBackendError, match="wire"):
            encode_node_id(object())

    def test_composite_ids_rejected_before_any_network(self):
        """Tuple ids are valid locally but JSON would turn them into lists;
        the client fails fast and typed instead of burning retries on 500s.
        The unreachable URL proves no connection is even attempted."""
        client = HTTPGraphBackend("http://127.0.0.1:9", retries=0)
        with pytest.raises(RemoteBackendError, match="scalar"):
            client.fetch(("u", 1))
        with pytest.raises(RemoteBackendError, match="scalar"):
            client.fetch_many([0, ("u", 1)])


# ----------------------------------------------------------------------
# Client construction and service discovery
# ----------------------------------------------------------------------
class TestClientBasics:
    def test_rejects_non_http_urls(self):
        for bogus in ("ftp://host/x", "not-a-url", "http://"):
            with pytest.raises(ValueError):
                HTTPGraphBackend(bogus)
        with pytest.raises(ValueError):
            HTTPGraphBackend("http://localhost:1", retries=-1)

    def test_info_descriptor_and_len(self, graph_server, local_backend):
        server = graph_server(local_backend)
        with HTTPGraphBackend(server.url) as client:
            info = client.info()
            assert info["format"] == "repro-graph-http"
            assert info["version"] == 1
            assert info["nodes"] == len(local_backend)
            assert len(client) == len(local_backend)
            assert client.name == f"http:{server.url[len('http://'):]}"

    def test_info_rejects_foreign_service_and_version(self, graph_server, local_backend):
        server = graph_server(local_backend)
        client = HTTPGraphBackend(server.url)
        client._request = lambda method, path, body=None: {"format": "something-else"}
        with pytest.raises(RemoteBackendError, match="format"):
            client.info()
        client = HTTPGraphBackend(server.url)
        client._request = lambda method, path, body=None: {
            "format": "repro-graph-http",
            "version": 99,
        }
        with pytest.raises(RemoteBackendError, match="version"):
            client.info()

    def test_unknown_endpoint_raises_without_retry(self, graph_server, local_backend):
        # A bogus path prefix sends every request to a nonexistent endpoint:
        # that is a protocol error, not a transient fault — exactly one
        # request, no retries.
        server = graph_server(local_backend)
        sleep = RecordingSleep()
        with HTTPGraphBackend(server.url + "/no-such-prefix", sleep=sleep) as client:
            with pytest.raises(RemoteBackendError, match="endpoint"):
                client.fetch(0)
        assert sleep.delays == []
        assert server.endpoint_counts["/no-such-prefix"] == 1

    def test_node_miss_is_not_retried(self, graph_server, local_backend):
        server = graph_server(local_backend)
        server.reset_stats()
        sleep = RecordingSleep()
        with HTTPGraphBackend(server.url, sleep=sleep) as client:
            with pytest.raises(NodeNotFoundError) as excinfo:
                client.fetch("no-such-node")
        assert excinfo.value.node == "no-such-node"
        assert sleep.delays == []
        assert server.endpoint_counts["/node"] == 1

    def test_replay_server_info_carries_recorded_start(
        self, graph_server, local_backend, tmp_path
    ):
        from repro.storage import dump_crawl, load_crawl

        nodes = local_backend.node_ids()[:4]
        dump = dump_crawl(local_backend, tmp_path / "d.jsonl", nodes=nodes)
        server = graph_server(load_crawl(dump))
        with HTTPGraphBackend(server.url) as client:
            info = client.info()
            assert info["backend"] == "ReplayBackend"
            assert info["start"] == nodes[0]
        empty = dump_crawl(local_backend, tmp_path / "e.jsonl", nodes=[])
        empty_server = graph_server(load_crawl(empty))
        with HTTPGraphBackend(empty_server.url) as client:
            assert "start" not in client.info()

    def test_negative_content_length_is_dropped_promptly(
        self, graph_server, local_backend
    ):
        """A negative Content-Length must close the connection immediately —
        never block a handler thread in rfile.read(-1) until its timeout."""
        import http.client
        import time

        server = graph_server(local_backend)
        connection = http.client.HTTPConnection(
            server.url[len("http://"):], timeout=5
        )
        started = time.perf_counter()
        connection.putrequest("POST", "/nodes")
        connection.putheader("Content-Length", "-5")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        response.read()
        # And the poisoned connection is closed, not kept alive.
        assert response.will_close
        assert time.perf_counter() - started < 5
        connection.close()

    def test_connection_is_reused_across_requests(self, graph_server, local_backend):
        server = graph_server(local_backend)
        with HTTPGraphBackend(server.url) as client:
            client.fetch(local_backend.node_ids()[0])
            first = client._connection
            assert first is not None
            client.fetch(local_backend.node_ids()[1])
            client.fetch_many(local_backend.node_ids()[:3])
            assert client._connection is first


# ----------------------------------------------------------------------
# Fault injection: retries, backoff, typed failures
# ----------------------------------------------------------------------
class TestFaultInjection:
    def _flaky(self, graph_server, local_backend, plan, **client_options):
        server = graph_server(local_backend, handler_class=FlakyHTTPHandler)
        server.fault_plan = deque(plan)
        client = HTTPGraphBackend(server.url, **client_options)
        return server, client

    def test_5xx_retried_with_deterministic_backoff(self, graph_server, local_backend):
        sleep = RecordingSleep()
        server, client = self._flaky(
            graph_server, local_backend, ["500", "500", None],
            retries=3, backoff=0.05, sleep=sleep,
        )
        node = local_backend.node_ids()[0]
        with client:
            assert client.fetch(node) == local_backend.fetch(node)
        # Exponential and deterministic: base, then double.
        assert sleep.delays == [0.05, 0.1]
        assert server.endpoint_counts["/node"] == 3

    def test_retries_exhausted_raises_typed_error(self, graph_server, local_backend):
        sleep = RecordingSleep()
        server, client = self._flaky(
            graph_server, local_backend, ["500"] * 3,
            retries=2, backoff=0.05, sleep=sleep,
        )
        with client, pytest.raises(RemoteBackendError) as excinfo:
            client.fetch(local_backend.node_ids()[0])
        assert excinfo.value.attempts == 3
        assert "HTTP 500" in str(excinfo.value)
        assert sleep.delays == [0.05, 0.1]
        assert server.endpoint_counts["/node"] == 3

    def test_malformed_json_body_retried(self, graph_server, local_backend):
        server, client = self._flaky(
            graph_server, local_backend, ["garbage", None],
            retries=2, sleep=RecordingSleep(),
        )
        node = local_backend.node_ids()[0]
        with client:
            assert client.fetch(node) == local_backend.fetch(node)

    def test_malformed_json_exhausting_retries_is_typed(self, graph_server, local_backend):
        server, client = self._flaky(
            graph_server, local_backend, ["garbage"] * 2,
            retries=1, sleep=RecordingSleep(),
        )
        with client, pytest.raises(RemoteBackendError, match="malformed JSON"):
            client.fetch(local_backend.node_ids()[0])

    def test_dropped_connection_retried(self, graph_server, local_backend):
        server, client = self._flaky(
            graph_server, local_backend, ["close", None],
            retries=2, sleep=RecordingSleep(),
        )
        node = local_backend.node_ids()[0]
        with client:
            assert client.fetch(node) == local_backend.fetch(node)

    def test_socket_timeout_retried(self, graph_server, local_backend):
        server, client = self._flaky(
            graph_server, local_backend, ["timeout", None],
            retries=2, timeout=0.2, sleep=RecordingSleep(),
        )
        server.fault_stall = 0.6
        node = local_backend.node_ids()[0]
        with client:
            assert client.fetch(node) == local_backend.fetch(node)

    def test_backend_exception_surfaces_as_500_and_retries(
        self, graph_server, local_backend
    ):
        flaky = FlakyBackend(local_backend, plan=[RuntimeError("disk on fire"), None])
        server = graph_server(flaky)
        node = local_backend.node_ids()[0]
        with HTTPGraphBackend(server.url, retries=2, sleep=RecordingSleep()) as client:
            assert client.fetch(node) == local_backend.fetch(node)
        # And with no retry budget the server-side failure is reported.
        flaky.plan.extend([RuntimeError("still on fire")])
        with HTTPGraphBackend(server.url, retries=0) as client:
            with pytest.raises(RemoteBackendError, match="on fire"):
                client.fetch(node)

    def test_walk_over_flaky_server_is_bit_identical(
        self, graph_server, remote_graph, local_backend
    ):
        """Faults sprinkled through a crawl never change the walk, only cost it
        retries: the paths, counters and estimates come out bit-identical."""
        plan = ["500", None, None, "garbage", None, "close"] + [None] * 10 + ["500"]
        server, client = self._flaky(
            graph_server, local_backend, plan, retries=3, sleep=RecordingSleep(),
        )
        start = remote_graph.nodes()[0]

        def run(source):
            api = build_api(source, budget=40)
            result = make_walker("cnrw", api=api, seed=7).run(start, max_steps=None)
            return result.path, api.unique_queries, api.total_queries

        with client:
            assert run(client) == run(local_backend)

    def test_batched_fetch_retried_through_faults(self, graph_server, local_backend):
        server, client = self._flaky(
            graph_server, local_backend, ["500", "garbage", None],
            retries=3, sleep=RecordingSleep(),
        )
        nodes = local_backend.node_ids()[:6]
        with client:
            assert client.fetch_many(nodes) == local_backend.fetch_many(nodes)
        assert server.endpoint_counts["/nodes"] == 3


# ----------------------------------------------------------------------
# Middleware-over-remote composition
# ----------------------------------------------------------------------
class TestMiddlewareOverRemote:
    def test_cache_limits_network_to_unique_nodes(
        self, graph_server, remote_graph, local_backend
    ):
        """A revisit-heavy CNRW walk hits the network exactly once per unique
        node: every revisit is served by the client-side cache layer."""
        server = graph_server(local_backend)
        server.reset_stats()
        with HTTPGraphBackend(server.url) as client:
            api = build_api(client, budget=40)
            result = make_walker("cnrw", api=api, seed=7).run(
                remote_graph.nodes()[0], max_steps=None
            )
        assert api.total_queries > api.unique_queries  # CNRW revisits a lot
        assert server.endpoint_counts["/node"] == api.unique_queries
        assert server.nodes_served == api.unique_queries

    def test_scheduler_ensemble_batches_limit_network_to_unique_nodes(
        self, graph_server, remote_graph, local_backend
    ):
        server = graph_server(local_backend)
        server.reset_stats()
        with HTTPGraphBackend(server.url) as client:
            api = build_api(client, budget=200)
            walkers = [make_walker("cnrw", api=api, seed=seed) for seed in (1, 2, 3, 4)]
            starts = remote_graph.nodes()[:4]
            WalkScheduler(api).run(walkers, starts, steps=30)
        # The frontier travels as POST /nodes batches; dedup + cache keep the
        # record traffic at exactly the billable unique fetches.
        assert server.endpoint_counts["/node"] == 0
        assert server.nodes_served == api.unique_queries

    def test_metadata_peeks_hit_the_network_once_per_node(
        self, graph_server, remote_graph, local_backend
    ):
        """Peeks are free against local backends; remotely they must at least
        be free on revisit — MHRW re-checks neighbor degrees every step, and
        the client's metadata cache absorbs all but the first look."""
        server = graph_server(local_backend)
        server.reset_stats()
        with HTTPGraphBackend(server.url) as client:
            node = remote_graph.nodes()[0]
            for _ in range(5):
                assert client.metadata(node) == local_backend.metadata(node)
                assert client.contains(node)
            assert server.endpoint_counts["/meta"] == 1
            # A remote MHRW walk peeks hundreds of times; the wire sees each
            # distinct node at most once.
            api = build_api(client, budget=30)
            make_walker("mhrw", api=api, seed=7).run(node, max_steps=None)
            assert server.endpoint_counts["/meta"] <= len(local_backend)

    def test_budget_exhaustion_mid_retry_never_double_bills(
        self, graph_server, local_backend
    ):
        """A 500-and-retry inside the budget layer's sequential fallback must
        bill the node once: unique == budget, and the partial views fetched
        before exhaustion are cached, not re-billed."""
        server = graph_server(local_backend, handler_class=FlakyHTTPHandler)
        sleep = RecordingSleep()
        client = HTTPGraphBackend(server.url, retries=2, backoff=0.01, sleep=sleep)
        # Request script: n0 ok, n1 500 then ok on retry, n2 ok, n3 never sent.
        server.fault_plan = deque([None, "500", None, None])
        nodes = local_backend.node_ids()[:5]
        with client:
            api = build_api(client, budget=3)
            with pytest.raises(QueryBudgetExceededError):
                api.query_many(nodes)
            assert api.unique_queries == 3
            assert api.total_queries == 4  # 3 billed + the rejected attempt
            assert sleep.delays == [0.01]  # exactly one retry happened
            assert server.nodes_served == 3  # the 500'd request served nothing
            assert server.endpoint_counts["/node"] == 4  # 3 successes + 1 fault
            # The three fetched views were cached on the way out: re-reading
            # them is free and does not touch the exhausted budget.
            for node in nodes[:3]:
                assert api.query(node).node == node
            assert api.unique_queries == 3
            assert server.endpoint_counts["/node"] == 4


# ----------------------------------------------------------------------
# URL dispatch through the stack facades
# ----------------------------------------------------------------------
class TestURLDispatch:
    def test_build_api_accepts_urls(self, graph_server, remote_graph, local_backend):
        server = graph_server(local_backend)
        api = build_api(server.url, budget=10)
        node = remote_graph.nodes()[0]
        assert api.query(node).neighbors == tuple(remote_graph.neighbors(node))
        api.backend.close()

    def test_session_accepts_urls(self, graph_server, local_backend):
        server = graph_server(local_backend)
        session = SamplingSession(server.url, seed=1).budget(20).walker("srw", seed=1)
        result = session.run(max_steps=5)
        assert result.steps <= 5
        assert session.unique_queries > 0
        session.api.backend.close()

    def test_session_walk_matches_local_session(self, graph_server, remote_graph):
        """The same seeded session over a URL and over the graph are identical —
        including the random start pick, which goes through the remote
        node-id table."""
        server = graph_server(InMemoryBackend(remote_graph))

        def run(source):
            session = SamplingSession(source, seed=3).budget(30).walker("cnrw", seed=3)
            result = session.run(max_steps=None)
            return result.path, session.unique_queries, session.total_queries

        remote = run(server.url)
        local = run(remote_graph)
        assert remote == local
