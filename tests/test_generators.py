"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    barabasi_albert_graph,
    barbell_graph,
    clustered_cliques_graph,
    complete_graph,
    connect_components,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.statistics import conductance_of_cut


class TestDeterministicGenerators:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.number_of_nodes == 5
        assert graph.number_of_edges == 10
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_complete_graph_invalid(self):
        with pytest.raises(GraphError):
            complete_graph(0)

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.degree(0) == 6
        assert all(graph.degree(leaf) == 1 for leaf in range(1, 7))

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.number_of_edges == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path_graph(self):
        graph = path_graph(4)
        assert graph.number_of_edges == 3
        assert graph.degree(0) == 1
        assert graph.degree(1) == 2

    def test_grid_graph(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes == 12
        assert graph.number_of_edges == 3 * 3 + 2 * 4
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestBarbell:
    def test_structure(self):
        graph = barbell_graph(5)
        assert graph.number_of_nodes == 10
        # Two 5-cliques (10 edges each) plus the bridge.
        assert graph.number_of_edges == 2 * 10 + 1
        assert graph.has_edge(4, 5)
        assert graph.is_connected()

    def test_community_attribute(self):
        graph = barbell_graph(4)
        assert graph.attribute(0, "community") == 0
        assert graph.attribute(7, "community") == 1

    def test_matches_table1_scale(self):
        # The paper's barbell has 100 nodes and 2451 edges (two 50-cliques + bridge).
        graph = barbell_graph(50)
        assert graph.number_of_nodes == 100
        assert graph.number_of_edges == 2 * (50 * 49 // 2) + 1 == 2451

    def test_small_conductance(self):
        graph = barbell_graph(10)
        assert conductance_of_cut(graph) < 0.02

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            barbell_graph(1)


class TestClusteredCliques:
    def test_structure(self):
        graph = clustered_cliques_graph((10, 30, 50), seed=0)
        assert graph.number_of_nodes == 90
        assert graph.is_connected()
        # Every node keeps its community label.
        communities = {graph.attribute(node, "community") for node in graph.nodes()}
        assert communities == {0, 1, 2}

    def test_high_clustering_matches_table1(self):
        graph = clustered_cliques_graph((10, 30, 50), seed=0)
        assert graph.average_clustering() > 0.95

    def test_bridges_parameter(self):
        one = clustered_cliques_graph((5, 5), bridges_per_pair=1, seed=1)
        many = clustered_cliques_graph((5, 5), bridges_per_pair=3, seed=1)
        assert many.number_of_edges >= one.number_of_edges

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            clustered_cliques_graph(())
        with pytest.raises(GraphError):
            clustered_cliques_graph((1, 5))
        with pytest.raises(GraphError):
            clustered_cliques_graph((5, 5), bridges_per_pair=0)


class TestRandomGenerators:
    def test_erdos_renyi_reproducible(self):
        a = erdos_renyi_graph(40, 0.2, seed=3)
        b = erdos_renyi_graph(40, 0.2, seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_erdos_renyi_extremes(self):
        empty = erdos_renyi_graph(10, 0.0, seed=0)
        full = erdos_renyi_graph(10, 1.0, seed=0)
        assert empty.number_of_edges == 0
        assert full.number_of_edges == 45

    def test_erdos_renyi_invalid(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)
        with pytest.raises(GraphError):
            erdos_renyi_graph(0, 0.5)

    def test_barabasi_albert_degrees(self):
        graph = barabasi_albert_graph(200, 3, seed=5)
        assert graph.number_of_nodes == 200
        # Every node added after the seed clique has degree >= attachment.
        assert all(graph.degree(node) >= 3 for node in graph.nodes())
        assert graph.is_connected()

    def test_barabasi_albert_heavy_tail(self):
        graph = barabasi_albert_graph(300, 2, seed=1)
        degrees = sorted(graph.degrees().values(), reverse=True)
        # The maximum degree should far exceed the median (heavy tail).
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_barabasi_albert_invalid(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)

    def test_powerlaw_cluster_combines_tail_and_clustering(self):
        from repro.graphs import powerlaw_cluster_graph

        graph = powerlaw_cluster_graph(400, 6, triangle_probability=0.9, seed=3)
        assert graph.number_of_nodes == 400
        assert graph.is_connected()
        degrees = sorted(graph.degrees().values(), reverse=True)
        assert degrees[0] > 3 * degrees[len(degrees) // 2]  # heavy tail
        # Triad formation yields much higher clustering than plain BA.
        plain = barabasi_albert_graph(400, 6, seed=3)
        assert graph.average_clustering() > 2 * plain.average_clustering()

    def test_powerlaw_cluster_zero_triangle_probability(self):
        from repro.graphs import powerlaw_cluster_graph

        graph = powerlaw_cluster_graph(100, 3, triangle_probability=0.0, seed=1)
        assert graph.number_of_nodes == 100
        assert all(graph.degree(node) >= 1 for node in graph.nodes())

    def test_powerlaw_cluster_invalid(self):
        from repro.graphs import powerlaw_cluster_graph

        with pytest.raises(GraphError):
            powerlaw_cluster_graph(5, 5, 0.5)
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 0, 0.5)
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 2, 1.5)

    def test_watts_strogatz_degree_preserved_on_average(self):
        graph = watts_strogatz_graph(50, 6, 0.1, seed=2)
        assert graph.number_of_nodes == 50
        assert graph.average_degree() == pytest.approx(6.0, abs=0.5)

    def test_watts_strogatz_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_watts_strogatz_invalid(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 10, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 4, 1.5)

    def test_planted_partition_homophily(self):
        graph = planted_partition_graph((30, 30), p_in=0.3, p_out=0.01, seed=4)
        intra = 0
        inter = 0
        for u, v in graph.edges():
            if graph.attribute(u, "community") == graph.attribute(v, "community"):
                intra += 1
            else:
                inter += 1
        assert intra > 5 * inter

    def test_planted_partition_invalid(self):
        with pytest.raises(GraphError):
            planted_partition_graph((), 0.5, 0.1)
        with pytest.raises(GraphError):
            planted_partition_graph((5, 5), 0.1, 0.5)


class TestHeterogeneousCommunityGraph:
    def test_density_varies_by_community(self):
        from repro.graphs import heterogeneous_community_graph

        graph = heterogeneous_community_graph(
            community_sizes=(40, 40), intra_probabilities=(0.4, 0.05),
            inter_probability=0.0, seed=5,
        )
        dense = [graph.degree(node) for node in graph.nodes() if graph.attribute(node, "community") == 0]
        sparse = [graph.degree(node) for node in graph.nodes() if graph.attribute(node, "community") == 1]
        assert sum(dense) / len(dense) > 2 * (sum(sparse) / max(1, len(sparse)) + 1)

    def test_reproducible(self):
        from repro.graphs import heterogeneous_community_graph

        a = heterogeneous_community_graph((20, 20), (0.2, 0.1), seed=3)
        b = heterogeneous_community_graph((20, 20), (0.2, 0.1), seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_invalid_parameters(self):
        from repro.graphs import heterogeneous_community_graph

        with pytest.raises(GraphError):
            heterogeneous_community_graph((), ())
        with pytest.raises(GraphError):
            heterogeneous_community_graph((10,), (0.1, 0.2))
        with pytest.raises(GraphError):
            heterogeneous_community_graph((10,), (1.5,))
        with pytest.raises(GraphError):
            heterogeneous_community_graph((10, 10), (0.1, 0.1), inter_probability=2.0)


class TestConnectComponents:
    def test_connects_disconnected_graph(self):
        graph = erdos_renyi_graph(60, 0.02, seed=9)
        connected = connect_components(graph, seed=1)
        assert connected.is_connected()
        assert connected.number_of_nodes == graph.number_of_nodes
        assert connected.number_of_edges >= graph.number_of_edges

    def test_noop_on_connected_graph(self):
        graph = complete_graph(5)
        connected = connect_components(graph, seed=0)
        assert connected.number_of_edges == graph.number_of_edges
