"""Deterministic fault-injection fakes for the remote access layer.

Two layers of misbehaviour, both driven by explicit scripts so every test is
exactly reproducible:

* :class:`FlakyBackend` wraps any :class:`~repro.api.backend.GraphBackend`
  and raises scripted exceptions from ``fetch`` / ``fetch_many``.  Mounted
  *inside* a graph server it makes the service answer HTTP 500 on schedule —
  the "storage tier hiccuped" failure mode.
* :class:`FlakyHTTPHandler` is a :class:`~repro.server.GraphRequestHandler`
  that consults the server's ``fault_plan`` deque before routing each
  request — the "transport misbehaved" failure modes: HTTP 500 bodies,
  malformed (non-JSON) 200 responses, dropped connections, and stalls that
  outlast the client's socket timeout.

Both consume their plan one entry per call/request, so a test pins the exact
interleaving of faults and retries: walks either complete bit-identically
after the client's bounded retries, or fail with a typed
:class:`~repro.exceptions.RemoteBackendError` — never silently diverge.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.api.backend import GraphBackend, RawRecord
from repro.server import GraphRequestHandler
from repro.types import NodeId

#: Fault tokens understood by :class:`FlakyHTTPHandler`.
FAULT_500 = "500"
FAULT_GARBAGE = "garbage"
FAULT_CLOSE = "close"
FAULT_TIMEOUT = "timeout"
FAULT_LONG_STATUS = "long-status"


class FlakyBackend(GraphBackend):
    """Raise scripted exceptions before delegating to a real backend.

    ``plan`` is consumed one entry per ``fetch`` / ``fetch_many`` call:
    ``None`` means "answer normally", an exception instance is raised.  Once
    the plan is exhausted every call succeeds.
    """

    def __init__(self, inner: GraphBackend, plan: Iterable[Optional[Exception]] = ()) -> None:
        self._inner = inner
        self.plan = deque(plan)
        self.name = f"flaky:{inner.name}"

    def _maybe_fail(self) -> None:
        if self.plan:
            fault = self.plan.popleft()
            if fault is not None:
                raise fault

    def fetch(self, node: NodeId) -> RawRecord:
        self._maybe_fail()
        return self._inner.fetch(node)

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        self._maybe_fail()
        return self._inner.fetch_many(nodes)

    def contains(self, node: NodeId) -> bool:
        return self._inner.contains(node)

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        return self._inner.metadata(node)

    def node_ids(self) -> List[NodeId]:
        return self._inner.node_ids()

    def sample_node(self, rng) -> NodeId:
        return self._inner.sample_node(rng)

    def __len__(self) -> int:
        return len(self._inner)


class FlakyHTTPHandler(GraphRequestHandler):
    """Inject transport-level faults from the server's ``fault_plan`` deque.

    Tests attach the script after booting the server::

        server = graph_server(backend, handler_class=FlakyHTTPHandler)
        server.fault_plan = deque(["500", None, "garbage"])
        server.fault_stall = 0.4   # seconds a "timeout" fault sleeps

    Each incoming request pops one token (``deque.popleft`` is atomic, and the
    serial client issues one request at a time, so consumption order is the
    request order).  An empty or exhausted plan serves normally.
    """

    def inject_fault(self) -> bool:
        plan = getattr(self.server, "fault_plan", None)
        fault = plan.popleft() if plan else None
        if fault is None:
            return False
        if fault == FAULT_500:
            self._send_json(
                500, {"error": "server_error", "message": "injected fault"}
            )
            return True
        if fault == FAULT_GARBAGE:
            body = b"<html>this is not JSON</html>"
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return True
        if fault == FAULT_CLOSE:
            # Drop the connection without a response: the client sees the
            # socket close mid-exchange (RemoteDisconnected) and retries.
            self.close_connection = True
            return True
        if fault == FAULT_TIMEOUT:
            # Stall past the client's socket timeout, then give up on the
            # connection (the client has long since abandoned it).
            time.sleep(getattr(self.server, "fault_stall", 0.5))
            self.close_connection = True
            return True
        if fault == FAULT_LONG_STATUS:
            # A status line past the client's 64 KiB line cap, written raw:
            # the client must refuse it as "oversized status line" (and drop
            # the connection), never hand back a silent truncation.
            self.wfile.write(
                b"HTTP/1.1 200 " + b"x" * (64 * 1024 + 64) + b"\r\n\r\n"
            )
            self.close_connection = True
            return True
        raise AssertionError(f"unknown fault token {fault!r}")
