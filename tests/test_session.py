"""Tests for the :class:`SamplingSession` fluent facade."""

from __future__ import annotations

import pytest

from repro import AggregateQuery, GraphAPI, QueryBudget, SamplingSession, Session, ground_truth
from repro.api import CSRBackend, twitter_policy
from repro.api.ratelimit import SimulatedClock
from repro.walks import make_walker


class TestConfiguration:
    def test_fluent_chain_returns_self(self, attributed_graph):
        session = SamplingSession(attributed_graph)
        assert session.budget(10) is session
        assert session.walker("cnrw", seed=1) is session
        assert session.trace() is session

    def test_session_alias(self):
        assert Session is SamplingSession

    def test_stack_reflects_configuration(self, attributed_graph):
        clock = SimulatedClock()
        session = (
            SamplingSession(attributed_graph)
            .budget(25)
            .rate_limit(twitter_policy(), clock=clock)
            .cache(capacity=100)
            .trace()
        )
        api = session.api
        assert api.budget.limit == 25
        assert api.clock is clock
        assert api.cache.capacity == 100
        assert api.trace is not None

    def test_reconfiguration_rebuilds_stack(self, attributed_graph):
        session = SamplingSession(attributed_graph).budget(5)
        first = session.api
        session.budget(10)
        assert session.api is not first
        assert session.api.budget.limit == 10

    def test_backend_selection(self, attributed_graph):
        session = SamplingSession(attributed_graph).backend("csr")
        assert isinstance(session.api.backend, CSRBackend)

    def test_accepts_prebuilt_backend(self, attributed_graph):
        backend = CSRBackend.from_graph(attributed_graph)
        session = SamplingSession(backend).budget(3)
        result = session.run(0, max_steps=2)
        assert len(result.path) == 3


class TestRunning:
    def test_budgeted_run_matches_legacy_pipeline(self, facebook_small):
        """The one-liner produces the same walk as the hand-wired pipeline."""
        start = facebook_small.nodes()[0]
        session_result = (
            SamplingSession(facebook_small)
            .budget(120)
            .walker("cnrw", seed=9)
            .run(start, max_steps=None)
        )
        legacy_api = GraphAPI(facebook_small, budget=QueryBudget(120))
        legacy_result = make_walker("cnrw", api=legacy_api, seed=9).run(start, max_steps=None)
        assert session_result.path == legacy_result.path
        assert session_result.unique_queries == legacy_result.unique_queries
        assert session_result.total_queries == legacy_result.total_queries

    def test_random_start_is_reproducible(self, facebook_small):
        a = SamplingSession(facebook_small, seed=3).budget(50).walker("srw", seed=3).run()
        b = SamplingSession(facebook_small, seed=3).budget(50).walker("srw", seed=3).run()
        assert a.path == b.path

    def test_run_records_last_result_and_estimates(self, facebook_small):
        session = SamplingSession(facebook_small).budget(200).walker("cnrw", seed=2)
        result = session.run(max_steps=None)
        assert session.last_result is result
        query = AggregateQuery.average_degree()
        answer = session.estimate(query)
        truth = ground_truth(facebook_small, query)
        assert answer.value == pytest.approx(truth, rel=0.6)

    def test_estimate_without_run_raises(self, attributed_graph):
        session = SamplingSession(attributed_graph)
        with pytest.raises(ValueError):
            session.estimate(AggregateQuery.average_degree())

    def test_counters_and_reset(self, attributed_graph):
        session = SamplingSession(attributed_graph).budget(4).walker("srw", seed=0)
        session.run(0, max_steps=None)
        assert session.unique_queries > 0
        session.reset()
        assert session.unique_queries == 0
        assert session.last_result is None

    def test_trace_capture(self, attributed_graph):
        session = SamplingSession(attributed_graph).trace().walker("srw", seed=1)
        session.run(0, max_steps=5)
        assert session.query_trace is not None
        assert len(session.query_trace) > 0

    def test_rate_limited_session_advances_clock(self, attributed_graph):
        clock = SimulatedClock()
        from repro.api.ratelimit import FixedWindowPolicy

        session = (
            SamplingSession(attributed_graph)
            .budget(4)
            .rate_limit(FixedWindowPolicy(max_calls=1, window_seconds=30.0), clock=clock)
            .walker("srw", seed=0)
        )
        session.run(0, max_steps=None)
        assert clock.now > 0.0


class TestEnsemble:
    def test_ensemble_runs_share_one_stack(self, facebook_small):
        session = SamplingSession(facebook_small, seed=5).walker("srw", seed=5)
        results = session.run_ensemble(num_walks=4, steps=25)
        assert len(results) == 4
        for result in results:
            assert result.steps == 25
            assert len(result.path) == 26
            # Every visited node is sampled, like run(burn_in=0, thinning=1).
            assert [sample.node for sample in result.samples] == result.path
        # All walkers share the API, so every result sees the same final cost.
        assert len({result.unique_queries for result in results}) == 1

    def test_estimate_works_after_ensemble(self, facebook_small):
        session = SamplingSession(facebook_small, seed=5).walker("srw", seed=5)
        results = session.run_ensemble(num_walks=4, steps=25)
        answer = session.estimate(AggregateQuery.average_degree())
        assert answer.value > 0
        # The estimate pools every walker's samples, not just the last one.
        pooled = sum(len(result.samples) for result in results)
        assert answer.sample_size == pooled

    def test_ensemble_numpy_seed_gives_distinct_walkers(self, facebook_small):
        import numpy as np

        starts = [facebook_small.nodes()[0]] * 3
        session = SamplingSession(facebook_small).walker("srw", seed=np.int64(7))
        results = session.run_ensemble(3, steps=30, starts=starts)
        paths = [tuple(result.path) for result in results]
        assert len(set(paths)) > 1, "walkers must not share one derived seed"

    def test_ensemble_is_reproducible(self, facebook_small):
        starts = facebook_small.nodes()[:3]
        a = SamplingSession(facebook_small).walker("cnrw", seed=11).run_ensemble(
            3, steps=20, starts=starts
        )
        b = SamplingSession(facebook_small).walker("cnrw", seed=11).run_ensemble(
            3, steps=20, starts=starts
        )
        assert [r.path for r in a] == [r.path for r in b]

    def test_ensemble_costs_no_more_than_sequential(self, facebook_small):
        starts = facebook_small.nodes()[:4]
        ensemble_session = SamplingSession(facebook_small).walker("srw", seed=2)
        ensemble_session.run_ensemble(4, steps=30, starts=starts)
        ensemble_cost = ensemble_session.unique_queries

        sequential_session = SamplingSession(facebook_small).walker("srw", seed=2)
        from repro.rng import derive_seed

        for index, start in enumerate(starts):
            walker = sequential_session.build_walker(seed=derive_seed(2, index))
            walker.run(start, max_steps=30)
        # run() additionally queries each emitted sample's node, so the
        # lockstep ensemble can only be cheaper, never more expensive.
        assert ensemble_cost <= sequential_session.unique_queries

    def test_ensemble_validates_arguments(self, attributed_graph):
        session = SamplingSession(attributed_graph).walker("srw", seed=1)
        with pytest.raises(ValueError):
            session.run_ensemble(0, steps=5)
        with pytest.raises(ValueError):
            session.run_ensemble(2, steps=5, starts=[0])

    def test_budget_exhaustion_returns_partial_results(self, attributed_graph):
        session = SamplingSession(attributed_graph).budget(3).walker("srw", seed=1)
        results = session.run_ensemble(2, steps=10, starts=[0, 3])
        assert len(results) == 2
        assert all(result.stopped_by_budget for result in results)
        assert session.unique_queries <= 3

    def test_run_after_ensemble_is_still_reproducible(self, facebook_small):
        """run() must not reuse the ensemble's last derived-seed walker."""
        start = facebook_small.nodes()[0]
        fresh = SamplingSession(facebook_small).walker("srw", seed=7).run(start, max_steps=20)
        mixed_session = SamplingSession(facebook_small).walker("srw", seed=7)
        mixed_session.run_ensemble(3, steps=5, starts=facebook_small.nodes()[:3])
        mixed = mixed_session.run(start, max_steps=20)
        assert mixed.path == fresh.path

    def test_repeated_runs_are_identical(self, facebook_small):
        session = SamplingSession(facebook_small).budget(40).walker("cnrw", seed=4)
        start = facebook_small.nodes()[0]
        first = session.run(start, max_steps=None)
        session.reset()
        second = session.run(start, max_steps=None)
        assert first.path == second.path


class TestEnsembleEdgeCases:
    def test_budget_exhaustion_mid_round_keeps_walkers_in_lockstep(self, facebook_small):
        """When the budget dies mid-round, walkers end at most one step apart."""
        starts = facebook_small.nodes()[:5]
        session = SamplingSession(facebook_small).budget(27).walker("srw", seed=6)
        results = session.run_ensemble(5, steps=300, starts=starts)
        assert all(result.stopped_by_budget for result in results)
        steps = [result.steps for result in results]
        assert max(steps) - min(steps) <= 1
        assert session.unique_queries <= 27
        # Partial results are still well-formed walks.
        for result in results:
            assert result.path[0] in starts
            assert len(result.path) == result.steps + 1

    def test_explicit_starts_length_mismatch(self, facebook_small):
        session = SamplingSession(facebook_small).walker("srw", seed=1)
        with pytest.raises(ValueError):
            session.run_ensemble(3, steps=5, starts=facebook_small.nodes()[:2])
        with pytest.raises(ValueError):
            session.run_ensemble(1, steps=5, starts=facebook_small.nodes()[:4])

    def test_single_walker_ensemble_estimate_matches_run(self, facebook_small):
        """run_ensemble(1) pools exactly the samples run(burn_in=0, thinning=1)
        would collect, so the estimates coincide on a fixed seed."""
        from repro.rng import derive_seed

        start = facebook_small.nodes()[0]
        query = AggregateQuery.average_degree()

        ensemble_session = SamplingSession(facebook_small).walker("cnrw")
        ensemble_session.run_ensemble(1, steps=80, starts=[start], seed=21)
        ensemble_estimate = ensemble_session.estimate(query)

        # Walker 0 of a seed-21 ensemble runs under derive_seed(21, 0).
        run_session = SamplingSession(facebook_small).walker("cnrw", seed=derive_seed(21, 0))
        run_session.run(start, max_steps=80, burn_in=0, thinning=1)
        run_estimate = run_session.estimate(query)

        assert ensemble_estimate.value == pytest.approx(run_estimate.value)
        assert ensemble_estimate.sample_size == run_estimate.sample_size

    def test_budget_driven_ensemble_without_steps(self, facebook_small):
        session = SamplingSession(facebook_small).budget(60).walker("cnrw", seed=2)
        results = session.run_ensemble(3, starts=facebook_small.nodes()[:3])
        assert all(result.stopped_by_budget for result in results)
        assert session.unique_queries <= 60

    def test_stepless_unbudgeted_ensemble_rejected(self, facebook_small):
        session = SamplingSession(facebook_small).walker("srw", seed=1)
        with pytest.raises(ValueError):
            session.run_ensemble(2, starts=facebook_small.nodes()[:2])

    def test_ensemble_burn_in_and_thinning(self, facebook_small):
        starts = facebook_small.nodes()[:2]
        session = SamplingSession(facebook_small).walker("srw", seed=5)
        results = session.run_ensemble(2, steps=30, starts=starts, burn_in=10, thinning=5)
        for result in results:
            assert result.steps == 30
            assert [sample.step_index for sample in result.samples] == [10, 15, 20, 25, 30]
