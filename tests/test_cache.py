"""Unit tests for the query caches."""

from __future__ import annotations

import pytest

from repro.api import LRUCache, QueryCache, make_cache


class TestQueryCache:
    def test_put_get(self):
        cache = QueryCache()
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_stats(self):
        cache = QueryCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_without_lookups(self):
        assert QueryCache().stats.hit_rate == 0.0

    def test_peek_does_not_touch_stats(self):
        cache = QueryCache()
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.stats.lookups == 0

    def test_get_or_compute(self):
        cache = QueryCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_get_or_compute_with_none_value(self):
        cache = QueryCache()
        cache.put("k", None)
        # A cached None must not trigger recomputation.
        assert cache.get_or_compute("k", lambda: "recomputed") is None

    def test_clear(self):
        cache = QueryCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_contains_and_iter(self):
        cache = QueryCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache
        assert sorted(cache) == ["a", "b"]


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.peek("a") is None
        assert cache.peek("b") == 2
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None

    def test_put_existing_key_does_not_evict(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.peek("a") == 10
        assert cache.stats.evictions == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestMakeCache:
    def test_unbounded_by_default(self):
        assert isinstance(make_cache(None), QueryCache)
        assert not isinstance(make_cache(None), LRUCache)

    def test_lru_when_capacity_given(self):
        cache = make_cache(5)
        assert isinstance(cache, LRUCache)
        assert cache.capacity == 5
