"""Unit tests for the CNRW/GNRW history bookkeeping structures."""

from __future__ import annotations

from repro.walks import EdgeHistory, GroupedEdgeHistory


class TestEdgeHistory:
    def test_initially_everything_remains(self):
        history = EdgeHistory()
        assert history.remaining("u", "v", ["a", "b", "c"]) == ["a", "b", "c"]
        assert history.visited("u", "v") == set()
        assert history.tracked_edges == 0

    def test_record_excludes_chosen(self):
        history = EdgeHistory()
        reset = history.record("u", "v", "a", ["a", "b", "c"])
        assert not reset
        assert history.remaining("u", "v", ["a", "b", "c"]) == ["b", "c"]
        assert history.visited("u", "v") == {"a"}

    def test_reset_after_full_circulation(self):
        history = EdgeHistory()
        history.record("u", "v", "a", ["a", "b"])
        reset = history.record("u", "v", "b", ["a", "b"])
        assert reset
        assert history.remaining("u", "v", ["a", "b"]) == ["a", "b"]
        assert history.visited("u", "v") == set()

    def test_per_edge_isolation(self):
        history = EdgeHistory()
        history.record("u", "v", "a", ["a", "b"])
        assert history.remaining("x", "v", ["a", "b"]) == ["a", "b"]
        assert history.remaining("u", "w", ["a", "b"]) == ["a", "b"]

    def test_order_preserved(self):
        history = EdgeHistory()
        history.record("u", "v", "b", ["c", "b", "a"])
        assert history.remaining("u", "v", ["c", "b", "a"]) == ["c", "a"]

    def test_explicit_reset_edge(self):
        history = EdgeHistory()
        history.record("u", "v", "a", ["a", "b"])
        history.reset_edge("u", "v")
        assert history.visited("u", "v") == set()

    def test_clear(self):
        history = EdgeHistory()
        history.record("u", "v", "a", ["a", "b"])
        history.clear()
        assert history.tracked_edges == 0

    def test_state_snapshot_is_immutable_copy(self):
        history = EdgeHistory()
        history.record("u", "v", "a", ["a", "b"])
        snapshot = history.state()
        assert snapshot[("u", "v")] == frozenset({"a"})

    def test_single_neighbor_resets_every_time(self):
        history = EdgeHistory()
        reset = history.record("u", "v", "only", ["only"])
        assert reset
        assert history.remaining("u", "v", ["only"]) == ["only"]


class TestGroupedEdgeHistory:
    #: Two unequal groups over a 3-neighbor node: the case where the GNRW
    #: bookkeeping must still attempt every neighbor exactly once per round.
    PARTITION = {"g1": ["a", "b"], "g2": ["c"]}

    def test_initially_all_groups_eligible(self):
        history = GroupedEdgeHistory()
        groups, members = history.candidate_groups("u", "v", self.PARTITION)
        assert set(groups) == {"g1", "g2"}
        assert members["g1"] == ["a", "b"]
        assert members["g2"] == ["c"]

    def test_group_round_excludes_attempted_group(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        groups, members = history.candidate_groups("u", "v", self.PARTITION)
        assert groups == ["g2"]
        assert members["g2"] == ["c"]
        assert history.attempted_groups("u", "v") == {"g1"}
        assert history.attempted_nodes("u", "v") == {"a"}

    def test_group_round_resets_after_all_groups(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        history.record("u", "v", "g2", "c", self.PARTITION)
        # Both groups attempted -> S(u, v) reset; but node memory persists, so
        # only g1 (with the unattempted "b") offers candidates.
        assert history.attempted_groups("u", "v") == set()
        groups, members = history.candidate_groups("u", "v", self.PARTITION)
        assert groups == ["g1"]
        assert members["g1"] == ["b"]

    def test_node_memory_resets_after_full_neighborhood(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        history.record("u", "v", "g2", "c", self.PARTITION)
        history.record("u", "v", "g1", "b", self.PARTITION)
        # Every neighbor attempted once -> both memories reset.
        assert history.attempted_nodes("u", "v") == set()
        assert history.attempted_groups("u", "v") == set()
        groups, members = history.candidate_groups("u", "v", self.PARTITION)
        assert set(groups) == {"g1", "g2"}
        assert members["g1"] == ["a", "b"]

    def test_every_neighbor_once_per_circulation(self):
        """Simulating three departures always covers all three neighbors."""
        history = GroupedEdgeHistory()
        chosen = []
        for _ in range(3):
            groups, members = history.candidate_groups("u", "v", self.PARTITION)
            group = groups[0]
            node = members[group][0]
            chosen.append(node)
            history.record("u", "v", group, node, self.PARTITION)
        assert set(chosen) == {"a", "b", "c"}

    def test_early_group_round_reset_when_remaining_groups_exhausted(self):
        # Attempt both members of g1 (across two rounds); with only "c" left,
        # g2 must stay eligible even though it was attempted in this round.
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        history.record("u", "v", "g2", "c", self.PARTITION)  # round over, S resets
        history.record("u", "v", "g1", "b", self.PARTITION)  # neighborhood covered, all resets
        history.record("u", "v", "g1", "a", self.PARTITION)
        history.record("u", "v", "g1", "b", self.PARTITION)
        groups, members = history.candidate_groups("u", "v", self.PARTITION)
        assert groups == ["g2"]
        assert members["g2"] == ["c"]

    def test_remaining_in_group_helper(self):
        history = GroupedEdgeHistory()
        assert history.remaining_in_group("u", "v", ["a", "b"]) == ["a", "b"]
        history.record("u", "v", "g1", "a", self.PARTITION)
        assert history.remaining_in_group("u", "v", ["a", "b"]) == ["b"]

    def test_attempted_sets_are_copies(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        nodes = history.attempted_nodes("u", "v")
        nodes.add("zzz")
        assert history.attempted_nodes("u", "v") == {"a"}

    def test_edges_are_independent(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        groups, members = history.candidate_groups("w", "v", self.PARTITION)
        assert set(groups) == {"g1", "g2"}
        assert members["g1"] == ["a", "b"]

    def test_clear(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        history.clear()
        assert history.tracked_edges == 0
        nodes, groups = history.state()
        assert nodes == {}
        assert groups == {}

    def test_state_snapshot(self):
        history = GroupedEdgeHistory()
        history.record("u", "v", "g1", "a", self.PARTITION)
        nodes, groups = history.state()
        assert nodes[("u", "v")] == frozenset({"a"})
        assert groups[("u", "v")] == frozenset({"g1"})

    def test_all_neighbors_exhausted_offers_full_partition(self):
        history = GroupedEdgeHistory()
        single = {"only": ["x"]}
        history.record("u", "v", "only", "x", single)
        # Neighborhood covered -> memory reset -> full partition on offer.
        groups, members = history.candidate_groups("u", "v", single)
        assert groups == ["only"]
        assert members["only"] == ["x"]
