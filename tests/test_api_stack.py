"""Tests for the composable access layer: backends, middleware, builder.

The key property is *stack equivalence*: a ``build_api`` stack must be
walk-for-walk identical to the legacy monolithic ``GraphAPI`` under fixed
seeds — same paths, same unique/total query counts, same traces — because the
paper's cost model and every experiment's reproducibility depend on the
accounting being exact.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.api import (
    BackendAPI,
    BudgetLayer,
    CSRBackend,
    CacheLayer,
    GraphAPI,
    InMemoryBackend,
    InstrumentedAPI,
    QueryBudget,
    RateLimitLayer,
    ShuffleLayer,
    TraceLayer,
    build_api,
    describe_stack,
    iter_layers,
)
from repro.api.ratelimit import FixedWindowPolicy, SimulatedClock
from repro.exceptions import NodeNotFoundError, QueryBudgetExceededError
from repro.graphs import load_dataset
from repro.walks import make_walker


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestInMemoryBackend:
    def test_fetch_matches_graph(self, attributed_graph):
        backend = InMemoryBackend(attributed_graph)
        record = backend.fetch(0)
        assert record.node == 0
        assert set(record.neighbors) == set(attributed_graph.neighbors(0))
        assert record.attributes["age"] == 20
        assert record.degree == attributed_graph.degree(0)

    def test_missing_node_raises(self, attributed_graph):
        backend = InMemoryBackend(attributed_graph)
        with pytest.raises(NodeNotFoundError):
            backend.fetch(999)
        assert not backend.contains(999)

    def test_metadata_is_free_profile(self, attributed_graph):
        backend = InMemoryBackend(attributed_graph)
        metadata = backend.metadata(0)
        assert metadata["degree"] == attributed_graph.degree(0)
        assert backend.metadata(999) is None


class TestCSRBackend:
    def test_matches_in_memory_backend(self, attributed_graph):
        memory = InMemoryBackend(attributed_graph)
        csr = CSRBackend.from_graph(attributed_graph)
        assert len(csr) == attributed_graph.number_of_nodes
        assert csr.number_of_edges == attributed_graph.number_of_edges
        for node in attributed_graph.nodes():
            a = memory.fetch(node)
            b = csr.fetch(node)
            assert sorted(a.neighbors, key=repr) == sorted(b.neighbors, key=repr)
            assert a.attributes == b.attributes
            assert csr.metadata(node)["degree"] == attributed_graph.degree(node)

    def test_fetch_many_order_and_values(self, attributed_graph):
        csr = CSRBackend.from_graph(attributed_graph)
        records = csr.fetch_many([2, 0, 2])
        assert [record.node for record in records] == [2, 0, 2]
        assert set(records[0].neighbors) == set(attributed_graph.neighbors(2))

    def test_missing_node_raises(self, attributed_graph):
        csr = CSRBackend.from_graph(attributed_graph)
        with pytest.raises(NodeNotFoundError):
            csr.fetch(999)

    def test_from_edges_identity_ids(self):
        csr = CSRBackend.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert len(csr) == 4
        assert csr.number_of_edges == 4
        assert sorted(csr.fetch(2).neighbors) == [0, 1, 3]
        # Duplicate and reversed edges collapse.
        dup = CSRBackend.from_edges([(0, 1), (1, 0), (0, 1)])
        assert dup.number_of_edges == 1

    def test_from_edges_drops_self_loops(self):
        csr = CSRBackend.from_edges([(0, 1), (1, 1)])
        assert sorted(csr.fetch(1).neighbors) == [0]

    def test_from_edges_validates_ids(self):
        with pytest.raises(ValueError, match="num_nodes"):
            CSRBackend.from_edges([(0, 5), (1, 2)], num_nodes=3)
        with pytest.raises(ValueError, match="non-negative"):
            CSRBackend.from_edges([(0, 1), (-2, 1)])
        with pytest.raises(ValueError, match="non-self-loop"):
            CSRBackend.from_edges([(3, 3), (5, 5)])

    def test_records_do_not_share_attribute_dicts(self, attributed_graph):
        csr = CSRBackend.from_edges([(0, 1), (1, 2)])
        record = csr.fetch(0)
        record.attributes["poison"] = 1
        assert "poison" not in csr.fetch(0).attributes
        other = CSRBackend.from_graph(attributed_graph)
        view = other.fetch(0)
        view.attributes["poison"] = 1
        assert "poison" not in other.fetch(0).attributes

    def test_non_integer_ids(self):
        from repro.graphs import Graph

        graph = Graph()
        graph.add_edges([("a", "b"), ("b", "c")])
        csr = CSRBackend.from_graph(graph)
        assert set(csr.fetch("b").neighbors) == {"a", "c"}
        assert csr.contains("a") and not csr.contains("z")

    def test_from_edges_dedup_matches_in_memory_semantics(self):
        """Duplicate and mirrored input edges collapse to one simple edge.

        ``Graph.add_edge`` ignores duplicates, so an :class:`InMemoryBackend`
        built from the same messy edge list is the degree/edge-count
        reference the CSR compiler must agree with.
        """
        from repro.graphs import undirected_from_edges

        edges = [(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (1, 2), (3, 0), (0, 3)]
        memory = InMemoryBackend(undirected_from_edges(edges))
        csr = CSRBackend.from_edges(edges)
        assert csr.number_of_edges == memory.graph.number_of_edges == 3
        for node in range(4):
            a = memory.fetch(node)
            b = csr.fetch(node)
            assert a.degree == b.degree
            assert sorted(a.neighbors) == sorted(b.neighbors)
            assert len(b.neighbors) == len(set(b.neighbors)), "duplicate slot leaked"

    def test_from_edges_self_loops_never_count(self):
        """Self-loops neither create adjacency slots nor inflate edge counts."""
        from repro.graphs import undirected_from_edges

        edges = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 2)]
        memory = InMemoryBackend(undirected_from_edges(edges))
        csr = CSRBackend.from_edges(edges)
        assert csr.number_of_edges == memory.graph.number_of_edges == 2
        for node in range(3):
            assert node not in csr.fetch(node).neighbors
            assert csr.metadata(node)["degree"] == memory.metadata(node)["degree"]

    def test_from_graph_pins_degrees_against_in_memory(self):
        """``from_graph`` inherits the graph's already-simple adjacency."""
        from repro.graphs import Graph

        graph = Graph()
        for u, v in [(0, 1), (0, 1), (1, 0), (1, 2), (2, 0)]:
            graph.add_edge(u, v)  # duplicates ignored by the graph itself
        memory = InMemoryBackend(graph)
        csr = CSRBackend.from_graph(graph)
        assert csr.number_of_edges == graph.number_of_edges == 3
        for node in graph.nodes():
            assert csr.fetch(node) == memory.fetch(node)


# ----------------------------------------------------------------------
# Middleware stack behaviour
# ----------------------------------------------------------------------
class TestStackAccounting:
    def test_default_stack_counts_like_graphapi(self, attributed_graph):
        api = build_api(attributed_graph)
        api.query(0)
        api.query(0)
        api.query(1)
        assert api.unique_queries == 2
        assert api.total_queries == 3

    def test_budget_layer_enforces_and_preserves_on_missing(self, attributed_graph):
        api = build_api(attributed_graph, budget=2)
        api.query(0)
        with pytest.raises(NodeNotFoundError):
            api.query(999)
        # The failed query costs nothing.
        assert api.budget.spent == 1
        api.query(1)
        with pytest.raises(QueryBudgetExceededError):
            api.query(2)
        assert api.unique_queries == 2

    def test_budget_rejected_attempt_still_counts_total(self, attributed_graph):
        """The historic GraphAPI counted total_queries before the budget
        raised; rejected attempts must keep doing so."""
        api = build_api(attributed_graph, budget=2)
        api.query(0)
        api.query(1)
        with pytest.raises(QueryBudgetExceededError):
            api.query(2)
        assert api.total_queries == 3
        assert api.unique_queries == 2
        # Cache hits remain free after exhaustion, as before.
        api.query(0)
        assert api.total_queries == 4

    def test_rate_limit_layer_advances_clock_for_fresh_only(self, attributed_graph):
        clock = SimulatedClock()
        api = build_api(
            attributed_graph,
            rate_limit=FixedWindowPolicy(max_calls=2, window_seconds=60.0),
            clock=clock,
        )
        api.query(0)
        api.query(1)
        for _ in range(5):
            api.query(0)  # cache hits are free
        assert clock.now == 0.0
        api.query(2)
        assert clock.now == pytest.approx(60.0)

    def test_shuffle_layer_is_stable_per_node(self, attributed_graph):
        api = build_api(attributed_graph, shuffle_neighbors=True, seed=5)
        assert api.query(0).neighbors == api.query(0).neighbors

    def test_lru_cache_rebills_evictions(self, attributed_graph):
        api = build_api(attributed_graph, cache_capacity=1)
        api.query(0)
        api.query(1)
        api.query(0)
        assert api.unique_queries == 3

    def test_reset_counters_resets_every_layer(self, attributed_graph):
        clock = SimulatedClock()
        api = build_api(
            attributed_graph,
            budget=5,
            rate_limit=FixedWindowPolicy(max_calls=1, window_seconds=10.0),
            clock=clock,
            trace=True,
        )
        api.query(0)
        api.query(1)
        api.reset_counters()
        assert api.unique_queries == 0
        assert api.total_queries == 0
        assert api.budget.spent == 0
        assert len(api.trace) == 0
        assert len(api.cache) == 0

    def test_delegation_reaches_backend(self, attributed_graph):
        api = build_api(attributed_graph, budget=5)
        assert api.graph is attributed_graph
        assert api.budget.limit == 5
        assert api.peek_metadata(0)["degree"] == attributed_graph.degree(0)
        node = api.random_node(seed=3)
        assert attributed_graph.has_node(node)

    def test_describe_stack_order(self, attributed_graph):
        api = build_api(
            attributed_graph,
            budget=5,
            rate_limit=FixedWindowPolicy(max_calls=1, window_seconds=1.0),
            shuffle_neighbors=True,
            trace=True,
        )
        assert describe_stack(api) == (
            "trace -> cache -> budget -> rate-limit -> shuffle -> "
            f"backend[memory:{attributed_graph.name}]"
        )
        layers = list(iter_layers(api))
        assert isinstance(layers[0], TraceLayer)
        assert isinstance(layers[-1], BackendAPI)


class TestQueryMany:
    def test_batch_equals_sequential_accounting(self, attributed_graph):
        sequential = build_api(attributed_graph, budget=10)
        batched = build_api(attributed_graph, budget=10)
        nodes = [0, 1, 0, 2, 1]
        views_seq = [sequential.query(node) for node in nodes]
        views_batch = batched.query_many(nodes)
        assert [v.node for v in views_batch] == [v.node for v in views_seq]
        assert [set(v.neighbors) for v in views_batch] == [set(v.neighbors) for v in views_seq]
        assert batched.unique_queries == sequential.unique_queries == 3
        assert batched.total_queries == sequential.total_queries == 5
        assert batched.budget.spent == sequential.budget.spent == 3

    def test_batch_respects_budget_exhaustion_point(self, attributed_graph):
        api = build_api(attributed_graph, budget=2)
        with pytest.raises(QueryBudgetExceededError):
            api.query_many([0, 1, 2, 3])
        assert api.unique_queries == 2
        assert api.budget.spent == 2

    def test_batch_exhaustion_caches_billed_views(self, attributed_graph):
        """Budget spent mid-batch must leave the billed views cached, so a
        re-query of an already-billed node stays free (per-query semantics)."""
        api = build_api(attributed_graph, budget=1)
        with pytest.raises(QueryBudgetExceededError):
            api.query_many([0, 1])
        assert api.budget.spent == 1
        view = api.query(0)  # cache hit: must not raise or bill
        assert view.node == 0
        assert api.budget.spent == 1

    def test_budget_layer_alone_spends_remaining_budget(self, attributed_graph):
        """Without a cache above it, an unaffordable batch still bills the
        remaining budget sequentially and raises at the right node — the
        budget is never silently forfeited."""
        core = BackendAPI(InMemoryBackend(attributed_graph))
        layer = BudgetLayer(core, QueryBudget(2))
        with pytest.raises(QueryBudgetExceededError):
            layer.query_many([0, 1, 2])
        assert layer.budget.spent == 2
        assert core.unique_queries == 2

    def test_cacheless_stack_batch_matches_sequential(self, attributed_graph):
        api = build_api(attributed_graph, budget=2, cache=False)
        with pytest.raises(QueryBudgetExceededError):
            api.query_many([0, 1, 2, 3])
        assert api.unique_queries == 2
        assert api.total_queries == 3  # two billed + the rejected attempt

    def test_lru_cache_batch_matches_sequential(self, attributed_graph):
        """A batch bigger than a bounded cache must not thrash itself into
        extra billing; accounting equals the sequential loop."""
        nodes = [0, 1, 2, 0, 0]
        batched = build_api(attributed_graph, cache_capacity=2)
        batched.query_many(nodes)
        sequential = build_api(attributed_graph, cache_capacity=2)
        for node in nodes:
            sequential.query(node)
        assert batched.unique_queries == sequential.unique_queries
        assert batched.total_queries == sequential.total_queries

    def test_batch_missing_node_counts_attempted_calls(self, attributed_graph):
        api = build_api(attributed_graph)
        with pytest.raises(NodeNotFoundError):
            api.query_many([0, 999, 1])
        # total counts what a sequential loop would have attempted (nodes 0
        # and 999); the aborted batch delivers nothing, so nothing is billed.
        assert api.total_queries == 2
        assert api.unique_queries == 0
        assert api.query(0).node == 0  # graph still fully usable afterwards

    def test_budget_fallback_unknown_node_caches_billed_views(self, attributed_graph):
        """An unknown node interrupting the budget-degraded sequential path
        must not discard the views that were already billed."""
        api = build_api(attributed_graph, budget=3)
        with pytest.raises(NodeNotFoundError):
            api.query_many([0, 1, 999, 2])
        assert api.budget.spent == 2
        api.query(0)
        api.query(1)
        assert api.budget.spent == 2  # both served from cache, no re-billing

    def test_batch_missing_node_counts_preceding_hits(self, attributed_graph):
        api = build_api(attributed_graph)
        api.query(0)
        with pytest.raises(NodeNotFoundError):
            api.query_many([0, 999])
        # Sequential loop: one billed query, one cache hit, one failed attempt.
        assert api.total_queries == 3
        assert api.unique_queries == 1

    def test_builder_rejects_conflicting_backend_request(self, attributed_graph):
        backend = InMemoryBackend(attributed_graph)
        with pytest.raises(ValueError, match="conflicts"):
            build_api(backend, backend="csr")
        # Matching or unspecified kinds pass the backend through unchanged.
        assert build_api(backend).backend is backend
        csr = CSRBackend.from_graph(attributed_graph)
        assert build_api(csr, backend="csr").backend is csr

    def test_batch_through_rate_limit_charges_fresh_only(self, attributed_graph):
        clock = SimulatedClock()
        api = build_api(
            attributed_graph,
            rate_limit=FixedWindowPolicy(max_calls=2, window_seconds=60.0),
            clock=clock,
        )
        api.query_many([0, 0, 0, 1])
        assert clock.now == 0.0
        api.query_many([0, 1, 2])  # only node 2 is fresh -> third call waits
        assert clock.now == pytest.approx(60.0)

    def test_trace_layer_records_one_entry_per_batch(self, attributed_graph):
        """A traced batch is one record, but node-level views stay per-node."""
        api = build_api(attributed_graph, trace=True)
        api.query_many([0, 1, 0])
        assert len(api.trace) == 1
        (batch,) = api.trace.batches
        assert batch.nodes == (0, 1, 0)
        assert batch.fresh == (True, True, False)
        assert api.trace.queried_nodes == [0, 1, 0]
        assert api.trace.fresh_nodes == [0, 1]
        assert api.trace.frequency() == {0: 2, 1: 1}

    def test_trace_layer_batches_do_not_break_amortisation(self, attributed_graph):
        """Tracing forwards the batch instead of degrading to per-node calls,
        so the layers below see one query_many (ROADMAP open item)."""
        calls = []

        traced = build_api(attributed_graph, trace=True)
        inner = traced.inner
        original = inner.query_many

        def spy(nodes):
            calls.append(list(nodes))
            return original(nodes)

        inner.query_many = spy
        traced.query_many([0, 1, 2, 1])
        assert calls == [[0, 1, 2, 1]]

    def test_trace_layer_mixes_single_and_batch_records(self, attributed_graph):
        api = build_api(attributed_graph, trace=True)
        api.query(0)
        api.query_many([1, 0])
        api.query(2)
        assert len(api.trace) == 3
        assert api.trace.queried_nodes == [0, 1, 0, 2]
        assert api.trace.fresh_nodes == [0, 1, 2]
        assert api.trace.frequency() == {0: 2, 1: 1, 2: 1}

    def test_default_implementation_on_plain_api(self, attributed_graph):
        api = GraphAPI(attributed_graph)
        views = api.query_many([0, 1])
        assert [view.node for view in views] == [0, 1]
        assert api.unique_queries == 2


# ----------------------------------------------------------------------
# Stack equivalence with the legacy GraphAPI
# ----------------------------------------------------------------------
# Golden fingerprints recorded by running the *pre-refactor* monolithic
# GraphAPI (seed commit, before it became a shim over build_api) on
# load_dataset("facebook_like", seed=7, scale=0.12) — the facebook_small
# fixture — with start=nodes()[0], walker seed 7 and a budget of 60 unique
# queries.  Every walk stops on budget exhaustion, and the recorded totals
# include the final budget-rejected attempt, exactly as the historic
# accounting did.  Because both GraphAPI and build_api now share one code
# path, comparing them to each other cannot detect drift from the monolith;
# these constants can.
LEGACY_GOLDEN = {
    "srw": dict(unique=60, total=309, path_len=155, last=86, crc=4134503233),
    "cnrw": dict(unique=60, total=313, path_len=157, last=20, crc=4053506785),
    "gnrw_by_degree": dict(unique=60, total=265, path_len=133, last=47, crc=3972249094),
    "nbcnrw": dict(unique=60, total=251, path_len=126, last=18, crc=2042235279),
    "mhrw": dict(unique=60, total=405, path_len=203, last=82, crc=726656939),
}
#: Same graph, shuffle_neighbors=True with seed=3, SRW seed=5, max_steps=200.
LEGACY_SHUFFLE_GOLDEN = dict(crc=1554129168, unique=70, total=401)


def _path_crc(path):
    import zlib

    return zlib.crc32(",".join(map(str, path)).encode())


@pytest.mark.parametrize("walker_name", sorted(LEGACY_GOLDEN))
@pytest.mark.parametrize("make_api", [
    pytest.param(lambda g: GraphAPI(g, budget=QueryBudget(60)), id="graphapi-shim"),
    pytest.param(lambda g: build_api(g, budget=60), id="build_api-stack"),
])
def test_walks_match_pre_refactor_golden_values(facebook_small, walker_name, make_api):
    api = make_api(facebook_small)
    start = facebook_small.nodes()[0]
    result = make_walker(walker_name, api=api, seed=7).run(start, max_steps=None)
    golden = LEGACY_GOLDEN[walker_name]
    assert result.stopped_by_budget
    assert result.unique_queries == golden["unique"]
    assert result.total_queries == golden["total"]
    assert len(result.path) == golden["path_len"]
    assert result.path[-1] == golden["last"]
    assert _path_crc(result.path) == golden["crc"]


def test_shuffled_walk_matches_pre_refactor_golden_values(facebook_small):
    api = build_api(facebook_small, shuffle_neighbors=True, seed=3)
    start = facebook_small.nodes()[0]
    result = make_walker("srw", api=api, seed=5).run(start, max_steps=200)
    assert _path_crc(result.path) == LEGACY_SHUFFLE_GOLDEN["crc"]
    assert result.unique_queries == LEGACY_SHUFFLE_GOLDEN["unique"]
    assert result.total_queries == LEGACY_SHUFFLE_GOLDEN["total"]


@pytest.mark.parametrize("walker_name", ["cnrw", "gnrw_by_degree"])
def test_stack_traces_identical_to_legacy_graphapi(facebook_small, walker_name):
    budget = 80
    legacy_api = TraceLayer(GraphAPI(facebook_small, budget=QueryBudget(budget)))
    stacked_api = build_api(facebook_small, budget=budget, trace=True)
    start = facebook_small.nodes()[0]

    make_walker(walker_name, api=legacy_api, seed=11).run(start, max_steps=None)
    make_walker(walker_name, api=stacked_api, seed=11).run(start, max_steps=None)

    assert stacked_api.trace.queried_nodes == legacy_api.trace.queried_nodes
    assert stacked_api.trace.fresh_nodes == legacy_api.trace.fresh_nodes


def test_csr_backend_stack_visits_same_node_set(facebook_small):
    """CSR serves the same topology; walks agree whenever neighbor order does."""
    memory_api = build_api(facebook_small)
    csr_api = build_api(facebook_small, backend="csr")
    for node in list(facebook_small.nodes())[:50]:
        a = memory_api.query(node)
        b = csr_api.query(node)
        assert set(a.neighbors) == set(b.neighbors)
        assert a.attributes == b.attributes


# ----------------------------------------------------------------------
# Delegation / lifecycle regressions
# ----------------------------------------------------------------------
class TestLayerDelegation:
    def test_missing_attribute_raises_attribute_error(self, api):
        layer = TraceLayer(api)
        with pytest.raises(AttributeError):
            layer.does_not_exist

    def test_copy_does_not_recurse(self, api):
        layer = TraceLayer(api)
        clone = copy.copy(layer)
        assert clone.inner is api
        # A deepcopy goes through __reduce_ex__ on a half-built instance; the
        # guarded __getattr__ must raise AttributeError instead of recursing.
        deep = copy.deepcopy(layer)
        assert deep.unique_queries == layer.unique_queries

    def test_pickle_roundtrip(self, attributed_graph):
        layer = TraceLayer(GraphAPI(attributed_graph))
        layer.query(0)
        restored = pickle.loads(pickle.dumps(layer))
        assert restored.trace.queried_nodes == [0]
        assert restored.unique_queries == 1

    def test_instrumented_api_is_deprecated_trace_layer(self, api):
        with pytest.warns(DeprecationWarning):
            instrumented = InstrumentedAPI(api)
        assert isinstance(instrumented, TraceLayer)
        instrumented.query(0)
        assert instrumented.trace.fresh_nodes == [0]

    def test_manual_stack_composition(self, attributed_graph):
        """Layers compose by hand without the builder."""
        core = BackendAPI(InMemoryBackend(attributed_graph))
        api = CacheLayer(BudgetLayer(core, QueryBudget(3)))
        api.query(0)
        api.query(0)
        assert api.unique_queries == 1
        assert api.total_queries == 2
        assert api.budget.remaining == 2

    def test_rate_limit_layer_creates_clock(self, attributed_graph):
        core = BackendAPI(InMemoryBackend(attributed_graph))
        layer = RateLimitLayer(core, FixedWindowPolicy(max_calls=1, window_seconds=5.0))
        layer.query(0)
        layer.query(1)
        assert layer.clock.now == pytest.approx(5.0)

    def test_shuffle_layer_preserves_view_fields(self, attributed_graph):
        core = BackendAPI(InMemoryBackend(attributed_graph))
        layer = ShuffleLayer(core, rng=0)
        view = layer.query(0)
        assert view.node == 0
        assert set(view.neighbors) == set(attributed_graph.neighbors(0))
        assert view.attributes["age"] == 20
