"""Vector engine suite: the array-native driver's own conformance contract.

The vector engine is an **explicitly separate seed lineage** — its golden
fingerprints are pinned here independently of the scalar goldens in
``tests/test_backend_conformance.py``, which remain the conformance
reference.  What this suite locks down:

* golden vector-lineage fingerprints per array-native kernel, identical on
  the CSR and mmap-CSR backends, bit-identical across repeated runs and
  across process fan-out under a fixed seed;
* ``QueryStats`` billing equality with the scalar scheduler's batched
  ``query_many`` semantics on a cached CSR stack (including cache-hit
  accounting on a second run and the partial-then-reject budget death);
* statistical agreement between the two lineages: the SRW visit
  distribution of both engines converges to the same degree-proportional
  stationary distribution (total-variation bound) even though the paths
  intentionally differ;
* kernel-level walk properties (NB-SRW never backtracks, CNRW circulates
  without repeats) checked on the emitted paths, not on internals;
* typed :class:`VectorizationError` refusals for every non-vectorisable
  stack shape, and the documented warn-and-fall-back behaviour of
  ``SamplingSession.run_ensemble(mode="vector")``;
* the satellite rng fixes: ``weighted_choice`` rejects negative weights on
  every draw (not only when the scan walks past them) and shares its
  cumulative-scan helper with the weighted kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CSRBackend, SamplingSession, build_api
from repro.engine.vector import (
    VECTOR_KERNEL_NAMES,
    VectorScheduler,
    make_vector_kernel,
)
from repro.exceptions import (
    DeadEndError,
    InvalidStartNodeError,
    VectorizationError,
)
from repro.graphs import load_dataset
from repro.rng import cumulative_pick, lineage_rng, weighted_choice
from repro.storage import load_snapshot, save_snapshot

# Golden vector-lineage fingerprints (facebook_like, seed=7, scale=0.12;
# starts nodes()[:8]; 40 steps; vector seed 7 on a fresh memoised CSR
# stack).  On a fresh memoised stack unique == total == |distinct visited|,
# so a single number pins the billing too.
VECTOR_GOLDEN = {
    "srw": dict(unique=85, total=85, crc=1856579777),
    "nbsrw": dict(unique=87, total=87, crc=332896545),
    "mhrw": dict(unique=70, total=70, crc=2044588987),
    "cnrw": dict(unique=82, total=82, crc=2784614769),
    "cnrw_node": dict(unique=81, total=81, crc=1628875112),
}
GOLDEN_SEED = 7
GOLDEN_STEPS = 40
GOLDEN_WALKERS = 8


@pytest.fixture(scope="module")
def conformance_graph():
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture(scope="module")
def csr_backend(conformance_graph) -> CSRBackend:
    return CSRBackend.from_graph(conformance_graph)


@pytest.fixture(scope="module")
def mmap_backend(conformance_graph, tmp_path_factory):
    return load_snapshot(
        save_snapshot(conformance_graph, tmp_path_factory.mktemp("vsnap") / "csr")
    )


def _golden_run(backend, graph, kernel_name, seed=GOLDEN_SEED):
    scheduler = VectorScheduler(build_api(backend))
    return scheduler.run(
        kernel_name, graph.nodes()[:GOLDEN_WALKERS], steps=GOLDEN_STEPS, seed=seed
    )


# ----------------------------------------------------------------------
# Golden fingerprints and determinism
# ----------------------------------------------------------------------
class TestGoldenVectorWalks:
    @pytest.mark.parametrize("kernel_name", sorted(VECTOR_GOLDEN))
    def test_golden_fingerprint_on_csr(self, csr_backend, conformance_graph, kernel_name):
        result = _golden_run(csr_backend, conformance_graph, kernel_name)
        golden = VECTOR_GOLDEN[kernel_name]
        assert result.num_walkers == GOLDEN_WALKERS
        assert result.steps == GOLDEN_STEPS
        assert result.unique_queries == golden["unique"]
        assert result.total_queries == golden["total"]
        assert result.fingerprint() == golden["crc"]

    @pytest.mark.parametrize("kernel_name", sorted(VECTOR_GOLDEN))
    def test_mmap_backend_matches_csr(
        self, csr_backend, mmap_backend, conformance_graph, kernel_name
    ):
        csr = _golden_run(csr_backend, conformance_graph, kernel_name)
        mmapped = _golden_run(mmap_backend, conformance_graph, kernel_name)
        assert mmapped.fingerprint() == csr.fingerprint()
        assert mmapped.unique_queries == csr.unique_queries
        assert mmapped.total_queries == csr.total_queries

    @pytest.mark.parametrize("kernel_name", sorted(VECTOR_GOLDEN))
    def test_repeated_runs_bit_identical(self, csr_backend, conformance_graph, kernel_name):
        first = _golden_run(csr_backend, conformance_graph, kernel_name)
        second = _golden_run(csr_backend, conformance_graph, kernel_name)
        assert np.array_equal(first.paths, second.paths)

    def test_different_seeds_diverge(self, csr_backend, conformance_graph):
        a = _golden_run(csr_backend, conformance_graph, "srw", seed=7)
        b = _golden_run(csr_backend, conformance_graph, "srw", seed=8)
        assert not np.array_equal(a.paths, b.paths)

    def test_vector_lineage_differs_from_scalar(self, conformance_graph, csr_backend):
        """Same seed, same kernel, intentionally different walks: the vector
        engine is its own lineage, not a reimplementation of the scalar rng
        draw order."""
        vector = _golden_run(csr_backend, conformance_graph, "srw")
        session = (
            SamplingSession(conformance_graph).backend("csr").walker("srw", seed=GOLDEN_SEED)
        )
        scalar = session.run_ensemble(
            GOLDEN_WALKERS,
            steps=GOLDEN_STEPS,
            starts=conformance_graph.nodes()[:GOLDEN_WALKERS],
            seed=GOLDEN_SEED,
        )
        scalar_paths = [result.path for result in scalar]
        vector_paths = [vector.path_of(w) for w in range(GOLDEN_WALKERS)]
        assert scalar_paths != vector_paths

    def test_lineage_rng_is_tagged_and_rejects_unknown(self):
        # The vector stream must not collide with default_rng(seed).
        assert lineage_rng(3, "vector").random() != np.random.default_rng(3).random()
        assert lineage_rng(3).random() == lineage_rng(3, "vector").random()
        with pytest.raises(ValueError, match="vector"):
            lineage_rng(3, "no-such-lineage")

    def test_process_fanout_bit_identical(self, conformance_graph):
        """The same vector trials through 1 worker and 2 workers (fresh CSR
        compiled per process) produce identical paths."""
        from repro.experiments.config import WalkerSpec
        from repro.experiments.runner import WalkTask, run_walk_tasks

        tasks = [
            WalkTask(spec=WalkerSpec.make("srw"), seed=seed, steps=30, engine="vector")
            for seed in (11, 12, 13, 14)
        ]
        sequential = run_walk_tasks(tasks, jobs=1, graph=conformance_graph)
        fanned = run_walk_tasks(tasks, jobs=2, graph=conformance_graph)
        assert [r.path for r in sequential] == [r.path for r in fanned]
        assert [r.unique_queries for r in sequential] == [r.unique_queries for r in fanned]


# ----------------------------------------------------------------------
# Billing conformance with the scalar query_many semantics
# ----------------------------------------------------------------------
class TestVectorBilling:
    def test_fresh_memoised_stack_bills_each_distinct_node_once(
        self, csr_backend, conformance_graph
    ):
        result = _golden_run(csr_backend, conformance_graph, "srw")
        distinct = len(np.unique(result.paths))
        assert result.unique_queries == result.total_queries == distinct

    def test_scalar_mode_obeys_the_same_invariant(self, conformance_graph):
        session = (
            SamplingSession(conformance_graph).backend("csr").walker("srw", seed=GOLDEN_SEED)
        )
        results = session.run_ensemble(
            GOLDEN_WALKERS,
            steps=GOLDEN_STEPS,
            starts=conformance_graph.nodes()[:GOLDEN_WALKERS],
            seed=GOLDEN_SEED,
        )
        distinct = len({node for result in results for node in result.path})
        assert session.unique_queries == session.total_queries == distinct

    def test_billing_matches_query_many_replay(self, conformance_graph):
        """Replaying the vector frontiers through a *real* cached CSR stack
        (the scalar scheduler's exact fetch discipline: one deduplicated
        batch per round, nodes already materialised this run skipped) must
        land on the same QueryStats — including cache hits when a second
        run revisits nodes the first one cached."""
        backend = CSRBackend.from_graph(conformance_graph)
        vector_api = build_api(backend)
        scheduler = VectorScheduler(vector_api)
        starts = conformance_graph.nodes()[:GOLDEN_WALKERS]
        first = scheduler.run("srw", starts, steps=GOLDEN_STEPS, seed=7)
        second = scheduler.run("srw", starts, steps=GOLDEN_STEPS, seed=8)

        replay_api = build_api(CSRBackend.from_graph(conformance_graph))
        for run in (first, second):
            views: set = set()
            for row in run.paths:
                batch = []
                for node in backend.to_node_ids(row):
                    if node not in views:
                        views.add(node)
                        batch.append(node)
                if batch:
                    replay_api.query_many(batch)
        assert vector_api.unique_queries == replay_api.unique_queries
        assert vector_api.total_queries == replay_api.total_queries
        # The second run revisited cached nodes: hits billed total-only.
        assert vector_api.total_queries > vector_api.unique_queries

    def test_budget_death_uses_partial_then_reject_accounting(self, conformance_graph):
        api = build_api(CSRBackend.from_graph(conformance_graph), budget=30)
        scheduler = VectorScheduler(api)
        result = scheduler.run(
            "srw", conformance_graph.nodes()[:GOLDEN_WALKERS], steps=None, seed=7
        )
        assert result.stopped_by_budget
        assert result.unique_queries == 30
        assert result.total_queries == 31  # the rejected attempt still counts
        # The truncated round keeps its row but emits no sample for it.
        assert result.sample_rounds[-1][0] < result.steps

    def test_budget_death_on_starts_returns_empty_result(self, conformance_graph):
        api = build_api(CSRBackend.from_graph(conformance_graph), budget=3)
        result = VectorScheduler(api).run(
            "srw", conformance_graph.nodes()[:GOLDEN_WALKERS], steps=5, seed=7
        )
        assert result.stopped_by_budget
        assert result.paths.shape == (0, GOLDEN_WALKERS)
        assert result.unique_queries == 3
        assert result.to_walk_results()[0].path == []

    def test_uncached_stack_rebills_every_round(self, conformance_graph):
        api = build_api(CSRBackend.from_graph(conformance_graph), cache=False)
        result = VectorScheduler(api).run(
            "srw", conformance_graph.nodes()[:4], steps=20, seed=7
        )
        distinct = len(np.unique(result.paths))
        assert result.unique_queries > distinct  # revisits re-billed
        assert result.unique_queries == result.total_queries


# ----------------------------------------------------------------------
# Cross-mode statistical agreement
# ----------------------------------------------------------------------
class TestCrossModeStatistics:
    def test_srw_visit_distributions_converge_to_stationary(self, conformance_graph):
        """Both engines' SRW visit distributions sit within a small total
        variation distance of the degree-proportional stationary
        distribution — and hence of each other — despite distinct paths."""
        from repro.metrics import theoretical_distribution

        backend = CSRBackend.from_graph(conformance_graph)
        nodes = conformance_graph.nodes()
        theoretical = theoretical_distribution(conformance_graph).vector(nodes)

        vector_result = VectorScheduler(build_api(backend)).run(
            "srw", nodes[:50], steps=400, seed=3
        )
        counts = vector_result.visit_counts().astype(float)
        # Arrays are CSR-index aligned; re-align to graph.nodes() order.
        index_of = {node: i for i, node in enumerate(backend.node_ids())}
        vector_dist = np.array([counts[index_of[node]] for node in nodes])
        vector_dist /= vector_dist.sum()

        session = SamplingSession(conformance_graph).backend("csr").walker("srw", seed=3)
        scalar_results = session.run_ensemble(50, steps=400, starts=nodes[:50], seed=3)
        scalar_counts: dict = {}
        for result in scalar_results:
            for node in result.path:
                scalar_counts[node] = scalar_counts.get(node, 0) + 1
        scalar_dist = np.array([scalar_counts.get(node, 0) for node in nodes], dtype=float)
        scalar_dist /= scalar_dist.sum()

        tv_vector = 0.5 * np.abs(vector_dist - theoretical).sum()
        tv_scalar = 0.5 * np.abs(scalar_dist - theoretical).sum()
        tv_cross = 0.5 * np.abs(vector_dist - scalar_dist).sum()
        assert tv_vector < 0.08, f"vector TV {tv_vector:.4f}"
        assert tv_scalar < 0.08, f"scalar TV {tv_scalar:.4f}"
        assert tv_cross < 0.08, f"cross-mode TV {tv_cross:.4f}"

    def test_nbsrw_never_backtracks(self, csr_backend, conformance_graph):
        result = _golden_run(csr_backend, conformance_graph, "nbsrw")
        indptr = csr_backend.indptr
        paths = result.paths
        for r in range(2, paths.shape[0]):
            cur = paths[r - 1]
            degree = indptr[cur + 1] - indptr[cur]
            backtracked = (paths[r] == paths[r - 2]) & (degree > 1)
            assert not backtracked.any()

    @pytest.mark.parametrize("kernel_name", ["cnrw", "cnrw_node"])
    def test_cnrw_circulates_without_repeats(
        self, csr_backend, conformance_graph, kernel_name
    ):
        """Within one circulation of a neighborhood no neighbor repeats: the
        defining CNRW invariant, replayed over the emitted paths."""
        result = _golden_run(csr_backend, conformance_graph, kernel_name)
        indptr = csr_backend.indptr
        paths = result.paths
        edge_keyed = kernel_name == "cnrw"
        for walker in range(paths.shape[1]):
            buckets: dict = {}
            for r in range(1, paths.shape[0]):
                prev = int(paths[r - 2, walker]) if (edge_keyed and r >= 2) else -1
                cur = int(paths[r - 1, walker])
                target = int(paths[r, walker])
                bucket = buckets.setdefault((prev, cur), set())
                assert target not in bucket, (walker, r)
                bucket.add(target)
                if len(bucket) >= int(indptr[cur + 1] - indptr[cur]):
                    del buckets[(prev, cur)]

    def test_mhrw_only_moves_to_neighbors_or_stays(self, csr_backend, conformance_graph):
        result = _golden_run(csr_backend, conformance_graph, "mhrw")
        indptr, indices = csr_backend.indptr, csr_backend.indices
        paths = result.paths
        for r in range(1, paths.shape[0]):
            for walker in range(paths.shape[1]):
                cur, nxt = int(paths[r - 1, walker]), int(paths[r, walker])
                row = indices[indptr[cur]: indptr[cur + 1]]
                assert nxt == cur or nxt in row


# ----------------------------------------------------------------------
# Vectorisability validation and fallback
# ----------------------------------------------------------------------
class TestVectorisability:
    def test_memory_backend_raises_typed_error(self, conformance_graph):
        with pytest.raises(VectorizationError, match="array-capable"):
            VectorScheduler(build_api(conformance_graph))

    def test_bounded_cache_raises(self, csr_backend):
        with pytest.raises(VectorizationError, match="LRU"):
            VectorScheduler(build_api(csr_backend, cache_capacity=16))

    def test_trace_rate_limit_and_shuffle_raise(self, csr_backend):
        from repro.api import twitter_policy

        for kwargs in (
            dict(trace=True),
            dict(rate_limit=twitter_policy()),
            dict(shuffle_neighbors=True, seed=1),
        ):
            with pytest.raises(VectorizationError, match="not vectorisable"):
                VectorScheduler(build_api(csr_backend, **kwargs))

    def test_non_array_kernels_raise(self):
        for name in ("gnrw_by_degree", "nbcnrw", "weighted"):
            with pytest.raises(VectorizationError, match="array-native"):
                make_vector_kernel(name)
        with pytest.raises(VectorizationError, match="options"):
            make_vector_kernel("srw", grouping="by_degree")
        assert set(VECTOR_KERNEL_NAMES) == {"srw", "nbsrw", "mhrw", "cnrw", "cnrw_node"}

    def test_session_falls_back_with_warning(self, conformance_graph):
        session = SamplingSession(conformance_graph).walker("gnrw_by_degree", seed=5)
        with pytest.warns(UserWarning, match="vector mode unavailable"):
            results = session.run_ensemble(3, steps=10, seed=5, mode="vector")
        assert len(results) == 3  # scalar results, not an error
        assert all(result.steps == 10 for result in results)

    def test_session_vector_mode_runs_on_csr(self, conformance_graph):
        import warnings

        session = SamplingSession(conformance_graph).backend("csr").walker("srw", seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warning expected
            results = session.run_ensemble(
                4, steps=12, starts=conformance_graph.nodes()[:4], seed=5, mode="vector"
            )
        assert len(results) == 4
        assert all(result.steps == 12 for result in results)
        assert all(len(result.samples) == 13 for result in results)

    def test_invalid_mode_rejected(self, conformance_graph):
        session = SamplingSession(conformance_graph).walker("srw", seed=5)
        with pytest.raises(ValueError, match="mode"):
            session.run_ensemble(2, steps=5, mode="turbo")

    def test_degree_zero_start_raises(self):
        backend = CSRBackend(indptr=np.array([0, 1, 1]), indices=np.array([1]))
        with pytest.raises(InvalidStartNodeError):
            VectorScheduler(build_api(backend)).run("srw", [1], steps=5, seed=1)

    def test_dead_end_raises_typed_error(self):
        backend = CSRBackend(indptr=np.array([0, 1, 1]), indices=np.array([1]))
        with pytest.raises(DeadEndError):
            VectorScheduler(build_api(backend)).run("srw", [0], steps=5, seed=1)

    def test_steps_none_requires_finite_budget(self, csr_backend):
        with pytest.raises(ValueError, match="budget"):
            VectorScheduler(build_api(csr_backend)).run("srw", [0], steps=None, seed=1)


# ----------------------------------------------------------------------
# Result materialisation
# ----------------------------------------------------------------------
class TestResultMaterialisation:
    def test_to_walk_results_mirrors_columns(self, csr_backend, conformance_graph):
        result = _golden_run(csr_backend, conformance_graph, "srw")
        walks = result.to_walk_results()
        assert len(walks) == GOLDEN_WALKERS
        for w, walk in enumerate(walks):
            assert walk.path == result.path_of(w)
            assert len(walk.path) == GOLDEN_STEPS + 1
            assert len(walk.transitions) == GOLDEN_STEPS
            assert walk.transitions[0].source == walk.path[0]
            assert walk.unique_queries == result.unique_queries
            assert [sample.node for sample in walk.samples] == walk.path
            for sample in walk.samples:
                assert sample.degree == conformance_graph.degree(sample.node)

    def test_burn_in_and_thinning_gate_samples(self, csr_backend, conformance_graph):
        scheduler = VectorScheduler(build_api(csr_backend))
        result = scheduler.run(
            "srw", conformance_graph.nodes()[:3], steps=20, seed=2, burn_in=5, thinning=3
        )
        rounds = [r for r, _ in result.sample_rounds]
        assert rounds == [5, 8, 11, 14, 17, 20]
        walk = result.to_walk_results()[0]
        assert [sample.step_index for sample in walk.samples] == rounds


# ----------------------------------------------------------------------
# Satellite: shared cumulative-scan helper + weighted_choice validation
# ----------------------------------------------------------------------
class TestWeightedChoiceFix:
    def test_negative_weight_rejected_even_when_scan_stops_early(self):
        rng = np.random.default_rng(0)
        # Historic bug: the scan returned "a" before reaching the negative
        # weight whenever the draw landed in the first bucket; validation
        # must happen before any early exit.
        for _ in range(20):
            with pytest.raises(ValueError, match="negative"):
                weighted_choice(rng, ["a", "b"], [1000.0, -1.0])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_choice(np.random.default_rng(0), ["a"], [0.0])

    def test_cumulative_pick_boundaries_and_zero_weights(self):
        items = ["a", "b", "c"]
        weights = [1.0, 0.0, 1.0]
        assert cumulative_pick(items, weights, 0.5) == "a"
        assert cumulative_pick(items, weights, 1.5) == "c"
        # Threshold at (or numerically past) the total lands on the last
        # positively-weighted item, never a zero-weight one.
        assert cumulative_pick(["a", "b"], [1.0, 0.0], 1.0) == "a"
        with pytest.raises(ValueError, match="positive"):
            cumulative_pick(["a"], [0.0], 0.0)

    def test_weighted_kernel_shares_the_helper(self, conformance_graph):
        """The weighted kernel and weighted_choice agree draw for draw."""
        from repro.walks.kernels import WalkState, WeightedChoiceKernel

        api = build_api(conformance_graph)
        node = conformance_graph.nodes()[0]
        view = api.query(node)
        weight_fn = lambda view_, neighbor: float(len(str(neighbor))) + 1.0
        kernel = WeightedChoiceKernel(weight_fn)
        state = WalkState(current=node)
        weights = [weight_fn(view, nb) for nb in view.neighbors]
        for seed in range(10):
            picked = kernel.choose(state, view, np.random.default_rng(seed))
            expected = weighted_choice(
                np.random.default_rng(seed), list(view.neighbors), weights
            )
            assert picked == expected


class TestMHRWPeekCache:
    def test_peek_resolved_once_at_construction(self, conformance_graph):
        from repro.walks.kernels import MHRWKernel

        api = build_api(conformance_graph)
        kernel = MHRWKernel(api)
        assert callable(kernel._peek)
        node = conformance_graph.nodes()[0]
        assert kernel._peek(node) == api.peek_metadata(node)
        # An API without peek_metadata degrades to None, not an AttributeError.
        class Bare:
            pass

        assert MHRWKernel(Bare())._peek is None
