"""Unit tests for the paper-dataset registry."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidConfigurationError
from repro.graphs import available_datasets, load_dataset, register_dataset, summarize
from repro.graphs.statistics import conductance_of_cut


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        names = available_datasets()
        for expected in (
            "facebook_like",
            "googleplus_like",
            "yelp_like",
            "youtube_like",
            "clustered",
            "barbell",
        ):
            assert expected in names

    def test_unknown_dataset(self):
        with pytest.raises(InvalidConfigurationError):
            load_dataset("does_not_exist")

    def test_register_custom_dataset(self):
        @register_dataset("tiny_test_dataset")
        def _build(seed=0, scale=1.0, **_):
            from repro.graphs import complete_graph

            return complete_graph(4)

        graph = load_dataset("tiny_test_dataset")
        assert graph.number_of_nodes == 4

    def test_reproducible_with_seed(self):
        a = load_dataset("yelp_like", seed=11, scale=0.1)
        b = load_dataset("yelp_like", seed=11, scale=0.1)
        assert set(a.edges()) == set(b.edges())

    def test_different_seeds_differ(self):
        a = load_dataset("googleplus_like", seed=1, scale=0.1)
        b = load_dataset("googleplus_like", seed=2, scale=0.1)
        assert set(a.edges()) != set(b.edges())


class TestDatasetShape:
    @pytest.mark.parametrize(
        "name", ["facebook_like", "googleplus_like", "yelp_like", "youtube_like"]
    )
    def test_real_graph_standins_are_connected(self, name):
        graph = load_dataset(name, seed=0, scale=0.1)
        assert graph.is_connected()
        assert graph.number_of_nodes >= 20

    def test_facebook_like_has_high_clustering(self):
        graph = load_dataset("facebook_like", seed=0, scale=0.5)
        assert graph.average_clustering() > 0.2

    def test_googleplus_like_has_heavy_tail(self):
        graph = load_dataset("googleplus_like", seed=0, scale=0.2)
        degrees = sorted(graph.degrees().values(), reverse=True)
        assert degrees[0] > 3 * degrees[len(degrees) // 2]

    def test_youtube_like_is_sparse(self):
        graph = load_dataset("youtube_like", seed=0, scale=0.2)
        assert graph.average_degree() < 10

    def test_yelp_like_has_reviews_count(self):
        graph = load_dataset("yelp_like", seed=0, scale=0.1)
        assert "reviews_count" in graph.attribute_names()
        assert "age" in graph.attribute_names()

    def test_scale_changes_size(self):
        small = load_dataset("youtube_like", seed=0, scale=0.1)
        large = load_dataset("youtube_like", seed=0, scale=0.3)
        assert large.number_of_nodes > small.number_of_nodes

    def test_clustered_matches_paper(self):
        graph = load_dataset("clustered", seed=0)
        assert graph.number_of_nodes == 90
        assert graph.average_clustering() > 0.95

    def test_barbell_matches_paper(self):
        graph = load_dataset("barbell", seed=0)
        assert graph.number_of_nodes == 100
        assert graph.number_of_edges == 2451

    def test_barbell_explicit_clique_size(self):
        graph = load_dataset("barbell", seed=0, clique_size=7)
        assert graph.number_of_nodes == 14

    def test_ill_formed_graphs_have_tiny_conductance(self):
        for name in ("clustered", "barbell"):
            graph = load_dataset(name, seed=0)
            assert conductance_of_cut(graph) < 0.05

    def test_summaries_have_sane_fields(self):
        summary = summarize(load_dataset("facebook_like", seed=0, scale=0.2))
        assert summary.nodes > 0
        assert summary.edges > 0
        assert summary.average_degree > 0
        assert 0 <= summary.average_clustering <= 1
        assert summary.triangles >= 0
