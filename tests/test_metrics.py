"""Unit tests for distributions, divergences, bias and convergence metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyGraphError, InsufficientSamplesError
from repro.graphs import Graph, complete_graph, star_graph
from repro.metrics import (
    Distribution,
    burn_in_estimate,
    distribution_series,
    empirical_distribution,
    gelman_rubin,
    geweke_zscore,
    jensen_shannon_divergence,
    kl_divergence,
    l2_distance,
    mean_relative_error,
    median_relative_error,
    nodes_by_degree,
    normalized_rmse,
    relative_error,
    symmetric_kl_divergence,
    theoretical_distribution,
    total_variation_distance,
    uniform_distribution,
)
from repro.metrics.bias import absolute_error, bias_of_estimates


class TestDistribution:
    def test_normalisation(self):
        dist = Distribution({1: 2.0, 2: 2.0})
        assert dist.probability(1) == pytest.approx(0.5)
        assert dist.probability(99) == 0.0
        assert len(dist) == 2

    def test_vector_alignment(self):
        dist = Distribution({1: 1.0, 2: 3.0})
        vector = dist.vector([2, 1, 99])
        assert vector == pytest.approx([0.75, 0.25, 0.0])

    def test_invalid(self):
        with pytest.raises(InsufficientSamplesError):
            Distribution({})
        with pytest.raises(ValueError):
            Distribution({1: 0.0})

    def test_theoretical_distribution(self, square_with_diagonal):
        dist = theoretical_distribution(square_with_diagonal)
        assert dist.probability(0) == pytest.approx(0.3)
        assert sum(dist.as_dict().values()) == pytest.approx(1.0)

    def test_theoretical_requires_edges(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(EmptyGraphError):
            theoretical_distribution(graph)

    def test_uniform_distribution(self, triangle_graph):
        dist = uniform_distribution(triangle_graph)
        assert dist.probability(0) == pytest.approx(1 / 3)

    def test_empirical_distribution(self):
        dist = empirical_distribution([1, 1, 2, 3])
        assert dist.probability(1) == pytest.approx(0.5)
        assert dist.support_size() == 3

    def test_empirical_with_support_and_smoothing(self):
        dist = empirical_distribution([1], support=[1, 2], smoothing=1.0)
        assert dist.probability(1) == pytest.approx(2 / 3)
        assert dist.probability(2) == pytest.approx(1 / 3)

    def test_empirical_requires_visits(self):
        with pytest.raises(InsufficientSamplesError):
            empirical_distribution([])
        with pytest.raises(InsufficientSamplesError):
            empirical_distribution([], support=[1, 2], smoothing=0.0)

    def test_nodes_by_degree(self, small_star):
        ordering = nodes_by_degree(small_star)
        assert ordering[-1] == 0  # hub has the largest degree
        descending = nodes_by_degree(small_star, ascending=False)
        assert descending[0] == 0

    def test_distribution_series(self, small_star):
        empirical = empirical_distribution([0, 1, 2], support=small_star.nodes())
        ordering, series = distribution_series(small_star, {"SRW": empirical})
        assert len(ordering) == small_star.number_of_nodes
        assert set(series) == {"theoretical", "SRW"}
        assert series["theoretical"].sum() == pytest.approx(1.0)


class TestDivergences:
    def test_identical_distributions_are_zero(self, small_clique):
        dist = theoretical_distribution(small_clique)
        assert kl_divergence(dist, dist) == pytest.approx(0.0, abs=1e-9)
        assert symmetric_kl_divergence(dist, dist) == pytest.approx(0.0, abs=1e-9)
        assert l2_distance(dist, dist) == pytest.approx(0.0)
        assert total_variation_distance(dist, dist) == pytest.approx(0.0)
        assert jensen_shannon_divergence(dist, dist) == pytest.approx(0.0, abs=1e-9)

    def test_kl_is_asymmetric_symmetric_kl_is_not(self):
        p = Distribution({1: 0.9, 2: 0.1})
        q = Distribution({1: 0.5, 2: 0.5})
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))
        assert symmetric_kl_divergence(p, q) == pytest.approx(symmetric_kl_divergence(q, p))

    def test_known_l2_and_tv_values(self):
        p = Distribution({1: 1.0})
        q = Distribution({2: 1.0})
        assert l2_distance(p, q) == pytest.approx(np.sqrt(2.0))
        assert total_variation_distance(p, q) == pytest.approx(1.0)

    def test_divergence_decreases_with_better_fit(self, small_star):
        truth = theoretical_distribution(small_star)
        rough = empirical_distribution([0, 0, 0, 1], support=small_star.nodes())
        # Build a close-to-exact empirical distribution from pi itself.
        close_counts = {node: max(1, round(1000 * truth.probability(node))) for node in small_star.nodes()}
        close = Distribution(close_counts)
        assert symmetric_kl_divergence(truth, close) < symmetric_kl_divergence(truth, rough)
        assert l2_distance(truth, close) < l2_distance(truth, rough)

    def test_jensen_shannon_bounded(self):
        p = Distribution({1: 1.0})
        q = Distribution({2: 1.0})
        assert jensen_shannon_divergence(p, q) <= np.log(2) + 1e-9


class TestBiasMetrics:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(3.0, 0.0) == 3.0

    def test_absolute_error(self):
        assert absolute_error(11.0, 10.0) == 1.0

    def test_mean_and_median(self):
        estimates = [9.0, 11.0, 14.0]
        assert mean_relative_error(estimates, 10.0) == pytest.approx((0.1 + 0.1 + 0.4) / 3)
        assert median_relative_error(estimates, 10.0) == pytest.approx(0.1)

    def test_normalized_rmse(self):
        assert normalized_rmse([8.0, 12.0], 10.0) == pytest.approx(0.2)
        assert normalized_rmse([1.0], 0.0) == pytest.approx(1.0)

    def test_bias_of_estimates(self):
        assert bias_of_estimates([9.0, 11.0, 13.0], 10.0) == pytest.approx(1.0)

    def test_empty_inputs(self):
        with pytest.raises(InsufficientSamplesError):
            mean_relative_error([], 1.0)
        with pytest.raises(InsufficientSamplesError):
            normalized_rmse([], 1.0)
        with pytest.raises(InsufficientSamplesError):
            bias_of_estimates([], 1.0)


class TestConvergenceDiagnostics:
    def test_geweke_on_stationary_series(self):
        series = np.random.default_rng(0).normal(0.0, 1.0, 500)
        assert abs(geweke_zscore(series)) < 3.0

    def test_geweke_detects_drift(self):
        series = np.linspace(0.0, 10.0, 500) + np.random.default_rng(1).normal(0, 0.1, 500)
        assert abs(geweke_zscore(series)) > 3.0

    def test_geweke_validation(self):
        with pytest.raises(InsufficientSamplesError):
            geweke_zscore([1.0, 2.0])
        with pytest.raises(ValueError):
            geweke_zscore(np.zeros(100), first_fraction=0.6, last_fraction=0.6)
        with pytest.raises(ValueError):
            geweke_zscore(np.zeros(100), first_fraction=0.0)

    def test_geweke_constant_series(self):
        assert geweke_zscore([1.0] * 100) == 0.0

    def test_gelman_rubin_mixed_chains(self):
        rng = np.random.default_rng(2)
        chains = [rng.normal(0.0, 1.0, 500) for _ in range(4)]
        assert gelman_rubin(chains) < 1.1

    def test_gelman_rubin_detects_unmixed_chains(self):
        rng = np.random.default_rng(3)
        chains = [rng.normal(0.0, 1.0, 500), rng.normal(10.0, 1.0, 500)]
        assert gelman_rubin(chains) > 1.5

    def test_gelman_rubin_validation(self):
        with pytest.raises(InsufficientSamplesError):
            gelman_rubin([[1.0, 2.0]])
        with pytest.raises(ValueError):
            gelman_rubin([[1.0, 2.0], [1.0]])
        with pytest.raises(InsufficientSamplesError):
            gelman_rubin([[1.0], [2.0]])

    def test_gelman_rubin_constant_chains(self):
        assert gelman_rubin([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]) == 1.0

    def test_burn_in_estimate(self):
        # A series that starts far from the truth and then settles at it: the
        # running mean needs ~450 samples before the bad prefix is diluted to
        # within 10% of the truth.
        series = [100.0] * 5 + [10.0] * 500
        burn_in = burn_in_estimate(series, truth=10.0, tolerance=0.1)
        assert 400 < burn_in < 500
        # A gentler prefix settles much sooner.
        gentle = [12.0] * 5 + [10.0] * 500
        assert burn_in_estimate(gentle, truth=10.0, tolerance=0.1) < 10
        assert burn_in_estimate([10.0] * 50, truth=10.0) == 0
        assert burn_in_estimate([100.0] * 50, truth=10.0) == 50

    def test_burn_in_empty(self):
        with pytest.raises(InsufficientSamplesError):
            burn_in_estimate([], truth=1.0)
