"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GraphAPI, InMemoryBackend, LRUCache, QueryBudget, QueryCache
from repro.estimation import AggregateQuery, reweighted_mean
from repro.graphs import Graph, undirected_from_edges
from repro.graphs.loaders import load_edge_list, save_edge_list
from repro.storage import dump_crawl, load_crawl, load_snapshot, save_snapshot
from repro.metrics import (
    Distribution,
    empirical_distribution,
    l2_distance,
    symmetric_kl_divergence,
    total_variation_distance,
)
from repro.types import Sample
from repro.walks import CirculatedNeighborsRandomWalk, EdgeHistory, SimpleRandomWalk
from repro.walks.grouping import HashGrouping

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=30)

#: Warehouse ids stress the canonical-JSON key encoding: negative ints,
#: unicode strings, the empty string, and the ``5`` vs ``"5"`` collision.
warehouse_ids = st.one_of(
    st.integers(min_value=-5, max_value=12),
    st.sampled_from(["", "5", "α", "node/δ", "naïve", "☃"]),
)


@st.composite
def edge_lists(draw, min_edges=1, max_edges=60):
    """Random simple-graph edge lists (self-loops filtered out)."""
    pairs = draw(
        st.lists(st.tuples(node_ids, node_ids), min_size=min_edges, max_size=max_edges)
    )
    return [(u, v) for u, v in pairs if u != v]


@st.composite
def connected_graphs(draw, max_extra_edges=40):
    """Connected simple graphs built from a random spanning path plus extras."""
    size = draw(st.integers(min_value=2, max_value=15))
    nodes = list(range(size))
    permutation = draw(st.permutations(nodes))
    edges = list(zip(permutation, permutation[1:]))
    extra = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            max_size=max_extra_edges,
        )
    )
    edges.extend((u, v) for u, v in extra if u != v)
    return undirected_from_edges(edges, name="hypothesis")


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------


class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, edges):
        graph = undirected_from_edges(edges)
        assert sum(graph.degrees().values()) == 2 * graph.number_of_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_neighbor_symmetry(self, edges):
        graph = undirected_from_edges(edges)
        for node in graph.nodes():
            for neighbor in graph.neighbors(node):
                assert node in graph.neighbors(neighbor)

    @given(edge_lists(min_edges=1))
    @settings(max_examples=60, deadline=None)
    def test_stationary_distribution_sums_to_one(self, edges):
        graph = undirected_from_edges(edges)
        if graph.number_of_edges == 0:
            return
        pi = graph.stationary_distribution()
        assert abs(sum(pi.values()) - 1.0) < 1e-9
        assert all(value >= 0 for value in pi.values())

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_components_partition_nodes(self, graph):
        components = graph.connected_components()
        all_nodes = [node for component in components for node in component]
        assert sorted(all_nodes, key=repr) == sorted(graph.nodes(), key=repr)
        assert len(components) == 1  # the strategy builds connected graphs

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, edges):
        graph = undirected_from_edges(edges)
        clone = graph.copy()
        assert set(map(frozenset, clone.edges())) == set(map(frozenset, graph.edges()))
        assert clone.degrees() == graph.degrees()


# ---------------------------------------------------------------------------
# Walk invariants
# ---------------------------------------------------------------------------


class TestWalkProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_walk_path_follows_edges(self, graph, seed):
        api = GraphAPI(graph)
        walk = SimpleRandomWalk(api, seed=seed)
        start = graph.nodes()[0]
        result = walk.run(start, max_steps=40)
        for u, v in zip(result.path, result.path[1:]):
            assert graph.has_edge(u, v)

    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_cnrw_unique_queries_equal_distinct_visits(self, graph, seed):
        api = GraphAPI(graph)
        walk = CirculatedNeighborsRandomWalk(api, seed=seed)
        start = graph.nodes()[0]
        result = walk.run(start, max_steps=60)
        assert result.unique_queries == len(set(result.path))

    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_cnrw_circulation_invariant(self, graph, seed):
        """No outgoing neighbor repeats within one circulation round of an edge."""
        walk = CirculatedNeighborsRandomWalk(GraphAPI(graph), seed=seed)
        result = walk.run(graph.nodes()[0], max_steps=120)
        path = result.path
        buckets = {}
        for i in range(1, len(path) - 1):
            key = (path[i - 1], path[i])
            bucket = buckets.setdefault(key, [])
            if len(bucket) == graph.degree(path[i]):
                bucket.clear()
            assert path[i + 1] not in bucket
            bucket.append(path[i + 1])

    @given(
        connected_graphs(),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=25),
    )
    @settings(max_examples=30, deadline=None)
    def test_budget_never_exceeded(self, graph, seed, budget):
        api = GraphAPI(graph, budget=QueryBudget(budget))
        walk = SimpleRandomWalk(api, seed=seed)
        result = walk.run(graph.nodes()[0], max_steps=500)
        assert result.unique_queries <= budget


# ---------------------------------------------------------------------------
# History bookkeeping invariants
# ---------------------------------------------------------------------------


class TestHistoryProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_edge_history_never_exceeds_neighbor_set(self, choices):
        neighbors = [0, 1, 2, 3, 4, 5]
        history = EdgeHistory()
        for choice in choices:
            remaining = history.remaining("u", "v", neighbors)
            assert set(remaining).issubset(set(neighbors))
            assert remaining  # never empty: the reset rule guarantees progress
            chosen = remaining[choice % len(remaining)]
            history.record("u", "v", chosen, neighbors)
            assert history.visited("u", "v").issubset(set(neighbors))

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=6, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_edge_history_covers_all_before_repeat(self, choices):
        """Within each consecutive block of k draws, all k neighbors appear."""
        neighbors = ["a", "b", "c"]
        history = EdgeHistory()
        drawn = []
        for choice in choices:
            remaining = history.remaining("u", "v", neighbors)
            chosen = remaining[choice % len(remaining)]
            history.record("u", "v", chosen, neighbors)
            drawn.append(chosen)
        for start in range(0, len(drawn) - len(neighbors) + 1, len(neighbors)):
            block = drawn[start: start + len(neighbors)]
            if len(block) == len(neighbors):
                assert set(block) == set(neighbors)


# ---------------------------------------------------------------------------
# Grouping invariants
# ---------------------------------------------------------------------------


class TestGroupingProperties:
    @given(
        st.lists(node_ids, min_size=1, max_size=40, unique=True),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_partition_is_disjoint_cover(self, neighbors, num_groups):
        graph = Graph()
        graph.add_nodes(neighbors)
        api = GraphAPI(graph) if neighbors else None
        grouping = HashGrouping(num_groups=num_groups)
        partition = grouping.partition(neighbors, api)
        flattened = [node for members in partition.values() for node in members]
        assert sorted(flattened) == sorted(neighbors)
        assert len(flattened) == len(set(flattened))
        assert set(partition).issubset(set(range(num_groups)))


# ---------------------------------------------------------------------------
# Estimator and metric invariants
# ---------------------------------------------------------------------------


class TestEstimatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50),
                st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_reweighted_mean_within_value_range(self, rows):
        samples = [
            Sample(node=index, degree=degree, attributes={"v": value})
            for index, (degree, value) in enumerate(rows)
        ]
        result = reweighted_mean(samples, AggregateQuery.average_attribute("v"))
        values = [value for _, value in rows]
        assert min(values) - 1e-6 <= result.value <= max(values) + 1e-6

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_empirical_distribution_normalised(self, visits):
        dist = empirical_distribution(visits)
        assert abs(sum(dist.as_dict().values()) - 1.0) < 1e-9

    @given(
        st.dictionaries(node_ids, st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20),
        st.dictionaries(node_ids, st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_divergences_non_negative_and_symmetric(self, p_weights, q_weights):
        p = Distribution(p_weights)
        q = Distribution(q_weights)
        assert symmetric_kl_divergence(p, q) >= -1e-9
        assert l2_distance(p, q) >= 0
        assert total_variation_distance(p, q) >= 0
        assert total_variation_distance(p, q) <= 1.0 + 1e-9
        assert l2_distance(p, q) == l2_distance(q, p)
        assert total_variation_distance(p, p) < 1e-9


# ---------------------------------------------------------------------------
# On-disk round trips (storage subsystem + edge-list I/O)
# ---------------------------------------------------------------------------
# hypothesis forbids reusing pytest's function-scoped tmp_path across
# examples, so each example makes (and cleans) its own temporary directory.


class TestStorageRoundTripProperties:
    @given(edge_lists(min_edges=1), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_snapshot_roundtrip_reproduces_exact_adjacency(self, edges, mmap):
        graph = undirected_from_edges(edges, name="prop")
        if graph.number_of_nodes == 0:
            return
        with tempfile.TemporaryDirectory() as tmp:
            backend = load_snapshot(save_snapshot(graph, Path(tmp) / "snap"), mmap=mmap)
            assert backend.node_ids() == graph.nodes()
            for node in graph.nodes():
                # from_graph preserves neighbor order, so the round trip is
                # exact — not merely set-equal.
                assert backend.fetch(node).neighbors == tuple(graph.neighbors(node))

    @given(edge_lists(min_edges=1))
    @settings(max_examples=25, deadline=None)
    def test_crawl_dump_roundtrip_reproduces_exact_records(self, edges):
        graph = undirected_from_edges(edges, name="prop")
        if graph.number_of_nodes == 0:
            return
        source = InMemoryBackend(graph)
        with tempfile.TemporaryDirectory() as tmp:
            path = dump_crawl(source, Path(tmp) / "crawl.jsonl", nodes=source.node_ids())
            replay = load_crawl(path)
            assert replay.node_ids() == source.node_ids()
            for node in source.node_ids():
                assert replay.fetch(node) == source.fetch(node)

    @given(
        st.lists(
            st.tuples(warehouse_ids, warehouse_ids), min_size=1, max_size=40
        ),
        st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_warehouse_ingest_export_roundtrip(self, pairs, partial):
        """dump -> ingest -> export -> dump is the identity, meta included.

        Ids mix negative ints with unicode (and colliding ``5`` vs ``"5"``)
        strings; the partial case crawls only half the nodes, so boundary
        ``meta`` lines must survive the warehouse round trip too.
        """
        import json

        from repro.warehouse import CrawlWarehouse

        edges = [(u, v) for u, v in pairs if u != v]
        graph = undirected_from_edges(edges, name="prop")
        if graph.number_of_nodes == 0:
            return
        graph.set_attributes(graph.nodes()[0], label="α✓", rank=1)
        source = InMemoryBackend(graph)
        nodes = source.node_ids()
        crawled = nodes[: max(1, len(nodes) // 2)] if partial else nodes
        with tempfile.TemporaryDirectory() as tmp:
            first = dump_crawl(source, Path(tmp) / "first.jsonl", nodes=crawled)
            with CrawlWarehouse.create(Path(tmp) / "wh.sqlite") as warehouse:
                warehouse.ingest(first)
                second = warehouse.export_dump(
                    Path(tmp) / "second.jsonl", name="prop"
                )
            original = first.read_text(encoding="utf-8").splitlines()
            exported = second.read_text(encoding="utf-8").splitlines()
            # Body lines (records + boundary meta) are byte-for-byte JSON
            # equal; only the header's crawl name may differ.
            assert list(map(json.loads, exported[1:])) == list(
                map(json.loads, original[1:])
            )
            replay = load_crawl(second)
            assert replay.node_ids() == crawled
            for node in crawled:
                assert replay.fetch(node) == source.fetch(node)

    @given(edge_lists(min_edges=1), st.booleans(), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_edge_list_roundtrip_reproduces_exact_adjacency(self, edges, compress, header):
        graph = undirected_from_edges(edges, name="prop")
        if graph.number_of_edges == 0:
            return  # isolated nodes are not representable in an edge list
        suffix = "edges.txt.gz" if compress else "edges.txt"
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / suffix
            save_edge_list(graph, path, header=header)
            loaded = load_edge_list(path)
            assert set(map(frozenset, loaded.edges())) == set(map(frozenset, graph.edges()))
            assert loaded.degrees() == graph.degrees()


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------


class TestRemoteWireProperties:
    """Serving any graph over HTTP round-trips it losslessly (satellite).

    Random graphs with non-identity ids (negative ints, unicode strings, the
    empty string) and unicode attribute values travel through
    ``serve -> HTTPGraphBackend`` with neighbors (order included) and
    attributes intact — no id type gets coerced, no string gets mangled.
    """

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_served_graph_round_trips_losslessly(self, data):
        from repro.api import HTTPGraphBackend
        from repro.server import serve_backend

        wire_ids = st.one_of(
            st.integers(min_value=-5, max_value=99),
            st.text(max_size=6),  # unicode included, "" included
        )
        size = data.draw(st.integers(min_value=2, max_value=7), label="size")
        ids = data.draw(
            st.lists(wire_ids, min_size=size, max_size=size, unique=True),
            label="ids",
        )
        edges = list(zip(ids, ids[1:]))
        extra = data.draw(
            st.lists(st.tuples(st.sampled_from(ids), st.sampled_from(ids)), max_size=8),
            label="extra",
        )
        edges.extend((u, v) for u, v in extra if u != v)
        graph = Graph(name="wire")
        graph.add_edges(edges)
        attributes = data.draw(
            st.dictionaries(
                st.sampled_from(ids),
                st.dictionaries(
                    st.text(min_size=1, max_size=5),
                    st.one_of(st.integers(), st.text(max_size=8)),
                    min_size=1,
                    max_size=3,
                ),
                max_size=3,
            ),
            label="attributes",
        )
        for node, node_attributes in attributes.items():
            graph.set_attributes(node, **node_attributes)

        backend = InMemoryBackend(graph)
        with serve_backend(backend) as server:
            with HTTPGraphBackend(server.url, timeout=5) as client:
                assert client.node_ids() == backend.node_ids()
                assert len(client) == len(backend)
                for node in backend.node_ids():
                    remote = client.fetch(node)
                    local = backend.fetch(node)
                    assert remote == local
                    assert [type(n) for n in remote.neighbors] == [
                        type(n) for n in local.neighbors
                    ]
                    assert client.metadata(node) == backend.metadata(node)
                    assert client.contains(node)
                assert client.fetch_many(backend.node_ids()) == backend.fetch_many(
                    backend.node_ids()
                )


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_unbounded_cache_is_a_dict(self, operations):
        cache = QueryCache()
        model = {}
        for key, value in operations:
            cache.put(key, value)
            model[key] = value
        for key, value in model.items():
            assert cache.peek(key) == value
        assert len(cache) == len(model)

    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_cache_never_exceeds_capacity(self, capacity, operations):
        cache = LRUCache(capacity)
        for key, value in operations:
            cache.put(key, value)
            assert len(cache) <= capacity
