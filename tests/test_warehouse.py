"""Tests for the crawl warehouse: ingest/merge semantics, WAL concurrency,
aggregate queries, exports and the CLI sub-commands.

The cross-backend guarantees (RawRecords, golden walks, QueryStats) live in
tests/test_backend_conformance.py, where ``warehouse`` is one of the
parametrized BACKEND_KINDS; this module covers what is *specific* to the
warehouse — the write side (dedupe, provenance, typed conflicts with full
rollback, boundary-metadata promotion), the SQL aggregate surface, lossless
exports, and the WAL concurrency model (many reader processes walking
bit-identically while an ingest appends).
"""

from __future__ import annotations

import json
import sqlite3
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.api import InMemoryBackend, build_api
from repro.exceptions import (
    IngestConflictError,
    NodeNotFoundError,
    StorageError,
    WarehouseError,
)
from repro.graphs import Graph, load_dataset
from repro.storage import dump_crawl, load_crawl, load_snapshot, save_snapshot
from repro.walks import make_walker
from repro.warehouse import (
    WAREHOUSE_FORMAT,
    WAREHOUSE_VERSION,
    CrawlWarehouse,
    WarehouseBackend,
    encode_node_key,
    is_warehouse_file,
)


@pytest.fixture()
def small_graph() -> Graph:
    return load_dataset("facebook_like", seed=7, scale=0.12)


@pytest.fixture()
def full_dump(small_graph, tmp_path) -> Path:
    backend = InMemoryBackend(small_graph)
    return dump_crawl(backend, tmp_path / "full.jsonl", nodes=backend.node_ids())


def _attr_graph() -> Graph:
    """A tiny graph with unicode string ids and attributes."""
    graph = Graph(name="attrs")
    graph.add_edges([("α", "β"), ("β", "γ"), ("γ", "α"), ("α", "δ")])
    graph.set_attributes("α", kind="hub", weight=2)
    graph.set_attributes("β", kind="leaf")
    graph.set_attributes("γ", kind="leaf")
    return graph


# ----------------------------------------------------------------------
# Store lifecycle and format validation
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_create_open_roundtrip(self, tmp_path):
        store = tmp_path / "wh.sqlite"
        warehouse = CrawlWarehouse.create(store, name="mystore")
        assert warehouse.name == "mystore"
        assert len(warehouse) == 0
        assert warehouse.crawl_count == 0
        warehouse.close()
        with CrawlWarehouse.open(store) as reopened:
            assert reopened.name == "mystore"
        assert is_warehouse_file(store)

    def test_create_refuses_existing_path(self, tmp_path):
        store = tmp_path / "wh.sqlite"
        CrawlWarehouse.create(store).close()
        with pytest.raises(WarehouseError, match="already exists"):
            CrawlWarehouse.create(store)

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(WarehouseError, match="no crawl warehouse"):
            CrawlWarehouse.open(tmp_path / "nowhere.sqlite")
        with pytest.raises(WarehouseError, match="no crawl warehouse"):
            WarehouseBackend(tmp_path / "nowhere.sqlite")

    def test_open_rejects_non_sqlite_file(self, tmp_path):
        bogus = tmp_path / "fake.sqlite"
        bogus.write_text("not a database\n")
        with pytest.raises(WarehouseError, match="SQLite"):
            CrawlWarehouse.open(bogus)
        with pytest.raises(WarehouseError, match="SQLite"):
            WarehouseBackend(bogus)
        assert not is_warehouse_file(bogus)

    def test_open_rejects_foreign_sqlite_database(self, tmp_path):
        foreign = tmp_path / "foreign.sqlite"
        conn = sqlite3.connect(str(foreign))
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(WarehouseError, match=WAREHOUSE_FORMAT):
            CrawlWarehouse.open(foreign)
        with pytest.raises(WarehouseError, match=WAREHOUSE_FORMAT):
            WarehouseBackend(foreign)

    def test_open_rejects_future_version(self, tmp_path):
        store = tmp_path / "wh.sqlite"
        CrawlWarehouse.create(store).close()
        conn = sqlite3.connect(str(store))
        conn.execute("UPDATE warehouse SET value='99' WHERE key='version'")
        conn.commit()
        conn.close()
        with pytest.raises(WarehouseError, match="version"):
            CrawlWarehouse.open(store)
        with pytest.raises(WarehouseError, match="version"):
            WarehouseBackend(store)

    def test_wal_pragmas_applied(self, tmp_path):
        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            mode = warehouse._conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"
            assert warehouse._conn.execute("PRAGMA foreign_keys").fetchone()[0] == 1
            assert warehouse._conn.execute("PRAGMA busy_timeout").fetchone()[0] == 30000

    def test_warehouse_error_is_storage_error(self):
        assert issubclass(WarehouseError, StorageError)
        assert issubclass(IngestConflictError, WarehouseError)

    def test_ingest_conflict_error_pickles(self):
        import pickle

        error = IngestConflictError(5, "details differ", source="a.jsonl")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.node == 5
        assert clone.detail == "details differ"
        assert clone.source == "a.jsonl"
        assert "details differ" in str(clone)


# ----------------------------------------------------------------------
# Ingestion: dedupe, provenance, conflicts, rollback
# ----------------------------------------------------------------------
class TestIngest:
    def test_ingest_full_dump_preserves_records_and_order(
        self, small_graph, full_dump, tmp_path
    ):
        reference = InMemoryBackend(small_graph)
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            report = warehouse.ingest(full_dump)
            assert report.crawl_id == 1
            assert report.kind == "dump"
            assert report.source == str(full_dump)
            assert report.records == len(reference)
            assert report.new_nodes == len(reference)
            assert report.duplicate_nodes == 0
            backend = warehouse.as_backend()
            try:
                # First-ingest order is the dump's record order, exactly.
                assert backend.node_ids() == reference.node_ids()
                for node in reference.node_ids():
                    assert backend.fetch(node) == reference.fetch(node)
            finally:
                backend.close()

    def test_overlapping_ingests_dedupe_with_provenance(
        self, small_graph, full_dump, tmp_path
    ):
        backend = InMemoryBackend(small_graph)
        half = backend.node_ids()[: len(backend) // 2]
        half_dump = dump_crawl(backend, tmp_path / "half.jsonl", nodes=half)
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            first = warehouse.ingest(half_dump, name="half crawl")
            second = warehouse.ingest(full_dump)
            assert first.name == "half crawl"
            assert second.duplicate_nodes == len(half)
            assert second.new_nodes == len(backend) - len(half)
            assert len(warehouse) == len(backend)
            log = warehouse.crawl_log()
            assert [entry.crawl_id for entry in log] == [1, 2]
            assert log[0] == first
            assert log[1] == second
            assert "duplicates=" in second.describe()

    def test_ingest_accepts_graphs_snapshots_and_warehouses(
        self, small_graph, tmp_path
    ):
        snap = save_snapshot(small_graph, tmp_path / "snap")
        with CrawlWarehouse.create(tmp_path / "a.sqlite") as first:
            report = first.ingest(str(snap))
            assert report.kind == "snapshot"
            # A warehouse is itself an ingestible source (kind by class name).
            with CrawlWarehouse.create(tmp_path / "b.sqlite") as second:
                copied = second.ingest(str(first.path))
                assert copied.kind == "WarehouseBackend"
                assert copied.new_nodes == len(first)
            direct = CrawlWarehouse.create(tmp_path / "c.sqlite")
            try:
                report = direct.ingest(small_graph)
                assert report.new_nodes == small_graph.number_of_nodes
            finally:
                direct.close()

    def test_ingest_rejects_unsupported_sources(self, tmp_path):
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            with pytest.raises(TypeError, match="Graph, GraphBackend"):
                warehouse.ingest(42)

    def test_conflicting_neighbors_roll_back_whole_crawl(self, tmp_path):
        base = Graph(name="base")
        base.add_edges([(0, 1), (1, 2)])
        rewired = Graph(name="rewired")
        rewired.add_edges([(0, 2), (2, 1), (0, 3)])  # node 0: different row
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(base)
            before = len(warehouse)
            with pytest.raises(IngestConflictError) as excinfo:
                warehouse.ingest(rewired)
            assert excinfo.value.node == 0
            # The whole conflicting crawl rolled back: no partial rows, no
            # provenance entry, identical store.
            assert len(warehouse) == before
            assert warehouse.crawl_count == 1
            assert 3 not in warehouse.as_backend().node_ids()

    def test_conflicting_attributes_raise(self, tmp_path):
        one = Graph(name="one")
        one.add_edges([("a", "b")])
        one.set_attributes("a", color="red")
        two = Graph(name="two")
        two.add_edges([("a", "b")])
        two.set_attributes("a", color="blue")
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(one)
            with pytest.raises(IngestConflictError, match="attributes"):
                warehouse.ingest(two)

    def test_boundary_metadata_promoted_on_later_fetch(self, tmp_path):
        graph = _attr_graph()
        backend = InMemoryBackend(graph)
        partial = dump_crawl(backend, tmp_path / "partial.jsonl", nodes=["α"])
        rest = dump_crawl(
            backend, tmp_path / "rest.jsonl", nodes=["β", "γ", "δ", "α"]
        )
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            first = warehouse.ingest(partial)
            # α's three neighbors were seen listed but never fetched.
            assert first.meta_records == 3
            served = warehouse.as_backend()
            try:
                assert served.metadata("β") == {
                    "degree": 2, "attributes": {"kind": "leaf"},
                }
                with pytest.raises(NodeNotFoundError):
                    served.fetch("β")
            finally:
                served.close()
            second = warehouse.ingest(rest)
            assert second.duplicate_nodes == 1  # α again, consistent
            assert second.new_nodes == 3
            assert warehouse.stats()["meta_records"] == 0  # all promoted
            served = warehouse.as_backend()
            try:
                assert served.fetch("β") == backend.fetch("β")
            finally:
                served.close()

    def test_boundary_degree_conflict_raises(self, tmp_path):
        graph = _attr_graph()
        backend = InMemoryBackend(graph)
        partial = dump_crawl(backend, tmp_path / "partial.jsonl", nodes=["α"])
        liar = Graph(name="liar")  # β with a degree the metadata contradicts
        liar.add_edges([("β", "x"), ("β", "y"), ("β", "z")])
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(partial)
            with pytest.raises(IngestConflictError, match="degree"):
                warehouse.ingest(liar)
            assert warehouse.crawl_count == 1

    def test_ingest_rejects_ids_json_would_degrade(self, tmp_path):
        tuples = Graph(name="tuples")
        tuples.add_edges([(("a", 1), ("b", 2))])
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            with pytest.raises(WarehouseError, match="JSON round trip"):
                warehouse.ingest(tuples)
            assert len(warehouse) == 0
            assert warehouse.crawl_count == 0

    def test_int_and_string_ids_stay_distinct(self, tmp_path):
        graph = Graph(name="mixed")
        graph.add_edges([(5, "5"), ("5", "six")])
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(graph)
            served = warehouse.as_backend()
            try:
                assert served.fetch(5).neighbors == ("5",)
                assert set(served.fetch("5").neighbors) == {5, "six"}
                assert encode_node_key(5) != encode_node_key("5")
            finally:
                served.close()


# ----------------------------------------------------------------------
# Aggregate query surface
# ----------------------------------------------------------------------
class TestAggregates:
    def test_degree_histogram_matches_ground_truth(
        self, small_graph, full_dump, tmp_path
    ):
        from collections import Counter

        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(full_dump)
            truth = Counter(
                small_graph.degree(node) for node in small_graph.nodes()
            )
            assert warehouse.degree_histogram() == sorted(truth.items())

    def test_attribute_counts(self, tmp_path):
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(_attr_graph())
            assert warehouse.attribute_counts("kind") == {"hub": 1, "leaf": 2}
            assert warehouse.attribute_counts("weight") == {2: 1}
            assert warehouse.attribute_counts("missing") == {}

    def test_stats_summary(self, small_graph, full_dump, tmp_path):
        with CrawlWarehouse.create(tmp_path / "wh.sqlite", name="st") as warehouse:
            warehouse.ingest(full_dump)
            stats = warehouse.stats()
            assert stats["name"] == "st"
            assert stats["nodes"] == small_graph.number_of_nodes
            assert stats["edge_rows"] == 2 * small_graph.number_of_edges
            assert stats["crawls"] == 1
            truth = sum(
                small_graph.degree(node) for node in small_graph.nodes()
            ) / small_graph.number_of_nodes
            assert stats["average_degree"] == pytest.approx(truth)
            assert stats["max_degree"] == max(
                small_graph.degree(node) for node in small_graph.nodes()
            )

    def test_empty_store_aggregates(self, tmp_path):
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            assert warehouse.degree_histogram() == []
            assert warehouse.stats()["average_degree"] == 0.0
            assert warehouse.crawl_log() == []


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
class TestExport:
    def test_export_dump_reproduces_original(self, full_dump, tmp_path):
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(full_dump)
            exported = warehouse.export_dump(tmp_path / "out.jsonl")
        original = [
            json.loads(line)
            for line in full_dump.read_text(encoding="utf-8").splitlines()
        ][1:]
        roundtrip = [
            json.loads(line)
            for line in exported.read_text(encoding="utf-8").splitlines()
        ][1:]
        assert roundtrip == original

    def test_export_dump_carries_boundary_meta(self, tmp_path):
        backend = InMemoryBackend(_attr_graph())
        partial = dump_crawl(backend, tmp_path / "partial.jsonl", nodes=["α"])
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(partial)
            exported = warehouse.export_dump(tmp_path / "out.jsonl")
        replay = load_crawl(exported)
        assert replay.node_ids() == ["α"]
        assert replay.fetch("α") == backend.fetch("α")
        assert replay.metadata("β") == backend.metadata("β")

    def test_export_snapshot_roundtrip(self, small_graph, full_dump, tmp_path):
        reference = InMemoryBackend(small_graph)
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(full_dump)
            directory = warehouse.export_snapshot(tmp_path / "snap")
        loaded = load_snapshot(directory)
        assert loaded.node_ids() == reference.node_ids()
        for node in reference.node_ids():
            assert loaded.fetch(node) == reference.fetch(node)

    def test_export_snapshot_refuses_partial_store(self, tmp_path):
        backend = InMemoryBackend(_attr_graph())
        partial = dump_crawl(backend, tmp_path / "partial.jsonl", nodes=["α"])
        with CrawlWarehouse.create(tmp_path / "wh.sqlite") as warehouse:
            warehouse.ingest(partial)
            with pytest.raises(WarehouseError, match="never fetched"):
                warehouse.export_snapshot(tmp_path / "snap")


# ----------------------------------------------------------------------
# WAL concurrency: many readers, one writer
# ----------------------------------------------------------------------
def _walk_fingerprint(store_path, start, budget, seed):
    """Open the warehouse in this process and fingerprint a golden walk."""
    backend = WarehouseBackend(store_path)
    try:
        api = build_api(backend, budget=budget)
        result = make_walker("cnrw", api=api, seed=seed).run(start, max_steps=None)
        return (tuple(result.path), result.unique_queries, result.total_queries)
    finally:
        backend.close()


class TestConcurrency:
    def test_reader_processes_walk_bit_identically_during_ingest(
        self, small_graph, full_dump, tmp_path
    ):
        """N reader processes fingerprint one walk while an ingest appends.

        The store is append-only, so records ingested before the readers
        started can never change under them: every process must produce the
        exact fingerprint of a quiet in-process run, even though a second
        crawl (disjoint ids) commits mid-walk.
        """
        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            warehouse.ingest(full_dump)
            start = small_graph.nodes()[0]
            expected = _walk_fingerprint(store, start, 60, 7)

            extra = Graph(name="extra")
            extra.add_edges(
                [(f"x{i}", f"x{i + 1}") for i in range(200)]
            )
            with ProcessPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(_walk_fingerprint, store, start, 60, 7)
                    for _ in range(4)
                ]
                report = warehouse.ingest(extra)  # writer runs alongside
                results = [future.result(timeout=120) for future in futures]
            assert report.new_nodes == 201
            assert results == [expected] * 4
            # And after the commit, readers see the merged store.
            served = warehouse.as_backend()
            try:
                assert len(served) == len(small_graph.nodes()) + 201
                assert served.fetch("x0").neighbors == ("x1",)
            finally:
                served.close()

    def test_backend_pickles_to_path(self, full_dump, tmp_path):
        import pickle

        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            warehouse.ingest(full_dump)
        backend = WarehouseBackend(store)
        try:
            clone = pickle.loads(pickle.dumps(backend))
            try:
                assert clone.path == backend.path
                assert clone.node_ids() == backend.node_ids()
            finally:
                clone.close()
        finally:
            backend.close()

    def test_threaded_readers_share_backend(self, full_dump, tmp_path):
        import threading

        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            warehouse.ingest(full_dump)
        backend = WarehouseBackend(store)
        reference = backend.node_ids()
        failures = []

        def scan():
            try:
                for node in reference[:20]:
                    backend.fetch(node)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=scan) for _ in range(6)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            backend.close()
        assert failures == []

    def test_reader_connection_cannot_write(self, full_dump, tmp_path):
        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            warehouse.ingest(full_dump)
        backend = WarehouseBackend(store)
        try:
            with pytest.raises(sqlite3.OperationalError):
                backend._conn().execute("DELETE FROM nodes")
        finally:
            backend.close()

    def test_closed_backend_refuses_new_connections(self, full_dump, tmp_path):
        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            warehouse.ingest(full_dump)
        backend = WarehouseBackend(store)
        backend.close()
        with pytest.raises(WarehouseError, match="closed"):
            backend.fetch(0)

    def test_warehouse_serves_over_http(self, full_dump, tmp_path, graph_server):
        """A warehouse behind the thread-per-connection graph service."""
        from repro.api import HTTPGraphBackend

        store = tmp_path / "wh.sqlite"
        with CrawlWarehouse.create(store) as warehouse:
            warehouse.ingest(full_dump)
        backend = WarehouseBackend(store)
        server = graph_server(backend)
        with HTTPGraphBackend(server.url) as client:
            assert len(client) == len(backend)
            node = backend.node_ids()[0]
            assert client.fetch(node) == backend.fetch(node)
            assert client.fetch_many([node]) == [backend.fetch(node)]


# ----------------------------------------------------------------------
# CLI sub-commands
# ----------------------------------------------------------------------
class TestWarehouseCli:
    def test_ingest_stats_export_flow(self, small_graph, full_dump, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "wh.sqlite"
        backend = InMemoryBackend(small_graph)
        half = dump_crawl(
            backend, tmp_path / "half.jsonl",
            nodes=backend.node_ids()[: len(backend) // 2],
        )
        assert main([
            "warehouse", "ingest", "--store", str(store), "--name", "cli",
            str(full_dump), str(half),
        ]) == 0
        out = capsys.readouterr().out
        assert "crawl 1:" in out
        assert "crawl 2:" in out
        assert f"duplicates={len(backend) // 2}" in out

        assert main(["warehouse", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "warehouse cli" in out
        assert f"nodes:            {len(backend)}" in out
        assert "crawl 2:" in out

        exported = tmp_path / "merged.jsonl"
        assert main([
            "warehouse", "export", "--store", str(store), "--out", str(exported),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        replay = load_crawl(exported)
        assert replay.node_ids() == backend.node_ids()

        snap = tmp_path / "snap"
        assert main([
            "warehouse", "export", "--store", str(store), "--out", str(snap),
            "--format", "snapshot",
        ]) == 0
        capsys.readouterr()
        assert load_snapshot(snap).node_ids() == backend.node_ids()

    def test_walk_source_accepts_warehouse(self, full_dump, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "wh.sqlite"
        assert main([
            "warehouse", "ingest", "--store", str(store), str(full_dump),
        ]) == 0
        capsys.readouterr()
        assert main([
            "walk", "--source", str(store), "--walker", "cnrw",
            "--budget", "50", "--start", "0", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "warehouse:wh" in out
        assert "Estimated average degree" in out

    def test_cli_reports_friendly_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "warehouse", "stats", "--store", str(tmp_path / "none.sqlite"),
        ]) == 2
        assert "error:" in capsys.readouterr().err
        store = tmp_path / "wh.sqlite"
        CrawlWarehouse.create(store).close()
        assert main([
            "warehouse", "ingest", "--store", str(store), "--name", "late",
            str(tmp_path / "whatever.jsonl"),
        ]) == 2
        assert "--name only applies" in capsys.readouterr().err
        # A conflicting ingest surfaces the typed conflict as a CLI error.
        one = tmp_path / "one.jsonl"
        two = tmp_path / "two.jsonl"
        a = Graph(name="a")
        a.add_edges([(0, 1)])
        b = Graph(name="b")
        b.add_edges([(0, 1), (0, 2)])
        dump_crawl(InMemoryBackend(a), one, nodes=[0, 1])
        dump_crawl(InMemoryBackend(b), two, nodes=[0, 1, 2])
        assert main(["warehouse", "ingest", "--store", str(store), str(one)]) == 0
        capsys.readouterr()
        assert main(["warehouse", "ingest", "--store", str(store), str(two)]) == 2
        assert "conflict" in capsys.readouterr().err

    def test_list_mentions_warehouse(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "warehouse" in capsys.readouterr().out
