"""Unit tests for experiment configuration, runner, results and reporting."""

from __future__ import annotations

import pytest

from repro.estimation import AggregateQuery
from repro.exceptions import InvalidConfigurationError
from repro.experiments import (
    CostSweepConfig,
    DistributionStudyConfig,
    ExperimentReport,
    ResultTable,
    Series,
    SizeSweepConfig,
    WalkerSpec,
    escape_probability_study,
    markdown_table,
    render_comparison,
    render_dataset_summaries,
    render_report,
    render_result_table,
    render_table,
    report_to_markdown,
    run_cost_sweep,
    run_distribution_study,
    run_single_trial,
    run_size_sweep,
)
from repro.graphs import barbell_graph, load_dataset, summarize


@pytest.fixture(scope="module")
def tiny_graph():
    return load_dataset("facebook_like", seed=3, scale=0.1)


class TestWalkerSpec:
    def test_display_label(self):
        assert WalkerSpec.make("srw").display_label == "SRW"
        assert WalkerSpec.make("srw", label="Simple").display_label == "Simple"

    def test_options_dict(self):
        spec = WalkerSpec.make("gnrw_by_attribute", group_attribute="age", bin_width=5.0)
        assert spec.options_dict() == {"group_attribute": "age", "bin_width": 5.0}

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            WalkerSpec(name="")

    def test_specs_are_hashable(self):
        assert len({WalkerSpec.make("srw"), WalkerSpec.make("srw")}) == 1


class TestConfigValidation:
    def test_cost_sweep_validation(self):
        query = AggregateQuery.average_degree()
        walkers = (WalkerSpec.make("srw"),)
        with pytest.raises(InvalidConfigurationError):
            CostSweepConfig(walkers=(), query=query, budgets=(10,))
        with pytest.raises(InvalidConfigurationError):
            CostSweepConfig(walkers=walkers, query=query, budgets=())
        with pytest.raises(InvalidConfigurationError):
            CostSweepConfig(walkers=walkers, query=query, budgets=(1,))
        with pytest.raises(InvalidConfigurationError):
            CostSweepConfig(walkers=walkers, query=query, budgets=(10,), trials=0)
        with pytest.raises(InvalidConfigurationError):
            CostSweepConfig(walkers=walkers, query=query, budgets=(10,), burn_in=-1)
        with pytest.raises(InvalidConfigurationError):
            CostSweepConfig(walkers=walkers, query=query, budgets=(10,), thinning=0)

    def test_distribution_study_validation(self):
        walkers = (WalkerSpec.make("srw"),)
        with pytest.raises(InvalidConfigurationError):
            DistributionStudyConfig(walkers=(), num_walks=1, steps=10)
        with pytest.raises(InvalidConfigurationError):
            DistributionStudyConfig(walkers=walkers, num_walks=0)
        with pytest.raises(InvalidConfigurationError):
            DistributionStudyConfig(walkers=walkers, steps=0)

    def test_size_sweep_validation(self):
        query = AggregateQuery.average_degree()
        walkers = (WalkerSpec.make("srw"),)
        with pytest.raises(InvalidConfigurationError):
            SizeSweepConfig(walkers=walkers, query=query, sizes=(), budget=10)
        with pytest.raises(InvalidConfigurationError):
            SizeSweepConfig(walkers=walkers, query=query, sizes=(5,), budget=1)
        with pytest.raises(InvalidConfigurationError):
            SizeSweepConfig(walkers=walkers, query=query, sizes=(5,), budget=10, trials=0)


class TestSeriesAndTables:
    def test_series_basics(self):
        series = Series(label="x")
        series.add_point(1, 2.0)
        series.add_point(2, 4.0)
        assert len(series) == 2
        assert series.as_dict() == {1.0: 2.0, 2.0: 4.0}
        assert series.final_value() == 4.0
        assert series.mean_value() == 3.0

    def test_empty_series_errors(self):
        with pytest.raises(ValueError):
            Series(label="x").final_value()
        with pytest.raises(ValueError):
            Series(label="x").mean_value()

    def test_result_table_points_and_rows(self):
        table = ResultTable(title="t", x_label="cost", y_label="error")
        table.add_point("SRW", 10, 0.5)
        table.add_point("SRW", 20, 0.4)
        table.add_point("CNRW", 10, 0.3)
        assert table.labels() == ["SRW", "CNRW"]
        assert table.x_values() == [10.0, 20.0]
        rows = table.rows()
        assert {"series": "CNRW", "cost": 10.0, "error": 0.3} in rows
        wide = table.to_wide_rows()
        assert wide[0] == ["cost", "SRW", "CNRW"]
        assert wide[1] == [10.0, 0.5, 0.3]
        assert wide[2] == [20.0, 0.4, ""]

    def test_dominates(self):
        table = ResultTable(title="t")
        table.add_point("SRW", 1, 0.5)
        table.add_point("CNRW", 1, 0.3)
        assert table.dominates("CNRW", "SRW")
        assert not table.dominates("SRW", "CNRW")
        assert table.dominates("SRW", "CNRW", tolerance=1.0)

    def test_csv_export(self, tmp_path):
        table = ResultTable(title="t", x_label="cost", y_label="error")
        table.add_point("SRW", 10, 0.5)
        path = tmp_path / "out.csv"
        text = table.to_csv(path)
        assert "SRW" in text
        assert path.read_text().startswith("series,cost,error")

    def test_experiment_report(self, tmp_path):
        report = ExperimentReport(name="demo")
        table = ResultTable(title="t")
        table.add_point("SRW", 1, 1.0)
        report.add_table("main", table)
        assert report.keys() == ["main"]
        assert report.get("main") is table
        paths = report.to_csv_files(tmp_path)
        assert len(paths) == 1
        assert paths[0].exists()


class TestRunner:
    def test_run_single_trial(self, tiny_graph):
        outcome = run_single_trial(
            tiny_graph, WalkerSpec.make("cnrw"), AggregateQuery.average_degree(), budget=40, seed=1
        )
        assert outcome["unique_queries"] <= 40
        assert outcome["estimate"] is not None
        assert len(outcome["path"]) >= 1

    def test_run_single_trial_reproducible(self, tiny_graph):
        a = run_single_trial(tiny_graph, WalkerSpec.make("srw"), AggregateQuery.average_degree(), 30, seed=9)
        b = run_single_trial(tiny_graph, WalkerSpec.make("srw"), AggregateQuery.average_degree(), 30, seed=9)
        assert a["path"] == b["path"]
        assert a["estimate"] == b["estimate"]

    def test_pick_start_node_survives_isolated_majority(self):
        """A graph dominated by isolated nodes must never spuriously fail."""
        from repro.experiments.runner import _pick_start_node
        from repro.graphs import Graph

        graph = Graph(name="mostly-isolated")
        graph.add_edge(0, 1)
        for node in range(2, 60):
            graph.add_node(node)
        # With-replacement sampling could retry isolated nodes len(nodes)
        # times and raise; the permutation scan always finds the one edge.
        for seed in range(25):
            assert _pick_start_node(graph, seed) in (0, 1)

    def test_pick_start_node_all_isolated_raises(self):
        from repro.exceptions import InsufficientSamplesError
        from repro.experiments.runner import _pick_start_node
        from repro.graphs import Graph

        graph = Graph(name="isolated")
        for node in range(5):
            graph.add_node(node)
        with pytest.raises(InsufficientSamplesError):
            _pick_start_node(graph, 0)

    def test_walk_tasks_parallel_matches_sequential(self, tiny_graph):
        """Process-pool fan-out is bit-identical to in-process execution."""
        from repro.experiments import WalkTask, run_walk_tasks

        tasks = [
            WalkTask(spec=WalkerSpec.make("cnrw"), seed=seed, budget=25)
            for seed in range(6)
        ]
        sequential = run_walk_tasks(tasks, jobs=1, graph=tiny_graph)
        parallel = run_walk_tasks(tasks, jobs=2, graph=tiny_graph)
        assert [r.path for r in sequential] == [r.path for r in parallel]
        assert [r.unique_queries for r in sequential] == [r.unique_queries for r in parallel]

    def test_cost_sweep_jobs_reproducible(self, tiny_graph):
        config = CostSweepConfig(
            walkers=(WalkerSpec.make("srw"), WalkerSpec.make("cnrw")),
            query=AggregateQuery.average_degree(),
            budgets=(20, 40),
            trials=3,
            seed=11,
        )
        seq = run_cost_sweep(tiny_graph, config, jobs=1)
        par = run_cost_sweep(tiny_graph, config, jobs=2)
        seq_table = seq.tables["relative_error"]
        par_table = par.tables["relative_error"]
        assert {k: (s.x, s.y) for k, s in seq_table.series.items()} == {
            k: (s.x, s.y) for k, s in par_table.series.items()
        }

    def test_distribution_study_jobs_reproducible(self, tiny_graph):
        config = DistributionStudyConfig(
            walkers=(WalkerSpec.make("srw"),), num_walks=4, steps=40, seed=2
        )
        seq = run_distribution_study(tiny_graph, config, jobs=1)
        par = run_distribution_study(tiny_graph, config, jobs=2)
        seq_table = seq.tables["divergence"]
        par_table = par.tables["divergence"]
        assert {k: (s.x, s.y) for k, s in seq_table.series.items()} == {
            k: (s.x, s.y) for k, s in par_table.series.items()
        }

    def test_invalid_jobs_rejected(self, tiny_graph):
        from repro.experiments import WalkTask, run_walk_tasks

        tasks = [WalkTask(spec=WalkerSpec.make("srw"), seed=0, budget=10)]
        with pytest.raises(ValueError):
            run_walk_tasks(tasks, jobs=0, graph=tiny_graph)

    def test_cost_sweep_structure(self, tiny_graph):
        config = CostSweepConfig(
            walkers=(WalkerSpec.make("srw"), WalkerSpec.make("cnrw")),
            query=AggregateQuery.average_degree(),
            budgets=(20, 40),
            trials=3,
            seed=0,
            compute_divergences=True,
        )
        report = run_cost_sweep(tiny_graph, config, title="unit sweep")
        assert set(report.keys()) == {"relative_error", "kl_divergence", "l2_distance"}
        error_table = report.get("relative_error")
        assert set(error_table.labels()) == {"SRW", "CNRW"}
        assert error_table.x_values() == [20.0, 40.0]
        assert all(y >= 0 for series in error_table.series.values() for y in series.y)
        assert report.metadata["trials"] == 3

    def test_cost_sweep_without_divergences(self, tiny_graph):
        config = CostSweepConfig(
            walkers=(WalkerSpec.make("srw"),),
            query=AggregateQuery.average_degree(),
            budgets=(20,),
            trials=2,
            seed=0,
        )
        report = run_cost_sweep(tiny_graph, config)
        assert report.keys() == ["relative_error"]

    def test_mhrw_uses_uniform_estimator(self, tiny_graph):
        config = CostSweepConfig(
            walkers=(WalkerSpec.make("mhrw", uniform_samples=True),),
            query=AggregateQuery.average_degree(),
            budgets=(30,),
            trials=2,
            seed=0,
        )
        report = run_cost_sweep(tiny_graph, config)
        assert "MHRW" in report.get("relative_error").labels()

    def test_distribution_study(self, tiny_graph):
        config = DistributionStudyConfig(
            walkers=(WalkerSpec.make("srw"), WalkerSpec.make("cnrw")),
            num_walks=3,
            steps=150,
            seed=0,
        )
        report = run_distribution_study(tiny_graph, config)
        table = report.get("distribution")
        assert "Theoretical" in table.labels()
        assert "SRW" in table.labels()
        # Each series has one probability per node and sums to ~1.
        for label in table.labels():
            series = table.get(label)
            assert len(series) == tiny_graph.number_of_nodes
            assert sum(series.y) == pytest.approx(1.0, abs=1e-6)
        assert "divergence" in report.keys()

    def test_size_sweep(self):
        config = SizeSweepConfig(
            walkers=(WalkerSpec.make("srw"), WalkerSpec.make("cnrw")),
            query=AggregateQuery.average_degree(),
            sizes=(4, 6),
            budget=16,
            trials=3,
            seed=0,
        )
        report = run_size_sweep(lambda size: barbell_graph(size), config)
        error_table = report.get("relative_error")
        assert error_table.x_values() == [4.0, 6.0]
        assert set(error_table.labels()) == {"SRW", "CNRW"}
        assert "kl_divergence" in report.keys()

    def test_escape_probability_study(self):
        report = escape_probability_study(
            clique_sizes=(5,),
            walkers=(WalkerSpec.make("srw"), WalkerSpec.make("cnrw")),
            steps=40,
            trials=10,
            seed=0,
        )
        table = report.get("crossing_probability")
        for label in ("SRW", "CNRW"):
            for value in table.get(label).y:
                assert 0.0 <= value <= 1.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table([["a", "b"], [1, 2.34567], [10, 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.346" in text

    def test_render_result_table_and_report(self, tiny_graph):
        table = ResultTable(title="demo", x_label="cost", y_label="error")
        table.add_point("SRW", 10, 0.123456)
        rendered = render_result_table(table)
        assert "demo" in rendered
        assert "SRW" in rendered
        report = ExperimentReport(name="r", metadata={"graph": "g"})
        report.add_table("main", table)
        full = render_report(report)
        assert "=== r ===" in full
        assert "graph=g" in full

    def test_render_dataset_summaries(self):
        summaries = [summarize(barbell_graph(4))]
        text = render_dataset_summaries(summaries)
        assert "dataset" in text
        assert "barbell-4" in text

    def test_render_comparison(self):
        table = ResultTable(title="t")
        table.add_point("SRW", 1, 0.4)
        table.add_point("CNRW", 1, 0.2)
        text = render_comparison(table, baseline="SRW", challengers=["CNRW", "MISSING"])
        assert "CNRW vs SRW" in text
        assert "50.0%" in text
        assert "MISSING" not in text

    def test_markdown_rendering(self):
        table = ResultTable(title="t", x_label="cost", y_label="error")
        table.add_point("SRW", 10, 0.5)
        report = ExperimentReport(name="md", metadata={"k": 1})
        report.add_table("main", table)
        markdown = report_to_markdown(report)
        assert markdown.startswith("### md")
        assert "| cost | SRW |" in markdown
        assert markdown_table([]) == ""
        assert render_table([]) == ""

    def test_format_number(self):
        from repro.experiments.reporting import format_number

        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(0.123456) == "0.1235"
        assert format_number(True) == "True"
        assert format_number("text") == "text"
