"""Unit tests for aggregate query specifications and ground truth."""

from __future__ import annotations

import pytest

from repro.estimation import DEGREE, AggregateKind, AggregateQuery, ground_truth, ground_truth_table
from repro.estimation.ground_truth import average_attribute, average_degree
from repro.exceptions import EmptyGraphError, InvalidConfigurationError
from repro.graphs import Graph, complete_graph


class TestAggregateQuery:
    def test_average_degree_constructor(self):
        query = AggregateQuery.average_degree()
        assert query.kind is AggregateKind.AVERAGE
        assert query.measure == DEGREE
        assert query.label == "average degree"

    def test_average_attribute_constructor(self):
        query = AggregateQuery.average_attribute("age")
        assert query.measure == "age"
        assert "age" in query.label

    def test_sum_count_proportion_constructors(self):
        assert AggregateQuery.sum_attribute("x").kind is AggregateKind.SUM
        assert AggregateQuery.count().kind is AggregateKind.COUNT
        assert AggregateQuery.proportion(lambda n, a: True).kind is AggregateKind.PROPORTION

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            AggregateQuery(kind=AggregateKind.AVERAGE, measure=None)
        with pytest.raises(InvalidConfigurationError):
            AggregateQuery(kind=AggregateKind.SUM, measure=None)
        with pytest.raises(InvalidConfigurationError):
            AggregateQuery(kind=AggregateKind.PROPORTION)

    def test_matches(self):
        query = AggregateQuery.proportion(lambda node, attrs: attrs.get("city") == "austin")
        assert query.matches(0, {"city": "austin"})
        assert not query.matches(0, {"city": "dallas"})
        unfiltered = AggregateQuery.average_degree()
        assert unfiltered.matches(0, {})

    def test_measure_value(self):
        query = AggregateQuery.average_attribute("age")
        assert query.measure_value(0, {"age": 33}, degree=5) == 33.0
        assert query.measure_value(0, {}, degree=5) == 0.0
        assert query.measure_value(0, {"age": "bad"}, degree=5) == 0.0
        degree_query = AggregateQuery.average_degree()
        assert degree_query.measure_value(0, {}, degree=7) == 7.0
        count_query = AggregateQuery.count()
        assert count_query.measure_value(0, {}, degree=7) == 1.0

    def test_default_label(self):
        query = AggregateQuery(
            kind=AggregateKind.AVERAGE, measure="age", predicate=lambda n, a: True
        )
        assert query.label == "average(age) (filtered)"


class TestGroundTruth:
    def test_average_degree(self, attributed_graph):
        expected = attributed_graph.average_degree()
        assert ground_truth(attributed_graph, AggregateQuery.average_degree()) == pytest.approx(expected)
        assert average_degree(attributed_graph) == pytest.approx(expected)

    def test_average_attribute(self, attributed_graph):
        assert average_attribute(attributed_graph, "age") == pytest.approx(30.0)

    def test_sum(self, attributed_graph):
        assert ground_truth(attributed_graph, AggregateQuery.sum_attribute("age")) == pytest.approx(150.0)

    def test_count_and_proportion(self, attributed_graph):
        is_austin = lambda node, attrs: attrs.get("city") == "austin"  # noqa: E731
        assert ground_truth(attributed_graph, AggregateQuery.count(is_austin)) == 2
        assert ground_truth(attributed_graph, AggregateQuery.proportion(is_austin)) == pytest.approx(0.4)

    def test_conditional_average(self, attributed_graph):
        query = AggregateQuery(
            kind=AggregateKind.AVERAGE,
            measure="age",
            predicate=lambda node, attrs: attrs.get("city") == "dallas",
        )
        assert ground_truth(attributed_graph, query) == pytest.approx(32.5)

    def test_empty_graph(self):
        with pytest.raises(EmptyGraphError):
            ground_truth(Graph(), AggregateQuery.average_degree())

    def test_filter_matches_nothing(self, attributed_graph):
        query = AggregateQuery(
            kind=AggregateKind.AVERAGE, measure="age", predicate=lambda n, a: False
        )
        with pytest.raises(EmptyGraphError):
            ground_truth(attributed_graph, query)

    def test_ground_truth_table(self, attributed_graph):
        table = ground_truth_table(
            attributed_graph,
            [AggregateQuery.average_degree(), AggregateQuery.average_attribute("age")],
        )
        assert set(table) == {"average degree", "average age"}

    def test_clique_degree(self):
        assert average_degree(complete_graph(10)) == pytest.approx(9.0)
