"""Unit tests for the sample-based aggregate estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation import (
    AggregateKind,
    AggregateQuery,
    RunningEstimator,
    estimate,
    reweighted_mean,
    uniform_mean,
)
from repro.exceptions import InsufficientSamplesError, InvalidConfigurationError
from repro.types import Sample


def make_samples(spec):
    """Build Sample objects from (node, degree, attrs) triples."""
    return [Sample(node=node, degree=degree, attributes=attrs) for node, degree, attrs in spec]


class TestReweightedMean:
    def test_corrects_degree_bias_exactly(self):
        """If each node appears proportionally to its degree, the reweighted
        mean recovers the plain population mean exactly."""
        population = {1: (2, 10.0), 2: (4, 20.0), 3: (6, 30.0)}  # node: (degree, value)
        spec = []
        for node, (degree, value) in population.items():
            spec.extend([(node, degree, {"v": value})] * degree)
        samples = make_samples(spec)
        result = reweighted_mean(samples, AggregateQuery.average_attribute("v"))
        assert result.value == pytest.approx(20.0)
        assert result.sample_size == len(samples)

    def test_average_degree_estimator(self):
        # Degree-proportional sampling of degrees: E[deg] under pi is
        # sum(deg^2)/sum(deg); the reweighted estimator must instead recover
        # the plain average degree sum(deg)/n.
        degrees = [1, 1, 2, 4]
        spec = []
        for node, degree in enumerate(degrees):
            spec.extend([(node, degree, {})] * degree)
        samples = make_samples(spec)
        result = reweighted_mean(samples, AggregateQuery.average_degree())
        assert result.value == pytest.approx(np.mean(degrees))

    def test_proportion_query(self):
        spec = [(1, 2, {"c": "x"})] * 2 + [(2, 2, {"c": "y"})] * 2
        samples = make_samples(spec)
        query = AggregateQuery.proportion(lambda n, a: a.get("c") == "x")
        assert reweighted_mean(samples, query).value == pytest.approx(0.5)

    def test_conditional_average_ignores_non_matching(self):
        spec = [(1, 2, {"v": 10.0, "c": "x"}), (2, 2, {"v": 99.0, "c": "y"})]
        samples = make_samples(spec)
        query = AggregateQuery(
            kind=AggregateKind.AVERAGE, measure="v", predicate=lambda n, a: a.get("c") == "x"
        )
        assert reweighted_mean(samples, query).value == pytest.approx(10.0)

    def test_zero_degree_samples_skipped(self):
        samples = make_samples([(1, 0, {"v": 5.0}), (2, 2, {"v": 7.0})])
        result = reweighted_mean(samples, AggregateQuery.average_attribute("v"))
        assert result.value == pytest.approx(7.0)

    def test_no_samples(self):
        with pytest.raises(InsufficientSamplesError):
            reweighted_mean([], AggregateQuery.average_degree())

    def test_all_samples_filtered_out(self):
        samples = make_samples([(1, 2, {"c": "y"})])
        query = AggregateQuery(
            kind=AggregateKind.AVERAGE, measure="v", predicate=lambda n, a: a.get("c") == "x"
        )
        with pytest.raises(InsufficientSamplesError):
            reweighted_mean(samples, query)

    def test_standard_error_present(self):
        samples = make_samples([(1, 2, {"v": 10.0}), (2, 3, {"v": 20.0}), (3, 4, {"v": 30.0})])
        result = reweighted_mean(samples, AggregateQuery.average_attribute("v"))
        assert result.standard_error is not None
        low, high = result.confidence_interval()
        assert low <= result.value <= high

    def test_single_sample_has_no_standard_error(self):
        samples = make_samples([(1, 2, {"v": 10.0})])
        result = reweighted_mean(samples, AggregateQuery.average_attribute("v"))
        assert result.standard_error is None
        assert result.confidence_interval() == (result.value, result.value)


class TestUniformMean:
    def test_plain_mean(self):
        samples = make_samples([(1, 5, {"v": 10.0}), (2, 1, {"v": 20.0})])
        result = uniform_mean(samples, AggregateQuery.average_attribute("v"))
        assert result.value == pytest.approx(15.0)

    def test_proportion(self):
        samples = make_samples([(1, 1, {"c": "x"}), (2, 1, {"c": "y"}), (3, 1, {"c": "x"})])
        query = AggregateQuery.proportion(lambda n, a: a.get("c") == "x")
        assert uniform_mean(samples, query).value == pytest.approx(2 / 3)

    def test_no_samples(self):
        with pytest.raises(InsufficientSamplesError):
            uniform_mean([], AggregateQuery.average_degree())


class TestEstimateDispatcher:
    def test_uniform_flag_switches_estimator(self):
        samples = make_samples([(1, 5, {"v": 10.0}), (2, 1, {"v": 20.0})])
        query = AggregateQuery.average_attribute("v")
        weighted = estimate(samples, query, uniform_samples=False).value
        plain = estimate(samples, query, uniform_samples=True).value
        assert plain == pytest.approx(15.0)
        assert weighted != pytest.approx(15.0)

    def test_sum_requires_population_size(self):
        samples = make_samples([(1, 2, {"v": 10.0})])
        query = AggregateQuery.sum_attribute("v")
        with pytest.raises(InvalidConfigurationError):
            estimate(samples, query)
        scaled = estimate(samples, query, population_size=100)
        assert scaled.value == pytest.approx(100 * 10.0)

    def test_count_scaling(self):
        samples = make_samples([(1, 2, {"c": "x"}), (2, 2, {"c": "y"})])
        query = AggregateQuery.count(lambda n, a: a.get("c") == "x")
        result = estimate(samples, query, population_size=50)
        assert result.value == pytest.approx(25.0)


class TestRunningEstimator:
    def test_matches_batch_estimator(self):
        samples = make_samples(
            [(1, 2, {"v": 10.0}), (2, 4, {"v": 20.0}), (3, 8, {"v": 40.0}), (1, 2, {"v": 10.0})]
        )
        query = AggregateQuery.average_attribute("v")
        runner = RunningEstimator(query)
        runner.update_many(samples)
        assert runner.value == pytest.approx(reweighted_mean(samples, query).value)
        assert runner.sample_size == 4

    def test_uniform_mode(self):
        samples = make_samples([(1, 5, {"v": 10.0}), (2, 1, {"v": 20.0})])
        query = AggregateQuery.average_attribute("v")
        runner = RunningEstimator(query, uniform_samples=True)
        runner.update_many(samples)
        assert runner.value == pytest.approx(15.0)

    def test_skips_zero_degree_and_filtered(self):
        query = AggregateQuery(
            kind=AggregateKind.AVERAGE, measure="v", predicate=lambda n, a: a.get("keep", False)
        )
        runner = RunningEstimator(query)
        runner.update(Sample(node=1, degree=0, attributes={"v": 1.0, "keep": True}))
        runner.update(Sample(node=2, degree=2, attributes={"v": 5.0, "keep": False}))
        with pytest.raises(InsufficientSamplesError):
            _ = runner.value
        runner.update(Sample(node=3, degree=2, attributes={"v": 7.0, "keep": True}))
        assert runner.value == pytest.approx(7.0)

    def test_rejects_sum_queries(self):
        with pytest.raises(InvalidConfigurationError):
            RunningEstimator(AggregateQuery.sum_attribute("v"))

    def test_estimate_wrapper(self):
        query = AggregateQuery.average_attribute("v")
        runner = RunningEstimator(query)
        runner.update(Sample(node=1, degree=2, attributes={"v": 3.0}))
        wrapped = runner.estimate()
        assert wrapped.value == pytest.approx(3.0)
        assert wrapped.sample_size == 1
