"""Statistical validation of the paper's theory (Theorems 1, 2, 3, 4).

These tests are slower than unit tests (they run many walks) but they are the
heart of the reproduction: CNRW and GNRW must sample from the same stationary
distribution as SRW while achieving a lower (or equal) variance, and on the
barbell graph CNRW must cross the bridge more readily than SRW.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import GraphAPI
from repro.estimation import AggregateQuery, asymptotic_variance_across_chains, reweighted_mean
from repro.graphs import barbell_graph, clustered_cliques_graph, load_dataset
from repro.metrics import (
    empirical_distribution,
    l2_distance,
    theoretical_distribution,
    total_variation_distance,
)
from repro.walks import (
    CirculatedNeighborsRandomWalk,
    GroupByNeighborsRandomWalk,
    NonBacktrackingRandomWalk,
    SimpleRandomWalk,
)
from repro.walks.grouping import DegreeGrouping


@pytest.fixture(scope="module")
def test_graph():
    """A small clustered graph: small enough for exact distribution checks,
    ill-conditioned enough for history-aware walks to matter."""
    return clustered_cliques_graph((5, 8, 12), seed=3)


def visit_distribution(walker_cls, graph, steps, walks, seed_base, **kwargs):
    """Pool the visit counts of several independent walks into a distribution."""
    visits = []
    nodes = graph.nodes()
    for index in range(walks):
        walker = walker_cls(GraphAPI(graph), seed=seed_base + index, **kwargs)
        start = nodes[index % len(nodes)]
        visits.extend(walker.run(start, max_steps=steps).path)
    return empirical_distribution(visits, support=nodes)


class TestTheorem1And4SameStationaryDistribution:
    """SRW, CNRW and GNRW converge to pi(v) = deg(v)/2|E| (Figure 8)."""

    STEPS = 4000
    WALKS = 4

    @pytest.mark.parametrize(
        "walker_cls,kwargs",
        [
            (SimpleRandomWalk, {}),
            (CirculatedNeighborsRandomWalk, {}),
            (GroupByNeighborsRandomWalk, {}),
            (NonBacktrackingRandomWalk, {}),
        ],
        ids=["srw", "cnrw", "gnrw", "nbsrw"],
    )
    def test_visit_distribution_close_to_pi(self, test_graph, walker_cls, kwargs):
        empirical = visit_distribution(
            walker_cls, test_graph, self.STEPS, self.WALKS, seed_base=100, **kwargs
        )
        theoretical = theoretical_distribution(test_graph)
        assert total_variation_distance(theoretical, empirical) < 0.08
        assert l2_distance(theoretical, empirical) < 0.05

    def test_cnrw_and_srw_distributions_agree(self, test_graph):
        """The two empirical distributions are as close to each other as to pi."""
        srw = visit_distribution(SimpleRandomWalk, test_graph, self.STEPS, self.WALKS, 200)
        cnrw = visit_distribution(
            CirculatedNeighborsRandomWalk, test_graph, self.STEPS, self.WALKS, 300
        )
        assert total_variation_distance(srw, cnrw) < 0.08

    def test_gnrw_grouping_choice_does_not_change_distribution(self, test_graph):
        by_degree = visit_distribution(
            GroupByNeighborsRandomWalk,
            test_graph,
            self.STEPS,
            self.WALKS,
            400,
            grouping=DegreeGrouping(),
        )
        theoretical = theoretical_distribution(test_graph)
        assert total_variation_distance(theoretical, by_degree) < 0.08


class TestTheorem2LowerVariance:
    """CNRW's estimator variance is no larger than SRW's (Theorem 2)."""

    CHAINS = 60
    STEPS = 400

    def _chain_estimates(self, walker_cls, graph, query, seed_base, **kwargs):
        estimates = []
        nodes = graph.nodes()
        for index in range(self.CHAINS):
            walker = walker_cls(GraphAPI(graph), seed=seed_base + index, **kwargs)
            start = nodes[index % len(nodes)]
            result = walker.run(start, max_steps=self.STEPS)
            estimates.append(reweighted_mean(result.samples, query).value)
        return estimates

    def test_cnrw_variance_not_larger_than_srw(self, test_graph):
        query = AggregateQuery.average_attribute("age") if "age" in test_graph.attribute_names() else AggregateQuery.average_degree()
        query = AggregateQuery.average_degree()
        srw = self._chain_estimates(SimpleRandomWalk, test_graph, query, 1000)
        cnrw = self._chain_estimates(CirculatedNeighborsRandomWalk, test_graph, query, 2000)
        srw_var = asymptotic_variance_across_chains(srw, self.STEPS)
        cnrw_var = asymptotic_variance_across_chains(cnrw, self.STEPS)
        # Allow 20% statistical slack: the theorem is <=, not <.
        assert cnrw_var <= srw_var * 1.2

    def test_cnrw_mse_not_larger_than_srw_on_clustered_graph(self, test_graph):
        truth = test_graph.average_degree()
        query = AggregateQuery.average_degree()
        srw = self._chain_estimates(SimpleRandomWalk, test_graph, query, 3000)
        cnrw = self._chain_estimates(CirculatedNeighborsRandomWalk, test_graph, query, 4000)
        srw_mse = float(np.mean([(value - truth) ** 2 for value in srw]))
        cnrw_mse = float(np.mean([(value - truth) ** 2 for value in cnrw]))
        assert cnrw_mse <= srw_mse * 1.2

    def test_gnrw_variance_not_larger_than_srw(self):
        graph = load_dataset("yelp_like", seed=5, scale=0.08)
        query = AggregateQuery.average_degree()
        srw = self._chain_estimates(SimpleRandomWalk, graph, query, 5000)
        gnrw = self._chain_estimates(
            GroupByNeighborsRandomWalk, graph, query, 6000, grouping=DegreeGrouping()
        )
        srw_var = asymptotic_variance_across_chains(srw, self.STEPS)
        gnrw_var = asymptotic_variance_across_chains(gnrw, self.STEPS)
        assert gnrw_var <= srw_var * 1.2


class TestTheorem3BarbellEscape:
    """CNRW escapes a barbell clique at least as readily as SRW."""

    def _crossing_rate(self, walker_cls, clique_size, trials, steps, seed_base):
        graph = barbell_graph(clique_size)
        other_side = set(range(clique_size, 2 * clique_size))
        crossings = 0
        for trial in range(trials):
            walker = walker_cls(GraphAPI(graph), seed=seed_base + trial)
            result = walker.run(trial % clique_size, max_steps=steps)
            if any(node in other_side for node in result.path):
                crossings += 1
        return crossings / trials

    def test_cnrw_crosses_at_least_as_often(self):
        srw_rate = self._crossing_rate(SimpleRandomWalk, 8, trials=150, steps=150, seed_base=10_000)
        cnrw_rate = self._crossing_rate(
            CirculatedNeighborsRandomWalk, 8, trials=150, steps=150, seed_base=20_000
        )
        assert cnrw_rate >= srw_rate * 0.9

    def test_crossing_rate_decreases_with_clique_size(self):
        small = self._crossing_rate(SimpleRandomWalk, 5, trials=80, steps=80, seed_base=30_000)
        large = self._crossing_rate(SimpleRandomWalk, 15, trials=80, steps=80, seed_base=40_000)
        assert large <= small
