"""Unified telemetry: a metrics registry, span tracing, and wire propagation.

The serving stack spans client middleware, two HTTP frontends, a replicated
shard tier and a SQLite warehouse; before this module each layer kept its own
disjoint counters (``QueryStats``, ``endpoint_counts``, access-log lines)
with no shared request identity and no latency data.  ``repro.obs`` is the
one place all of them report into:

* :class:`MetricsRegistry` — process-local counters, gauges and fixed-bucket
  histograms behind one small lock, with an injectable clock and zero
  dependencies.  Rendered as Prometheus text exposition
  (:meth:`~MetricsRegistry.render_prometheus`, served at ``GET /metrics`` by
  both frontends) or as a JSON-ready snapshot (folded into ``GET /stats``).
* :class:`Tracer` / :class:`Span` — span-based tracing with parent/child
  links.  A tracer is *activated* (module-global with a thread-local
  override) and instrumented code opens spans through
  :func:`maybe_span`, which is a no-op when no tracer is active — telemetry
  is off by default and off-by-default-cheap.
* Wire propagation — the additive ``X-Repro-Trace`` request header
  (``repro-trace`` v1) carries ``trace id + parent span`` from the client
  through both frontends; servers answer with an ``X-Repro-Span`` echo
  carrying their own span id and measured duration, which the client folds
  back into its trace.  One remote ensemble therefore yields one correlated
  JSONL trace tree — client, server and shard spans under a single trace id
  — exportable via ``SamplingSession.trace_export()`` and pretty-printed by
  ``repro.cli trace``.

Nothing here touches the determinism contract: span/trace ids are seeded
from ``os.urandom`` (never the walk rng lineages), and no instrumentation
path bills, caches or reorders a query.

Header grammar (``repro-trace`` version 1, additive to ``repro-graph-http``
v1 — old peers ignore the headers entirely)::

    X-Repro-Trace: repro-trace/1; trace=<16 hex>; span=<16 hex>
    X-Repro-Span:  repro-trace/1; trace=<16 hex>; span=<16 hex>;
                   parent=<16 hex>; ms=<float>; op=<token>

Malformed or unknown-version values are ignored, never refused: telemetry
must not be able to fail a request.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TRACE_HEADER",
    "SPAN_ECHO_HEADER",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate_tracer",
    "current_tracer",
    "use_tracer",
    "maybe_span",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "telemetry",
    "global_registry",
    "metrics",
    "suppress_metrics",
    "format_trace_header",
    "new_span_id",
    "parse_trace_header",
    "format_span_echo",
    "parse_span_echo",
    "render_trace_tree",
]

#: Trace header format name and version (additive to the graph wire).
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1
#: Request header: trace id + parent span, client -> server.
TRACE_HEADER = "X-Repro-Trace"
#: Response header: the server's own completed span, server -> client.
SPAN_ECHO_HEADER = "X-Repro-Span"

#: Default latency buckets (milliseconds) for request/round histograms —
#: loopback microbenchmarks land in the sub-ms buckets, a WAN crawl in the
#: hundreds; the top bucket is open (+Inf) as Prometheus requires.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

_LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, Any]) -> _LabelKey:
    if not labels:
        return (name, ())
    if len(labels) == 1:
        # The hot instrumentation sites all use a single label; skip the sort.
        ((key, value),) = labels.items()
        return (name, ((key, str(value)),))
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _format_float(value: float) -> str:
    """Prometheus-style number: integers render without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Histogram:
    """Fixed-bucket histogram state: cumulative counts, sum and count."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left: first bound >= value, i.e. the ``le`` bucket.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            cumulative[_format_float(bound)] = running
        cumulative["+Inf"] = running + self.counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "buckets": cumulative,
        }


class MetricsRegistry:
    """Process-local metrics: counters, gauges and fixed-bucket histograms.

    One plain ``threading.Lock`` guards every mutation and read — the
    operations inside are dict lookups and float adds, so the lock is held
    for nanoseconds and one registry serves a whole multi-threaded server.
    Holding the same lock across :meth:`render_prometheus`, :meth:`snapshot`
    and :meth:`reset` is what makes a reset *atomic against concurrent
    scrapes*: a scrape observes the registry entirely before or entirely
    after a reset, never a torn mix.

    Args:
        clock: Monotonic time source used by :meth:`time` (injectable so
            tests pin exact durations).
    """

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: Dict[_LabelKey, float] = {}
        self._gauges: Dict[_LabelKey, float] = {}
        self._histograms: Dict[_LabelKey, _Histogram] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Declaration (optional; metrics self-declare on first use)
    # ------------------------------------------------------------------
    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to ``name`` in the text exposition."""
        with self._lock:
            self._help[name] = help_text

    def declare_histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> None:
        """Pin ``name``'s bucket bounds (defaults apply on first observe)."""
        with self._lock:
            self._buckets[name] = tuple(sorted(buckets))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name`` (label set included)."""
        key = (name, ()) if not labels else _label_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` to ``value``."""
        key = (name, ()) if not labels else _label_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the histogram ``name``."""
        key = (name, ()) if not labels else _label_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                buckets = self._buckets.get(name, DEFAULT_LATENCY_BUCKETS_MS)
                histogram = self._histograms[key] = _Histogram(tuple(buckets))
            histogram.observe(float(value))

    @contextmanager
    def time(self, name: str, **labels: Any) -> Iterator[None]:
        """Observe the block's wall duration (milliseconds) into ``name``."""
        started = self._clock()
        try:
            yield
        finally:
            self.observe(name, (self._clock() - started) * 1000.0, **labels)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> float:
        """Current counter/gauge value (0.0 when never reported)."""
        key = _label_key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0.0)

    def histogram(self, name: str, **labels: Any) -> Optional[Dict[str, Any]]:
        """One histogram's snapshot, or ``None`` when never observed."""
        key = _label_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            return histogram.snapshot() if histogram is not None else None

    def histogram_family(self, name: str, label: str) -> Dict[str, Dict[str, Any]]:
        """Snapshots of every ``name`` histogram, keyed by one label's value.

        The ``GET /stats`` fold-in: per-endpoint (and per-tenant) latency
        summaries come from one histogram family sliced along a label.
        """
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            for (metric, labels), histogram in self._histograms.items():
                if metric != name:
                    continue
                for key, value in labels:
                    if key == label:
                        out[value] = histogram.snapshot()
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of everything (folded into ``GET /stats``)."""

        def fold(table: Dict[_LabelKey, Any], render) -> Dict[str, Any]:
            out: Dict[str, Any] = {}
            for (name, labels), value in sorted(table.items()):
                if labels:
                    label_text = ",".join(f"{k}={v}" for k, v in labels)
                    out.setdefault(name, {})[label_text] = render(value)
                else:
                    out[name] = render(value)
            return out

        with self._lock:
            return {
                "counters": fold(self._counters, lambda v: v),
                "gauges": fold(self._gauges, lambda v: v),
                "histograms": fold(self._histograms, lambda h: h.snapshot()),
            }

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition (format 0.0.4)."""
        lines: List[str] = []

        def labelled(name: str, labels, extra: str = "") -> str:
            parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return f"{name}{{{','.join(parts)}}}" if parts else name

        with self._lock:
            seen_types: set = set()

            def header(name: str, kind: str) -> None:
                if name in seen_types:
                    return
                seen_types.add(name)
                help_text = self._help.get(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

            for (name, labels), value in sorted(self._counters.items()):
                header(name, "counter")
                lines.append(f"{labelled(name, labels)} {_format_float(value)}")
            for (name, labels), value in sorted(self._gauges.items()):
                header(name, "gauge")
                lines.append(f"{labelled(name, labels)} {_format_float(value)}")
            for (name, labels), histogram in sorted(self._histograms.items()):
                header(name, "histogram")
                running = 0
                for bound, count in zip(histogram.buckets, histogram.counts):
                    running += count
                    bucket = 'le="' + _format_float(bound) + '"'
                    lines.append(f"{labelled(name + '_bucket', labels, bucket)} {running}")
                inf_bucket = 'le="+Inf"'
                lines.append(
                    f"{labelled(name + '_bucket', labels, inf_bucket)} {histogram.count}"
                )
                lines.append(
                    f"{labelled(name + '_sum', labels)} {_format_float(round(histogram.total, 6))}"
                )
                lines.append(f"{labelled(name + '_count', labels)} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every value (declared buckets and help text survive)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
            )


# ----------------------------------------------------------------------
# The process-wide registry and the off-by-default switch
# ----------------------------------------------------------------------
_GLOBAL_REGISTRY = MetricsRegistry()
_TELEMETRY_ENABLED = False
_STATE_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide registry client-side instrumentation reports into."""
    return _GLOBAL_REGISTRY


def telemetry_enabled() -> bool:
    return _TELEMETRY_ENABLED


def enable_telemetry() -> None:
    """Turn on client-side metrics reporting into :func:`global_registry`."""
    global _TELEMETRY_ENABLED
    with _STATE_LOCK:
        _TELEMETRY_ENABLED = True


def disable_telemetry() -> None:
    global _TELEMETRY_ENABLED
    with _STATE_LOCK:
        _TELEMETRY_ENABLED = False


@contextmanager
def telemetry() -> Iterator[MetricsRegistry]:
    """Scoped :func:`enable_telemetry` (restores the previous state)."""
    previous = _TELEMETRY_ENABLED
    enable_telemetry()
    try:
        yield _GLOBAL_REGISTRY
    finally:
        if not previous:
            disable_telemetry()


def metrics() -> Optional[MetricsRegistry]:
    """The global registry when telemetry is on, else ``None``.

    This is the hot-path guard every instrumentation site uses::

        m = obs.metrics()
        if m is not None:
            m.inc("repro_http_requests_total")

    Off-by-default cost: one module-global read and a ``None`` check.
    """
    if not _TELEMETRY_ENABLED or getattr(_METRICS_TLS, "suppressed", False):
        return None
    return _GLOBAL_REGISTRY


_METRICS_TLS = threading.local()


@contextmanager
def suppress_metrics() -> Iterator[None]:
    """Hide the global registry from this thread's instrumentation sites.

    For hot loops whose caller reports the same figures in aggregate
    afterwards: the asyncio frontend's ``POST /walk`` runs an entire
    client-grade middleware stack per walk, and paying a registry add per
    cache probe would tax the walk by more than the graph work itself —
    the handler suppresses per-query reporting for the walk's executor
    thread and folds the walk result's exact totals in with two adds.
    """
    previous = getattr(_METRICS_TLS, "suppressed", False)
    _METRICS_TLS.suppressed = True
    try:
        yield
    finally:
        _METRICS_TLS.suppressed = previous


# ----------------------------------------------------------------------
# Spans and tracers
# ----------------------------------------------------------------------
_ID_TLS = threading.local()


def _new_id() -> str:
    """A fresh 64-bit hex id (never drawn from the walk rng lineages).

    One ``os.urandom`` syscall seeds a per-thread 32-bit prefix; every id
    after that is the prefix plus a counter, so minting — which happens
    several times per traced request on both ends of the wire — costs a
    format call rather than a syscall.  The prefix re-seeds when the
    counter wraps, keeping ids unique across threads and processes.
    """
    n = getattr(_ID_TLS, "counter", 0)
    low = n & 0xFFFFFFFF
    if low == 0:
        _ID_TLS.prefix = os.urandom(4).hex()
    _ID_TLS.counter = n + 1
    return f"{_ID_TLS.prefix}{low:08x}"


#: Public alias: servers mint their own span ids from the same entropy pool.
new_span_id = _new_id


class Span:
    """One timed operation in a trace tree.

    ``duration_ms`` is stamped by :meth:`Tracer.finish`; ``tags`` is a plain
    mutable dict the instrumented code annotates (attempt numbers, shard
    labels, replica lists).  ``kind`` groups spans for the pretty-printer:
    ``client`` / ``server`` / ``shard`` / ``session``.
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "kind",
        "start_ms", "duration_ms", "tags",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        start_ms: float,
        tags: Dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start_ms = start_ms
        self.duration_ms: Optional[float] = None
        self.tags = tags

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": (
                round(self.duration_ms, 3) if self.duration_ms is not None else None
            ),
        }
        if self.tags:
            payload["tags"] = self.tags
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id}, ms={self.duration_ms})"
        )


class _SpanScope:
    """Context manager pairing one pushed span with its pop-and-finish."""

    __slots__ = ("_tracer", "_span", "_stack")

    def __init__(self, tracer: "Tracer", span: Span, stack: list) -> None:
        self._tracer = tracer
        self._span = span
        self._stack = stack

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stack.pop()
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Collects the spans of one or more traces.

    Span *context* (which span is the current parent) is a per-thread stack;
    the finished-span list is shared under a lock, so fan-out worker threads
    may finish spans concurrently.  ``clock`` and ``idgen`` are injectable
    for deterministic tests.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        idgen: Callable[[], str] = _new_id,
    ) -> None:
        self._clock = clock
        self._idgen = idgen
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._raw_echoes: deque = deque()
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def _stack(self) -> List[Tuple[str, str]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> Optional[Tuple[str, str]]:
        """The active ``(trace_id, span_id)`` on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def scope(self, trace_id: str, span_id: str) -> Iterator[None]:
        """Adopt an existing context (cross-thread propagation) without a span."""
        stack = self._stack()
        stack.append((trace_id, span_id))
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        *,
        kind: str = "client",
        parent: Optional[Tuple[str, str]] = None,
        **tags: Any,
    ) -> Span:
        """Open a span (manual pairing with :meth:`finish`).

        ``parent`` overrides the ambient context; with neither, the span
        roots a fresh trace.  The span is *not* pushed as context — use
        :meth:`span` for the scoped form.
        """
        context = parent if parent is not None else self.current()
        if context is None:
            trace_id, parent_id = self._idgen(), None
        else:
            trace_id, parent_id = context
        return Span(
            trace_id=trace_id,
            span_id=self._idgen(),
            parent_id=parent_id,
            name=name,
            kind=kind,
            start_ms=(self._clock() - self._epoch) * 1000.0,
            tags=tags,
        )

    def finish(self, span: Span) -> Span:
        """Stamp ``duration_ms`` and collect the span."""
        span.duration_ms = max(
            0.0, (self._clock() - self._epoch) * 1000.0 - span.start_ms
        )
        with self._lock:
            self._spans.append(span)
        return span

    def span(
        self,
        name: str,
        *,
        kind: str = "client",
        parent: Optional[Tuple[str, str]] = None,
        **tags: Any,
    ) -> "_SpanScope":
        """Scoped span: opens, pushes as context, finishes on exit.

        Returns a slim hand-rolled context manager rather than a
        ``contextlib`` generator — this sits on the per-request hot path,
        where the generator machinery costs more than the span itself.
        """
        opened = self.start_span(name, kind=kind, parent=parent, **tags)
        stack = self._stack()
        stack.append((opened.trace_id, opened.span_id))
        return _SpanScope(self, opened, stack)

    def record(self, span: Span) -> Span:
        """Collect an externally-completed span (a server's echo)."""
        with self._lock:
            self._spans.append(span)
        return span

    def record_echo(
        self, echo: Dict[str, Any], *, kind: str = "server"
    ) -> Optional[Span]:
        """Fold a parsed ``X-Repro-Span`` echo into the trace tree."""
        trace_id = echo.get("trace")
        span_id = echo.get("span")
        if not trace_id or not span_id:
            return None
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=echo.get("parent"),
            name=str(echo.get("op", "server.request")),
            kind=kind,
            start_ms=0.0,
            tags={"remote": True},
        )
        span.duration_ms = float(echo.get("ms", 0.0))
        return self.record(span)

    def record_echo_raw(self, value: Optional[str]) -> None:
        """Buffer an unparsed ``X-Repro-Span`` value for deferred folding.

        This is the request hot path's form of :meth:`record_echo`: the
        wire value costs one thread-safe append at request time, and the
        parse plus span materialisation happen on the first export or
        read.  Malformed values are dropped there, exactly as the eager
        path drops them at the parse.
        """
        if value:
            self._raw_echoes.append(value)

    def _drain_echoes(self) -> None:
        """Materialise buffered wire echoes (deque ops are thread-safe)."""
        while True:
            try:
                value = self._raw_echoes.popleft()
            except IndexError:
                return
            echo = parse_span_echo(value)
            if echo is not None:
                self.record_echo(echo)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        self._drain_echoes()
        with self._lock:
            return list(self._spans)

    def trace_ids(self) -> List[str]:
        self._drain_echoes()
        with self._lock:
            seen: Dict[str, None] = {}
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
            return list(seen)

    def export_jsonl(self) -> str:
        """One JSON object per span, parents before children where known."""
        spans = self.spans()
        return "".join(json.dumps(span.to_json()) + "\n" for span in spans)

    def clear(self) -> None:
        self._raw_echoes.clear()
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        self._drain_echoes()
        with self._lock:
            return len(self._spans)


# ----------------------------------------------------------------------
# Active-tracer plumbing
# ----------------------------------------------------------------------
#: Module-global active tracer: fan-out worker threads (the sharded tier's
#: dispatch pool) see the same tracer the main thread activated, because a
#: plain thread-local would leave their spans orphaned in a fresh trace.
_ACTIVE_TRACER: Optional[Tracer] = None
_TRACER_TLS = threading.local()


def current_tracer() -> Optional[Tracer]:
    """The tracer instrumentation should report to (``None`` = tracing off)."""
    override = getattr(_TRACER_TLS, "tracer", None)
    if override is not None:
        return override
    return _ACTIVE_TRACER


def activate_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` process-wide (``None`` deactivates)."""
    global _ACTIVE_TRACER
    with _STATE_LOCK:
        _ACTIVE_TRACER = tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`activate_tracer` (restores the previous tracer)."""
    global _ACTIVE_TRACER
    with _STATE_LOCK:
        previous, _ACTIVE_TRACER = _ACTIVE_TRACER, tracer
    try:
        yield tracer
    finally:
        with _STATE_LOCK:
            _ACTIVE_TRACER = previous


@contextmanager
def maybe_span(name: str, *, kind: str = "client", **tags: Any) -> Iterator[Optional[Span]]:
    """Open a span on the active tracer, or do nothing when tracing is off."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, kind=kind, **tags) as span:
        yield span


# ----------------------------------------------------------------------
# Wire codec (repro-trace v1)
# ----------------------------------------------------------------------
_PREFIX = f"{TRACE_FORMAT}/{TRACE_VERSION}"
_ID_RE = re.compile(r"[0-9a-f]{1,32}$")
#: Fast paths for the exact canonical forms this module emits — the parse
#: happens once per request on both ends, so the lenient field-by-field
#: parser only runs for values some other producer formatted.
_TRACE_HEADER_RE = re.compile(
    rf"{_PREFIX}; trace=([0-9a-f]{{1,32}}); span=([0-9a-f]{{1,32}})$"
)
_SPAN_ECHO_RE = re.compile(
    rf"{_PREFIX}; trace=([0-9a-f]{{1,32}}); span=([0-9a-f]{{1,32}}); "
    r"parent=([0-9a-f]{1,32}); ms=([0-9.]+); op=([A-Za-z0-9._/-]*)$"
)
_OP_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._/-]+")


def _valid_id(value: Any) -> bool:
    return isinstance(value, str) and _ID_RE.match(value) is not None


def format_trace_header(trace_id: str, span_id: str) -> str:
    """The ``X-Repro-Trace`` request value for one outgoing request."""
    return f"{_PREFIX}; trace={trace_id}; span={span_id}"


def _parse_fields(value: str) -> Optional[Dict[str, str]]:
    parts = [part.strip() for part in value.split(";")]
    if not parts or parts[0] != _PREFIX:
        return None
    fields: Dict[str, str] = {}
    for part in parts[1:]:
        name, separator, field_value = part.partition("=")
        if separator:
            fields[name.strip()] = field_value.strip()
    return fields


def parse_trace_header(value: Optional[str]) -> Optional[Tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a request header, or ``None``.

    Anything malformed — wrong format token, future version, non-hex ids —
    returns ``None``: a server must serve the request untraced rather than
    refuse it over telemetry.
    """
    if not value:
        return None
    match = _TRACE_HEADER_RE.match(value)
    if match is not None:
        return match.group(1), match.group(2)
    fields = _parse_fields(value)
    if fields is None:
        return None
    trace_id, span_id = fields.get("trace"), fields.get("span")
    if not _valid_id(trace_id) or not _valid_id(span_id):
        return None
    return trace_id, span_id


def format_span_echo(
    trace_id: str, span_id: str, parent_id: str, duration_ms: float, op: str
) -> str:
    """The ``X-Repro-Span`` response value describing the server's span."""
    safe_op = _OP_UNSAFE_RE.sub("", op) or "request"
    return (
        f"{_PREFIX}; trace={trace_id}; span={span_id}; parent={parent_id}; "
        f"ms={duration_ms:.3f}; op={safe_op}"
    )


def parse_span_echo(value: Optional[str]) -> Optional[Dict[str, Any]]:
    """Decode an ``X-Repro-Span`` echo; ``None`` on anything malformed."""
    if not value:
        return None
    match = _SPAN_ECHO_RE.match(value)
    if match is not None:
        trace_id, span_id, parent, ms, op = match.groups()
        try:
            duration = float(ms)
        except ValueError:  # pragma: no cover - the pattern forbids this
            duration = 0.0
        return {"trace": trace_id, "span": span_id, "parent": parent,
                "ms": duration, "op": op or "server.request"}
    fields = _parse_fields(value)
    if fields is None:
        return None
    if not _valid_id(fields.get("trace")) or not _valid_id(fields.get("span")):
        return None
    echo: Dict[str, Any] = {
        "trace": fields["trace"],
        "span": fields["span"],
    }
    parent = fields.get("parent")
    if _valid_id(parent):
        echo["parent"] = parent
    try:
        echo["ms"] = float(fields.get("ms", "0"))
    except ValueError:
        echo["ms"] = 0.0
    echo["op"] = fields.get("op", "server.request")
    return echo


# ----------------------------------------------------------------------
# Trace-tree rendering (the `repro.cli trace` pretty-printer's engine)
# ----------------------------------------------------------------------
def render_trace_tree(spans: List[Dict[str, Any]]) -> str:
    """Render exported span dicts as an indented per-trace tree.

    Orphans (a parent id that never arrived, e.g. a server echo whose client
    span was lost) attach at the trace root rather than vanishing.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        trace_id = span.get("trace_id", "?")
        by_trace.setdefault(trace_id, []).append(span)

    lines: List[str] = []
    for trace_id, members in by_trace.items():
        ids = {span.get("span_id") for span in members}
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        for span in members:
            parent = span.get("parent_id")
            if parent is not None and parent not in ids:
                parent = None  # orphan: attach at the root
            children.setdefault(parent, []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: (s.get("start_ms") or 0.0, s.get("span_id") or ""))
        lines.append(f"trace {trace_id} ({len(members)} spans)")

        def emit(parent: Optional[str], depth: int) -> None:
            for span in children.get(parent, []):
                duration = span.get("duration_ms")
                shown = f"{duration:.3f}ms" if isinstance(duration, (int, float)) else "?"
                tags = span.get("tags") or {}
                tag_text = (
                    " " + " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
                    if tags
                    else ""
                )
                lines.append(
                    f"{'  ' * (depth + 1)}[{span.get('kind', '?')}] "
                    f"{span.get('name', '?')} {shown}{tag_text}"
                )
                span_id = span.get("span_id")
                if span_id in ids:
                    emit(span_id, depth + 1)

        emit(None, 0)
    return "\n".join(lines) + ("\n" if lines else "")
