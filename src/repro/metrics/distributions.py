"""Empirical and theoretical sampling distributions.

Figure 8 of the paper compares the empirical sampling distribution of SRW,
CNRW and GNRW (estimated by counting visits over long walks) with the
theoretical stationary distribution ``pi(v) = deg(v)/2|E|``, with nodes
ordered by degree.  This module provides the distribution containers and the
conversions the figure needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EmptyGraphError, InsufficientSamplesError
from ..graphs.graph import Graph
from ..types import NodeId


class Distribution:
    """A probability distribution over a fixed set of nodes."""

    def __init__(self, probabilities: Dict[NodeId, float]) -> None:
        if not probabilities:
            raise InsufficientSamplesError("distribution needs at least one node")
        total = float(sum(probabilities.values()))
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        self._probabilities = {node: value / total for node, value in probabilities.items()}

    def probability(self, node: NodeId, default: float = 0.0) -> float:
        return self._probabilities.get(node, default)

    def nodes(self) -> List[NodeId]:
        return list(self._probabilities)

    def as_dict(self) -> Dict[NodeId, float]:
        return dict(self._probabilities)

    def support_size(self) -> int:
        return len(self._probabilities)

    def vector(self, ordering: Sequence[NodeId]) -> np.ndarray:
        """Return the probabilities aligned to ``ordering`` (missing -> 0)."""
        return np.array([self._probabilities.get(node, 0.0) for node in ordering], dtype=float)

    def __len__(self) -> int:
        return len(self._probabilities)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Distribution(support={len(self._probabilities)})"


def theoretical_distribution(graph: Graph) -> Distribution:
    """Return the SRW/CNRW/GNRW stationary distribution of ``graph``."""
    if graph.number_of_edges == 0:
        raise EmptyGraphError("graph has no edges")
    return Distribution(graph.stationary_distribution())


def uniform_distribution(graph: Graph) -> Distribution:
    """Return the uniform distribution (MHRW's target)."""
    nodes = graph.nodes()
    if not nodes:
        raise EmptyGraphError("graph has no nodes")
    return Distribution({node: 1.0 for node in nodes})


def empirical_distribution(
    visited_nodes: Iterable[NodeId],
    support: Optional[Sequence[NodeId]] = None,
    smoothing: float = 0.0,
) -> Distribution:
    """Estimate a distribution from visit counts.

    Args:
        visited_nodes: The nodes visited/sampled (with repetition).
        support: Full node set to include (unvisited nodes get probability 0,
            or ``smoothing`` pseudo-counts when provided).  When omitted the
            support is the set of visited nodes.
        smoothing: Additive pseudo-count per support node, useful for the
            KL-divergence which is undefined on empty cells.
    """
    counts: Dict[NodeId, float] = {}
    total = 0
    for node in visited_nodes:
        counts[node] = counts.get(node, 0.0) + 1.0
        total += 1
    if total == 0 and not support:
        raise InsufficientSamplesError("no visits to build a distribution from")
    if support is not None:
        full: Dict[NodeId, float] = {node: smoothing for node in support}
        for node, count in counts.items():
            full[node] = full.get(node, smoothing) + count
        counts = full
    if sum(counts.values()) <= 0:
        raise InsufficientSamplesError("all counts are zero; increase smoothing")
    return Distribution(counts)


def nodes_by_degree(graph: Graph, ascending: bool = True) -> List[NodeId]:
    """Return the nodes ordered by degree (ties broken by repr for stability)."""
    return sorted(
        graph.nodes(),
        key=lambda node: (graph.degree(node), repr(node)),
        reverse=not ascending,
    )


def distribution_series(
    graph: Graph,
    distributions: Dict[str, Distribution],
    ascending: bool = True,
) -> Tuple[List[NodeId], Dict[str, np.ndarray]]:
    """Return the Figure 8 series: per-sampler probabilities ordered by degree.

    Returns the node ordering plus, for each named distribution, the vector of
    probabilities aligned to that ordering.  The theoretical distribution is
    always included under the key ``"theoretical"``.
    """
    ordering = nodes_by_degree(graph, ascending=ascending)
    series: Dict[str, np.ndarray] = {
        "theoretical": theoretical_distribution(graph).vector(ordering)
    }
    for name, distribution in distributions.items():
        series[name] = distribution.vector(ordering)
    return ordering, series
