"""MCMC convergence diagnostics.

The burn-in period the paper sets out to shorten is, operationally, the number
of steps after which standard convergence diagnostics stop flagging the chain.
Two classic diagnostics are provided: Geweke's Z-score (compares the means of
an early and a late window of one chain) and the Gelman-Rubin potential scale
reduction factor (compares within-chain and between-chain variance over
multiple chains).  They are used by tests and by the ablation benchmarks to
show CNRW/GNRW converge in fewer steps than SRW.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InsufficientSamplesError


def geweke_zscore(
    values: Sequence[float], first_fraction: float = 0.1, last_fraction: float = 0.5
) -> float:
    """Return Geweke's convergence Z-score for one chain.

    Compares the mean of the first ``first_fraction`` of the chain against the
    mean of the last ``last_fraction``; values within roughly +/-2 indicate
    the two windows agree (the chain has likely passed burn-in).
    """
    if not 0 < first_fraction < 1 or not 0 < last_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if first_fraction + last_fraction > 1:
        raise ValueError("windows must not overlap")
    array = np.asarray(values, dtype=float)
    n = len(array)
    if n < 10:
        raise InsufficientSamplesError("need at least 10 values")
    first = array[: max(1, int(n * first_fraction))]
    last = array[n - max(1, int(n * last_fraction)):]
    var_first = first.var(ddof=1) / len(first) if len(first) > 1 else 0.0
    var_last = last.var(ddof=1) / len(last) if len(last) > 1 else 0.0
    denom = np.sqrt(var_first + var_last)
    if denom == 0:
        return 0.0
    return float((first.mean() - last.mean()) / denom)


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """Return the Gelman-Rubin potential scale reduction factor (R-hat).

    Values close to 1.0 indicate the chains have mixed; the conventional
    threshold for convergence is R-hat < 1.1.
    """
    if len(chains) < 2:
        raise InsufficientSamplesError("need at least 2 chains")
    lengths = {len(chain) for chain in chains}
    if len(lengths) != 1:
        raise ValueError("all chains must have the same length")
    n = lengths.pop()
    if n < 2:
        raise InsufficientSamplesError("chains must have at least 2 values")
    arrays = np.asarray([np.asarray(chain, dtype=float) for chain in chains])
    m = arrays.shape[0]
    chain_means = arrays.mean(axis=1)
    chain_vars = arrays.var(axis=1, ddof=1)
    within = chain_vars.mean()
    between = n * chain_means.var(ddof=1)
    if within == 0:
        return 1.0
    var_estimate = (n - 1) / n * within + between / n
    return float(np.sqrt(var_estimate / within))


def burn_in_estimate(
    values: Sequence[float], truth: float, tolerance: float = 0.1
) -> int:
    """Return the first index whose running mean stays within ``tolerance``.

    A pragmatic "how long is the burn-in" measure: the smallest prefix length
    after which the running estimate never strays more than ``tolerance``
    (relative) from the ground truth.  Returns ``len(values)`` when the chain
    never settles.
    """
    array = np.asarray(values, dtype=float)
    if len(array) == 0:
        raise InsufficientSamplesError("empty series")
    running = np.cumsum(array) / np.arange(1, len(array) + 1)
    scale = abs(truth) if truth != 0 else 1.0
    errors = np.abs(running - truth) / scale
    within = errors <= tolerance
    # Find the earliest index from which every subsequent running mean is ok.
    for index in range(len(array)):
        if within[index:].all():
            return index
    return len(array)
