"""Sampling-bias and convergence metrics."""

from .bias import (
    absolute_error,
    bias_of_estimates,
    mean_relative_error,
    median_relative_error,
    normalized_rmse,
    relative_error,
)
from .convergence import burn_in_estimate, gelman_rubin, geweke_zscore
from .distributions import (
    Distribution,
    distribution_series,
    empirical_distribution,
    nodes_by_degree,
    theoretical_distribution,
    uniform_distribution,
)
from .divergence import (
    jensen_shannon_divergence,
    kl_divergence,
    l2_distance,
    symmetric_kl_divergence,
    total_variation_distance,
)

__all__ = [
    "Distribution",
    "absolute_error",
    "bias_of_estimates",
    "burn_in_estimate",
    "distribution_series",
    "empirical_distribution",
    "gelman_rubin",
    "geweke_zscore",
    "jensen_shannon_divergence",
    "kl_divergence",
    "l2_distance",
    "mean_relative_error",
    "median_relative_error",
    "nodes_by_degree",
    "normalized_rmse",
    "relative_error",
    "symmetric_kl_divergence",
    "theoretical_distribution",
    "total_variation_distance",
    "uniform_distribution",
]
