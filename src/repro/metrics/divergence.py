"""Distribution-distance measures used as sampling-bias metrics.

Section 2.3 / 6.1 of the paper measures sampling bias on small graphs with two
distances between the ideal distribution ``P`` and the measured one ``P_sam``:

* symmetric KL divergence ``D_KL(P || P_sam) + D_KL(P_sam || P)``, and
* the L2 norm ``|| P - P_sam ||_2``.

Total variation distance is included as an extra diagnostic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..types import NodeId
from .distributions import Distribution


def _aligned_vectors(
    p: Distribution, q: Distribution, support: Optional[Sequence[NodeId]] = None
):
    if support is None:
        support = sorted(set(p.nodes()) | set(q.nodes()), key=repr)
    return p.vector(support), q.vector(support)


def kl_divergence(
    p: Distribution,
    q: Distribution,
    support: Optional[Sequence[NodeId]] = None,
    epsilon: float = 1e-12,
) -> float:
    """Return ``D_KL(P || Q)`` in nats, with epsilon-smoothing of empty cells.

    The empirical distribution of a finite walk can assign zero probability to
    nodes the theoretical distribution supports; the standard fix (used here)
    is to clamp probabilities at ``epsilon`` before taking logarithms.
    """
    p_vec, q_vec = _aligned_vectors(p, q, support)
    p_safe = np.clip(p_vec, epsilon, None)
    q_safe = np.clip(q_vec, epsilon, None)
    # Terms with p == 0 contribute 0 by convention.
    terms = np.where(p_vec > 0, p_safe * np.log(p_safe / q_safe), 0.0)
    return float(terms.sum())


def symmetric_kl_divergence(
    p: Distribution,
    q: Distribution,
    support: Optional[Sequence[NodeId]] = None,
    epsilon: float = 1e-12,
) -> float:
    """Return the paper's bias measure ``D_KL(P||Q) + D_KL(Q||P)``."""
    return kl_divergence(p, q, support, epsilon) + kl_divergence(q, p, support, epsilon)


def l2_distance(
    p: Distribution, q: Distribution, support: Optional[Sequence[NodeId]] = None
) -> float:
    """Return the Euclidean distance ``|| P - Q ||_2``."""
    p_vec, q_vec = _aligned_vectors(p, q, support)
    return float(np.linalg.norm(p_vec - q_vec))


def total_variation_distance(
    p: Distribution, q: Distribution, support: Optional[Sequence[NodeId]] = None
) -> float:
    """Return the total variation distance ``0.5 * || P - Q ||_1``."""
    p_vec, q_vec = _aligned_vectors(p, q, support)
    return float(0.5 * np.abs(p_vec - q_vec).sum())


def jensen_shannon_divergence(
    p: Distribution, q: Distribution, support: Optional[Sequence[NodeId]] = None
) -> float:
    """Return the Jensen-Shannon divergence (symmetric, bounded by ln 2)."""
    if support is None:
        support = sorted(set(p.nodes()) | set(q.nodes()), key=repr)
    p_vec, q_vec = _aligned_vectors(p, q, support)
    m_vec = 0.5 * (p_vec + q_vec)
    mixture = Distribution({node: float(value) for node, value in zip(support, m_vec) if value > 0})
    return 0.5 * kl_divergence(p, mixture, support) + 0.5 * kl_divergence(q, mixture, support)
