"""Estimation-error metrics.

For large graphs the paper measures bias indirectly through the relative error
of aggregate estimates against the ground truth ("the golden measure").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InsufficientSamplesError


def relative_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth| / |truth|`` (absolute error when truth=0)."""
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def absolute_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth|``."""
    return abs(estimate - truth)


def mean_relative_error(estimates: Sequence[float], truth: float) -> float:
    """Return the average relative error over repeated trials.

    This is how each point of the paper's error-vs-cost curves is produced:
    many independent walks are run with the same budget and their errors are
    averaged.
    """
    if len(estimates) == 0:
        raise InsufficientSamplesError("no estimates")
    return float(np.mean([relative_error(value, truth) for value in estimates]))


def median_relative_error(estimates: Sequence[float], truth: float) -> float:
    """Return the median relative error over repeated trials."""
    if len(estimates) == 0:
        raise InsufficientSamplesError("no estimates")
    return float(np.median([relative_error(value, truth) for value in estimates]))


def normalized_rmse(estimates: Sequence[float], truth: float) -> float:
    """Return RMSE of the estimates divided by ``|truth|`` (RMSE when truth=0)."""
    if len(estimates) == 0:
        raise InsufficientSamplesError("no estimates")
    array = np.asarray(estimates, dtype=float)
    rmse = float(np.sqrt(((array - truth) ** 2).mean()))
    if truth == 0:
        return rmse
    return rmse / abs(truth)


def bias_of_estimates(estimates: Sequence[float], truth: float) -> float:
    """Return the signed bias ``mean(estimates) - truth``."""
    if len(estimates) == 0:
        raise InsufficientSamplesError("no estimates")
    return float(np.mean(estimates) - truth)
