"""repro: history-aware random walks for sampling online social networks.

A from-scratch reproduction of Zhou, Zhang & Das, *Leveraging History for
Faster Sampling of Online Social Networks* (VLDB 2015).  The library provides:

* :mod:`repro.graphs` — an in-memory graph substrate, loaders, synthetic
  generators and the paper's experiment datasets;
* :mod:`repro.api` — the restrictive OSN access interface as three explicit
  layers: storage backends (in-memory or array-based CSR), composable policy
  middleware (cache, budget, rate limit, shuffle, trace) assembled by
  :func:`~repro.api.builder.build_api`, and the fluent
  :class:`~repro.api.session.SamplingSession` facade;
* :mod:`repro.storage` — on-disk persistence behind the same backend
  protocol: memory-mapped CSR snapshots (``save_snapshot`` /
  ``load_snapshot``) and JSONL crawl dumps replayed offline
  (``dump_crawl`` / ``load_crawl``);
* :mod:`repro.cluster` — the sharded graph tier: ``partition_snapshot``
  splits a snapshot across N shard servers by deterministic consistent
  hashing, and ``ShardedBackend`` presents them as one backend (batched
  fetches fan out concurrently and re-merge in request order);
* :mod:`repro.walks` — the baseline samplers (SRW, MHRW, NB-SRW) and the
  paper's contributions (CNRW, GNRW, NB-CNRW);
* :mod:`repro.estimation` — aggregate queries, reweighted estimators and
  variance diagnostics;
* :mod:`repro.metrics` — sampling-bias and convergence metrics;
* :mod:`repro.obs` — opt-in telemetry: a process-wide metrics registry
  (scraped as Prometheus text at ``GET /metrics``) and span-based tracing
  whose context propagates over the wire through retries, failover and
  shard fan-out;
* :mod:`repro.experiments` — the harness regenerating every paper table and
  figure.

Quickstart::

    from repro import AggregateQuery, SamplingSession, load_dataset

    graph = load_dataset("facebook_like", seed=1)
    session = SamplingSession(graph, seed=1).budget(500).walker("cnrw", seed=1)
    result = session.run(max_steps=None)       # crawl until the budget is gone
    answer = session.estimate(AggregateQuery.average_degree())
    print(answer.value)

The session assembles the same access-layer stack a crawler would face —
restrictive neighbors-of-one-node queries, a local cache that makes duplicate
queries free, and a unique-query budget (the paper's cost measure).  Add
``.rate_limit(twitter_policy())`` to measure simulated crawl time,
``.backend("csr")`` to serve a large graph from compact arrays, or
``.trace()`` to record every query.  The legacy ``GraphAPI`` constructor
remains available as a thin shim over the same stack::

    from repro import GraphAPI, QueryBudget, make_walker

    api = GraphAPI(graph, budget=QueryBudget(500))
    walker = make_walker("cnrw", api=api, seed=1)
    result = walker.run(api.random_node(seed=1), max_steps=None)
"""

from .api import (
    AsyncHTTPGraphBackend,
    CSRBackend,
    GraphAPI,
    GraphBackend,
    HTTPGraphBackend,
    InMemoryBackend,
    InstrumentedAPI,
    NodeView,
    QueryBudget,
    SamplingSession,
    Session,
    SocialNetworkAPI,
    TraceLayer,
    build_api,
    estimate_crawl_time,
    twitter_policy,
    walk_fingerprint,
    yelp_policy,
)
from .estimation import (
    AggregateKind,
    AggregateQuery,
    Estimate,
    RunningEstimator,
    estimate,
    ground_truth,
)
from .cluster import (
    HashRing,
    ShardedBackend,
    load_cluster,
    load_shard,
    partition_snapshot,
    repartition,
)
from .exceptions import (
    APIError,
    ClusterError,
    EstimationError,
    ExperimentError,
    GraphError,
    QueryBudgetExceededError,
    RemoteBackendError,
    ReproError,
    ShardError,
    StaleManifestError,
    VectorizationError,
    WalkError,
)
from .graphs import (
    Graph,
    available_datasets,
    barbell_graph,
    clustered_cliques_graph,
    load_dataset,
    load_edge_list,
    summarize,
)
from .metrics import (
    empirical_distribution,
    kl_divergence,
    l2_distance,
    relative_error,
    symmetric_kl_divergence,
    theoretical_distribution,
)
from .obs import (
    MetricsRegistry,
    Span,
    Tracer,
    disable_telemetry,
    enable_telemetry,
    global_registry,
    render_trace_tree,
    telemetry,
    telemetry_enabled,
)
from .engine import (
    SchedulerPolicy,
    VectorEnsembleResult,
    VectorScheduler,
    VectorWalkState,
    WalkScheduler,
    make_vector_kernel,
)
from .server import AsyncGraphServer, GraphHTTPServer, serve_backend, serve_backend_async
from .storage import (
    MmapCSRBackend,
    ReplayBackend,
    dump_crawl,
    load_crawl,
    load_snapshot,
    save_snapshot,
)
from .walks import (
    CNRW,
    GNRW,
    MHRW,
    NBCNRW,
    NBSRW,
    SRW,
    CirculatedNeighborsRandomWalk,
    GroupByNeighborsRandomWalk,
    MetropolisHastingsRandomWalk,
    NonBacktrackingCNRW,
    NonBacktrackingRandomWalk,
    RandomWalk,
    SimpleRandomWalk,
    WalkResult,
    available_walkers,
    make_grouping,
    make_walker,
)

__version__ = "1.0.0"

__all__ = [
    "APIError",
    "AggregateKind",
    "AggregateQuery",
    "CNRW",
    "CSRBackend",
    "CirculatedNeighborsRandomWalk",
    "ClusterError",
    "Estimate",
    "EstimationError",
    "ExperimentError",
    "GNRW",
    "Graph",
    "GraphAPI",
    "GraphBackend",
    "GraphError",
    "GraphHTTPServer",
    "GroupByNeighborsRandomWalk",
    "AsyncGraphServer",
    "AsyncHTTPGraphBackend",
    "HTTPGraphBackend",
    "HashRing",
    "InMemoryBackend",
    "InstrumentedAPI",
    "MHRW",
    "MetricsRegistry",
    "MetropolisHastingsRandomWalk",
    "MmapCSRBackend",
    "NBCNRW",
    "NBSRW",
    "NodeView",
    "NonBacktrackingCNRW",
    "NonBacktrackingRandomWalk",
    "QueryBudget",
    "QueryBudgetExceededError",
    "RandomWalk",
    "VectorEnsembleResult",
    "VectorScheduler",
    "VectorWalkState",
    "VectorizationError",
    "RemoteBackendError",
    "ReplayBackend",
    "ReproError",
    "RunningEstimator",
    "SRW",
    "SamplingSession",
    "SchedulerPolicy",
    "Session",
    "ShardError",
    "ShardedBackend",
    "SimpleRandomWalk",
    "Span",
    "StaleManifestError",
    "SocialNetworkAPI",
    "TraceLayer",
    "Tracer",
    "WalkError",
    "WalkResult",
    "WalkScheduler",
    "__version__",
    "available_datasets",
    "available_walkers",
    "barbell_graph",
    "build_api",
    "clustered_cliques_graph",
    "disable_telemetry",
    "dump_crawl",
    "empirical_distribution",
    "enable_telemetry",
    "estimate",
    "estimate_crawl_time",
    "global_registry",
    "ground_truth",
    "kl_divergence",
    "l2_distance",
    "load_cluster",
    "load_crawl",
    "load_dataset",
    "load_edge_list",
    "load_shard",
    "load_snapshot",
    "make_grouping",
    "make_vector_kernel",
    "make_walker",
    "partition_snapshot",
    "relative_error",
    "render_trace_tree",
    "repartition",
    "save_snapshot",
    "serve_backend",
    "serve_backend_async",
    "walk_fingerprint",
    "summarize",
    "symmetric_kl_divergence",
    "telemetry",
    "telemetry_enabled",
    "theoretical_distribution",
    "twitter_policy",
    "yelp_policy",
]
