"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause while still being able
to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for graph-related errors."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node id is not present in a graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge is not present in a graph."""

    def __init__(self, u, v):
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph."""


class AttributeNotFoundError(GraphError, KeyError):
    """Raised when a node attribute requested by name does not exist."""

    def __init__(self, node, attribute):
        super().__init__(f"node {node!r} has no attribute {attribute!r}")
        self.node = node
        self.attribute = attribute


class LoaderError(GraphError):
    """Raised when an edge-list file cannot be parsed."""


class APIError(ReproError):
    """Base class for simulated-API errors."""


class QueryBudgetExceededError(APIError):
    """Raised when the unique-query budget of a crawl is exhausted."""

    def __init__(self, budget, spent=None):
        detail = f"query budget of {budget} unique queries exhausted"
        if spent is not None:
            detail += f" (spent {spent})"
        super().__init__(detail)
        self.budget = budget
        self.spent = spent


class RateLimitExceededError(APIError):
    """Raised when a rate-limit policy rejects a query instead of waiting."""

    def __init__(self, retry_after=None):
        detail = "rate limit exceeded"
        if retry_after is not None:
            detail += f"; retry after {retry_after:.3f}s (simulated)"
        super().__init__(detail)
        self.retry_after = retry_after


class WalkError(ReproError):
    """Base class for random-walk errors."""


class DeadEndError(WalkError):
    """Raised when a walk reaches a node with no neighbors."""

    def __init__(self, node):
        super().__init__(f"walk reached dead-end node {node!r} with no neighbors")
        self.node = node


class InvalidStartNodeError(WalkError):
    """Raised when the requested start node is unusable (missing/isolated)."""


class EstimationError(ReproError):
    """Base class for estimation errors."""


class InsufficientSamplesError(EstimationError):
    """Raised when an estimator is asked for a value with no usable samples."""


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""


class InvalidConfigurationError(ExperimentError, ValueError):
    """Raised when an experiment configuration is inconsistent."""
