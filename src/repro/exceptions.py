"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause while still being able
to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for graph-related errors."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node id is not present in a graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node

    def __str__(self) -> str:
        # KeyError.__str__ reprs its argument (useful for bare keys, noisy
        # quotes around a full sentence); restore the plain message.
        return Exception.__str__(self)

    def __reduce__(self):
        # args holds the rendered message, not the constructor arguments;
        # rebuild from the real ones so pickling across a process pool
        # round-trips instead of re-wrapping the message.
        return (type(self), (self.node,))


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge is not present in a graph."""

    def __init__(self, u, v):
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return Exception.__str__(self)

    def __reduce__(self):
        return (type(self), (self.u, self.v))


class EmptyGraphError(GraphError):
    """Raised when an operation requires a non-empty graph."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph."""


class AttributeNotFoundError(GraphError, KeyError):
    """Raised when a node attribute requested by name does not exist."""

    def __init__(self, node, attribute):
        super().__init__(f"node {node!r} has no attribute {attribute!r}")
        self.node = node
        self.attribute = attribute

    def __str__(self) -> str:
        return Exception.__str__(self)

    def __reduce__(self):
        return (type(self), (self.node, self.attribute))


class LoaderError(GraphError):
    """Raised when an edge-list file cannot be parsed."""


class StorageError(ReproError):
    """Base class for on-disk storage errors (snapshots, crawl dumps)."""


class SnapshotError(StorageError):
    """Raised when a CSR snapshot directory is missing or malformed."""


class CrawlDumpError(StorageError):
    """Raised when a crawl-dump file is missing or malformed."""


class ReplayMissError(NodeNotFoundError, StorageError):
    """Raised when a replayed crawl is asked for a node outside its dump.

    Subclasses :class:`NodeNotFoundError` so the middleware's batch-accounting
    semantics treat a replay miss exactly like a missing node, while callers
    that care can still distinguish "never crawled" from "not in the graph".
    """

    def __init__(self, node, source=None):
        detail = f"node {node!r} was never fetched in the recorded crawl"
        if source is not None:
            detail += f" (dump: {source})"
        Exception.__init__(self, detail)
        self.node = node
        self.source = source

    def __reduce__(self):
        # args holds the rendered message, not (node, source); rebuild from
        # the real constructor arguments so pickling (e.g. across a process
        # pool) round-trips instead of re-wrapping the message.
        return (type(self), (self.node, self.source))


class WarehouseError(StorageError):
    """Raised when a crawl warehouse is missing, malformed or misused.

    Covers files that are not ``repro-warehouse`` SQLite stores, version
    mismatches, node ids that cannot survive the canonical JSON key encoding,
    and exports the warehouse cannot honour (e.g. a snapshot export of a
    store whose crawls never fetched some boundary neighbors).
    """


class IngestConflictError(WarehouseError):
    """Raised when an ingested crawl contradicts what the warehouse holds.

    Merging crawls dedupes nodes by id, which is only sound when duplicate
    records *agree*: a node arriving with different neighbor rows, different
    attributes, or a boundary metadata degree that contradicts an already
    ingested record means the crawls saw different graphs, and silently
    keeping either version would poison every aggregate and replayed walk.
    The whole ingest is rolled back; ``node`` names the offending id.
    """

    def __init__(self, node, detail, source=None):
        message = f"crawl conflict on node {node!r}: {detail}"
        if source is not None:
            message += f" (ingesting {source})"
        super().__init__(message)
        self.node = node
        self.detail = detail
        self.source = source

    def __reduce__(self):
        # args holds the rendered message; rebuild from the real constructor
        # arguments so pickling across a process pool round-trips.
        return (type(self), (self.node, self.detail, self.source))


class RemoteBackendError(ReproError):
    """Raised when a remote graph service cannot satisfy a request.

    Covers transport failures (connection refused, timeouts), persistent
    server errors (5xx after the bounded retries are exhausted), malformed
    response bodies, and protocol violations.  Node-level misses are *not*
    remote errors: the client maps an HTTP 404 carrying a node id back to
    :class:`NodeNotFoundError` / :class:`ReplayMissError`, so remote and
    local backends raise identically.
    """

    def __init__(self, message, url=None, status=None, attempts=None):
        super().__init__(message)
        self.url = url
        self.status = status
        self.attempts = attempts


class ClusterError(ReproError):
    """Base class for sharded-cluster errors.

    Covers malformed ``cluster.json`` manifests, ring-specification
    mismatches, and node ids the consistent-hash ring cannot route.
    Per-shard failures carry attribution through the :class:`ShardError`
    subclass.
    """


class ShardError(ClusterError):
    """Raised when one shard of a cluster fails to answer.

    Node-level misses are *not* shard errors: a :class:`ShardedBackend`
    surfaces :class:`NodeNotFoundError` / :class:`ReplayMissError` unchanged,
    so sharded and local backends raise identically.  Everything else —
    transport failures, exhausted retries, a shard process dying mid-ensemble
    — is wrapped with the failing shard's index and address so an operator
    knows *which* machine to look at.

    On a replicated layout (``partition_snapshot(..., replicas=k)``) the
    backend fails reads over to the next live replica first, so this only
    escapes once *every* replica of the node's range is down; the message
    then lists the shards tried and ``__cause__`` chains the last per-shard
    failure.
    """

    def __init__(self, message, shard=None, url=None):
        super().__init__(message)
        self.shard = shard
        self.url = url


class StaleManifestError(ShardError):
    """Raised when a shard serves a different membership epoch than the
    client's ``cluster.json``.

    ``repartition`` bumps the manifest ``epoch`` whenever shard membership
    or the replica spec changes, and every shard republishes its epoch on
    ``GET /info``.  A client holding the old manifest would silently
    mis-route reads, so ``load_cluster`` compares the published epochs up
    front and refuses with this error instead; re-read the manifest to
    recover.
    """


class TenantError(ReproError):
    """Base class for multi-tenant service-policy errors."""


class TenantConfigError(TenantError):
    """Raised when a ``tenants.json`` policy file is missing or malformed.

    Covers files that are not ``repro-graph-tenants`` JSON, version
    mismatches, duplicate tenant names, and per-tenant policy specs that do
    not describe a budget / rate limit the middleware can build.
    """


class TenantAuthError(TenantError):
    """Raised when a request carries no (or an unknown) tenant API key.

    Only raised server-side, where the asyncio frontend maps it to an HTTP
    401; a client sees that as a :class:`RemoteBackendError` with
    ``status=401`` and the server's message.
    """


class APIError(ReproError):
    """Base class for simulated-API errors."""


class QueryBudgetExceededError(APIError):
    """Raised when the unique-query budget of a crawl is exhausted."""

    def __init__(self, budget, spent=None):
        detail = f"query budget of {budget} unique queries exhausted"
        if spent is not None:
            detail += f" (spent {spent})"
        super().__init__(detail)
        self.budget = budget
        self.spent = spent


class RateLimitExceededError(APIError):
    """Raised when a rate-limit policy rejects a query instead of waiting."""

    def __init__(self, retry_after=None):
        detail = "rate limit exceeded"
        if retry_after is not None:
            detail += f"; retry after {retry_after:.3f}s (simulated)"
        super().__init__(detail)
        self.retry_after = retry_after


class WalkError(ReproError):
    """Base class for random-walk errors."""


class VectorizationError(WalkError):
    """Raised when a configuration cannot run on the vectorised engine.

    The vector scheduler needs an array-capable innermost backend (the CSR
    family) and a kernel with an array-native transition rule; remote,
    sharded and warehouse backends, bounded caches, rate limits, shuffled
    neighbor order and kernels like GNRW stay on the scalar lockstep path.
    ``SamplingSession.run_ensemble(mode="vector")`` catches this error and
    falls back to the scalar scheduler with a warning; constructing a
    :class:`~repro.engine.vector.VectorScheduler` directly surfaces it.
    """


class DeadEndError(WalkError):
    """Raised when a walk reaches a node with no neighbors."""

    def __init__(self, node):
        super().__init__(f"walk reached dead-end node {node!r} with no neighbors")
        self.node = node


class InvalidStartNodeError(WalkError):
    """Raised when the requested start node is unusable (missing/isolated)."""


class EstimationError(ReproError):
    """Base class for estimation errors."""


class InsufficientSamplesError(EstimationError):
    """Raised when an estimator is asked for a value with no usable samples."""


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""


class InvalidConfigurationError(ExperimentError, ValueError):
    """Raised when an experiment configuration is inconsistent."""
