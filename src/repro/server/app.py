"""Stdlib JSON-over-HTTP graph service over any :class:`GraphBackend`.

:func:`serve_backend` binds a :class:`GraphHTTPServer` (a
``http.server.ThreadingHTTPServer``) over any graph source —
an in-memory :class:`~repro.graphs.graph.Graph`, a CSR backend, a
memory-mapped snapshot directory or a crawl-dump replay — and
:class:`GraphRequestHandler` answers the wire protocol of
:mod:`repro.api.remote` (the PR-3 crawl-record JSON):

* ``GET /info`` — service descriptor,
* ``GET /node/<id>`` — one neighborhood record (404 + error JSON on a miss),
* ``POST /nodes`` — batched ``fetch_many`` (atomic; a miss 404s the batch),
* ``GET /meta/<id>`` — the free profile summary ``peek_metadata`` serves,
* ``GET /node-ids`` — every node id in backend order.

Node-level errors carry typed JSON bodies so the client can reconstruct the
exact local exception: ``{"error": "not_found" | "replay_miss", "node": ...,
"message": ...}`` — a replay-backed server reports out-of-dump queries with
the original node id and dump path intact.  Backend or serialisation failures
become 500s with an ``error: server_error`` body.

The server counts requests per endpoint and the total node records served
(``endpoint_counts`` / ``nodes_served``), which is how the test suite pins
"a cached walk hits the network exactly ``unique_queries`` times".
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.parse
import weakref
from collections import Counter
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..api.backend import GraphBackend, as_backend
from ..api.remote import WIRE_FORMAT, WIRE_VERSION, decode_node_id, record_to_wire
from ..exceptions import NodeNotFoundError, ReplayMissError
from ..obs import (
    SPAN_ECHO_HEADER,
    TRACE_HEADER,
    MetricsRegistry,
    format_span_echo,
    new_span_id,
    parse_trace_header,
)
from .wire import (
    MAX_HEADERS,
    MAX_LINE,
    HeaderLineError,
    LeanHeaders,
    reachable_url,
    store_header_line,
)

#: Back-compat alias: the header map moved to :mod:`repro.server.wire` so the
#: asyncio frontend shares it.
_LeanHeaders = LeanHeaders


class _BadRequest(Exception):
    """Internal: a request the handler rejects with HTTP 400."""


class GraphRequestHandler(BaseHTTPRequestHandler):
    """Route one HTTP request to the server's backend.

    ``protocol_version = "HTTP/1.1"`` enables keep-alive, so a client reuses
    one connection for a whole crawl; every response carries an exact
    ``Content-Length``.  Subclasses may override :meth:`inject_fault` to
    simulate a misbehaving service (the test suite's fault-injection layer).
    """

    protocol_version = "HTTP/1.1"
    server_version = f"{WIRE_FORMAT}/{WIRE_VERSION}"
    #: Idle keep-alive connections are dropped after this many seconds, so a
    #: vanished client can never pin a handler thread forever.
    timeout = 30
    #: TCP_NODELAY: the response is written as headers then body; with Nagle
    #: on, the body write stalls behind the peer's delayed ACK (~40ms per
    #: request), which would dominate a whole crawl of small responses.
    disable_nagle_algorithm = True
    #: Buffer response writes (stdlib default is unbuffered): headers and
    #: body coalesce into one TCP segment, flushed once per request by
    #: ``handle_one_request`` — halving the write syscalls of every response.
    wbufsize = -1

    def parse_request(self) -> bool:
        """Parse one request, bypassing ``email.parser`` on the fast path.

        The stdlib parses every request's headers into an
        ``email.message.Message`` — ~0.1 ms of pure CPU per request, which
        out-costs the graph fetch itself on a loopback crawl and multiplies
        by the fan-out on a sharded tier.  A well-formed ``HTTP/1.1``
        request (every client of this wire) takes the lean path: split the
        request line, collect raw header lines into a :class:`_LeanHeaders`
        map.  Anything else — other HTTP versions, malformed request lines —
        falls back to the stdlib parser for its full error handling.
        """
        requestline = str(self.raw_requestline, "iso-8859-1").rstrip("\r\n")
        words = requestline.split()
        if len(words) != 3 or words[2] != "HTTP/1.1":
            return super().parse_request()
        self.requestline = requestline
        self.command, self.path, self.request_version = words
        self.close_connection = False
        raw: Dict[bytes, bytes] = {}
        while True:
            line = self.rfile.readline(MAX_LINE + 1)
            if len(line) > MAX_LINE:
                self.send_error(431, "Line too long")
                return False
            if not line:
                # EOF mid-headers: the client died (or shut its write side)
                # before finishing the request.  This is *not* the blank line
                # that ends a header block — dispatching the half-sent
                # request would serve a response nobody can receive, and for
                # a POST it would misread whatever never arrived.  Drop the
                # connection without responding.
                self.close_connection = True
                return False
            if line in (b"\r\n", b"\n"):
                break
            if len(raw) >= MAX_HEADERS:
                # Mirror http.client's _MAXHEADERS: without a cap one
                # connection could grow the dict without bound.
                self.send_error(431, "Too many headers")
                return False
            try:
                store_header_line(raw, line)
            except HeaderLineError as error:
                # send_error answers with ``Connection: close``, so a
                # conflicting-duplicate probe can never leave ambiguous
                # framing on a kept-alive socket.
                self.send_error(error.status, error.message)
                return False
        self.headers = _LeanHeaders(raw)
        if raw.get(b"connection", b"").lower() == b"close":
            self.close_connection = True
        if raw.get(b"expect", b"").lower() == b"100-continue":
            if not self.handle_expect_100():
                return False
        return True

    @property
    def backend(self) -> GraphBackend:
        return self.server.graph_backend

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence the default per-request stderr logging."""

    def send_response(self, code, message=None):
        """Send the status line only — no ``Server`` / ``Date`` headers.

        Neither header is consumed by any client of this wire, but both are
        formatted per response (``Date`` runs strftime) and parsed per
        response on the client; at thousands of tiny keep-alive exchanges
        per crawl the two lines are measurable on both ends.
        """
        self.send_response_only(code, message)

    def inject_fault(self) -> bool:
        """Hook for fault injection; return True to swallow the request."""
        return False

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        """A text/plain response (the Prometheus ``/metrics`` exposition)."""
        self._send_body(
            status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_ctx = getattr(self, "_trace_ctx", None)
        if trace_ctx is not None:
            # Trace echo: the server's completed span, duration measured from
            # dispatch start to the response header write (the residual body
            # write is a few microseconds on loopback).
            trace_id, parent_span = trace_ctx
            duration_ms = (time.perf_counter() - self._dispatch_started) * 1000.0
            self.send_header(
                SPAN_ECHO_HEADER,
                format_span_echo(
                    trace_id, self._server_span_id, parent_span, duration_ms,
                    "server" + getattr(self, "_endpoint", "/"),
                ),
            )
        if self.close_connection:
            # Tell the client the keep-alive ends here (e.g. after a request
            # whose body could not be drained), so it reconnects cleanly
            # instead of discovering a dead socket on its next request.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_node_error(self, error: NodeNotFoundError) -> None:
        payload: Dict[str, Any] = {
            "error": "replay_miss" if isinstance(error, ReplayMissError) else "not_found",
            "message": str(error),
        }
        try:
            json.dumps(error.node)
            payload["node"] = error.node
        except (TypeError, ValueError):
            # A non-JSON-able id can only have been produced server-side (the
            # wire always delivers JSON values); degrade to its repr.
            payload["node"] = repr(error.node)
        source = getattr(error, "source", None)
        if source is not None:
            payload["source"] = str(source)
        self._send_json(404, payload)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_node(segment: str):
        try:
            return decode_node_id(segment)
        except ValueError:
            raise _BadRequest(
                f"node id path segment {segment!r} is not JSON "
                f"(ids travel JSON-encoded, percent-escaped)"
            ) from None

    def _read_body(self) -> Optional[bytes]:
        """Drain the request body exactly once, before any response.

        Responding without consuming the body would leave it in the socket,
        where it poisons the next keep-alive request's parse — so this runs
        for *every* request (fault-injected and error responses included).
        ``None`` means the Content-Length header was unreadable; the
        connection is already marked for closing.
        """
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return b""
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            # Unreadable or negative: rfile.read(-1) would block on the
            # keep-alive socket until the handler timeout, pinning a worker.
            self.close_connection = True
            return None
        return self.rfile.read(length)

    def _dispatch(self, route) -> None:
        self._dispatch_started = time.perf_counter()
        path = urllib.parse.urlsplit(self.path).path
        self._endpoint = (
            "/" + path.lstrip("/").split("/", 1)[0] if path.strip("/") else "/"
        )
        # Trace context travels as an additive header; malformed or absent
        # values leave tracing off for this request (never a refusal).
        self._trace_ctx = parse_trace_header(self.headers.get(TRACE_HEADER))
        self._server_span_id = new_span_id() if self._trace_ctx is not None else ""
        self._status_sent = 0
        self.server.note_request(self.command, path)
        self._body = self._read_body()
        if self.inject_fault():
            return
        try:
            route()
        except _BadRequest as error:
            self._send_json(400, {"error": "bad_request", "message": str(error)})
        except NodeNotFoundError as error:
            self._send_node_error(error)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - surface as HTTP 500
            self._send_json(
                500,
                {"error": "server_error", "message": f"{type(error).__name__}: {error}"},
            )
        finally:
            if self._status_sent:
                duration_ms = (time.perf_counter() - self._dispatch_started) * 1000.0
                self.server.note_response(self._endpoint, self._status_sent, duration_ms)

    def do_GET(self) -> None:
        self._dispatch(self._route_get)

    def do_POST(self) -> None:
        self._dispatch(self._route_post)

    def _route_get(self) -> None:
        path = urllib.parse.urlsplit(self.path).path
        backend = self.backend
        if path == "/info":
            descriptor = {
                "format": WIRE_FORMAT,
                "version": WIRE_VERSION,
                "name": backend.name,
                "nodes": len(backend),
                "backend": type(backend).__name__,
            }
            # Replay-backed servers publish the dump's recorded start so a
            # remote client can restart the recorded crawl without pulling
            # the whole id table.
            start = getattr(backend, "recorded_start", None)
            if start is not None:
                descriptor["start"] = start
            # Shard slices publish their membership epoch and replica spec
            # so cluster clients can detect a stale manifest after a
            # repartition without any new wire version.
            epoch = getattr(backend, "epoch", None)
            if epoch is not None:
                descriptor["epoch"] = epoch
            shard = getattr(backend, "shard", None)
            if shard is not None:
                descriptor["shard"] = shard
            replicas = getattr(backend, "replicas", None)
            if replicas is not None:
                descriptor["replicas"] = replicas
            self._send_json(200, descriptor)
        elif path == "/node-ids":
            self._send_json(200, {"nodes": backend.node_ids()})
        elif path == "/stats":
            self._send_json(200, self.server.stats_payload())
        elif path == "/metrics":
            self._send_text(200, self.server.metrics.render_prometheus())
        elif path.startswith("/node/"):
            node = self._decode_node(path[len("/node/"):])
            record = backend.fetch(node)
            self.server.note_served(1)
            self._send_json(200, record_to_wire(record))
        elif path.startswith("/meta/"):
            node = self._decode_node(path[len("/meta/"):])
            payload: Dict[str, Any] = {"meta": node, "contains": bool(backend.contains(node))}
            summary = backend.metadata(node)
            if summary is not None:
                payload["degree"] = summary.get("degree")
                payload["attributes"] = summary.get("attributes", {})
            self._send_json(200, payload)
        else:
            self._send_json(
                404, {"error": "unknown_endpoint", "message": f"no endpoint at {path}"}
            )

    def _route_post(self) -> None:
        path = urllib.parse.urlsplit(self.path).path
        if path != "/nodes":
            self._send_json(
                404, {"error": "unknown_endpoint", "message": f"no endpoint at {path}"}
            )
            return
        if self._body is None:
            raise _BadRequest("Content-Length is not an integer")
        try:
            payload = json.loads(self._body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not JSON: {error}") from None
        nodes = payload.get("nodes") if isinstance(payload, dict) else None
        if not isinstance(nodes, list):
            raise _BadRequest('request body must be {"nodes": [...]}')
        records = self.backend.fetch_many(nodes)
        self.server.note_served(len(records))
        self._send_json(200, {"records": [record_to_wire(record) for record in records]})


class GraphHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`GraphBackend`.

    Build one with :func:`serve_backend`.  :meth:`start` serves from a named
    daemon thread; :meth:`close` stops the accept loop, force-closes any
    still-open keep-alive connections (so no handler thread can linger on a
    blocked read) and joins every thread — the test suite asserts that no
    server outlives its fixture.  Use as a context manager for the
    start/close pairing.
    """

    daemon_threads = True
    #: Every not-yet-closed server, so the test suite can assert zero leaks.
    _live: "weakref.WeakSet[GraphHTTPServer]" = weakref.WeakSet()

    def __init__(self, address, handler_class, backend: GraphBackend) -> None:
        super().__init__(address, handler_class)
        self.graph_backend = backend
        self.endpoint_counts: Counter = Counter()
        self._nodes_served = 0
        #: Per-server registry: isolated from other servers in the process,
        #: rendered by ``GET /metrics``, reset atomically by `reset_stats`.
        self.metrics = MetricsRegistry()
        self._stats_lock = threading.Lock()
        self._connections_lock = threading.Lock()
        self._connections: set = set()
        self._handler_threads: List[threading.Thread] = []
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        GraphHTTPServer._live.add(self)

    # ------------------------------------------------------------------
    # Request accounting (used by tests to pin network-hit counts)
    # ------------------------------------------------------------------
    def note_request(self, method: str, path: str) -> None:
        endpoint = "/" + path.lstrip("/").split("/", 1)[0] if path.strip("/") else "/"
        with self._stats_lock:
            self.endpoint_counts[endpoint] += 1

    def note_served(self, count: int) -> None:
        with self._stats_lock:
            self._nodes_served += count
        self.metrics.inc("repro_server_nodes_served_total", count)

    def note_response(self, endpoint: str, status: int, duration_ms: float) -> None:
        """Fold one completed exchange into the registry (handler threads)."""
        self.metrics.inc(
            "repro_server_requests_total", endpoint=endpoint, status=status
        )
        self.metrics.observe("repro_server_request_ms", duration_ms, endpoint=endpoint)

    @property
    def nodes_served(self) -> int:
        """Total node records served across ``/node`` and ``/nodes``."""
        with self._stats_lock:
            return self._nodes_served

    def stats_payload(self) -> Dict[str, Any]:
        """The ``GET /stats`` body — same shape as the asyncio frontend's."""
        with self._stats_lock:
            payload: Dict[str, Any] = {
                "format": WIRE_FORMAT,
                "version": WIRE_VERSION,
                "server": "threaded",
                "endpoints": dict(self.endpoint_counts),
                "nodes_served": self._nodes_served,
                "tenants": {},
            }
        payload["latency"] = {
            "endpoints": self.metrics.histogram_family(
                "repro_server_request_ms", "endpoint"
            ),
        }
        return payload

    def reset_stats(self) -> None:
        """Zero every reported figure — counts and registry — atomically.

        Holding ``_stats_lock`` across both makes the reset indivisible with
        respect to `stats_payload`; the registry's own lock makes it
        indivisible with respect to a concurrent ``/metrics`` scrape.
        """
        with self._stats_lock:
            self.endpoint_counts.clear()
            self._nodes_served = 0
            self.metrics.reset()

    # ------------------------------------------------------------------
    # Connection tracking (so close() never hangs on a keep-alive socket)
    # ------------------------------------------------------------------
    def get_request(self):
        request, client_address = super().get_request()
        with self._connections_lock:
            self._connections.add(request)
        return request, client_address

    def shutdown_request(self, request) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def process_request(self, request, client_address) -> None:
        # ThreadingMixIn only records non-daemon threads before Python 3.11,
        # so close() could not join ours through server_close() everywhere;
        # spawn and track handler threads explicitly (named, so the test
        # suite's leak check can see them).
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            name="repro-http-handler",
            daemon=True,
        )
        with self._connections_lock:
            self._handler_threads = [t for t in self._handler_threads if t.is_alive()]
            self._handler_threads.append(thread)
        thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """A client-connectable URL for the bound address.

        Wildcard binds (``0.0.0.0`` / ``::``) resolve to the matching
        loopback — the literal wildcard is not connectable — and IPv6 hosts
        are bracketed so the URL authority parses.
        """
        host, port = self.server_address[:2]
        return reachable_url(host, port)

    def start(self) -> "GraphHTTPServer":
        """Serve from a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server is already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-http-server", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving, unblock every open connection, join all threads."""
        if self._closed:
            return
        self._closed = True
        GraphHTTPServer._live.discard(self)
        if self._thread is not None:
            self.shutdown()
        with self._connections_lock:
            open_connections = list(self._connections)
        for connection in open_connections:
            # Wake handler threads blocked reading the next keep-alive
            # request; their readline returns EOF and the thread exits.
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.server_close()
        with self._connections_lock:
            handler_threads = list(self._handler_threads)
            self._handler_threads = []
        for thread in handler_threads:
            thread.join(timeout=10)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    @property
    def closed(self) -> bool:
        return self._closed

    @classmethod
    def live_servers(cls) -> List["GraphHTTPServer"]:
        """Every server not yet closed (leak detection in the test suite)."""
        return list(cls._live)

    def __enter__(self) -> "GraphHTTPServer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_backend(
    source,
    host: str = "127.0.0.1",
    port: int = 0,
    handler_class=GraphRequestHandler,
) -> GraphHTTPServer:
    """Bind a :class:`GraphHTTPServer` over ``source`` and return it (not serving yet).

    ``source`` is anything :func:`~repro.api.backend.as_backend` accepts: a
    graph, a backend, or a path to a snapshot directory / crawl dump.
    ``port=0`` binds an ephemeral port (read it back from ``server.url``).
    Call :meth:`~GraphHTTPServer.start` (or enter the context manager) to
    serve from a background thread, or ``serve_forever()`` to serve in the
    foreground as the CLI does.
    """
    backend = as_backend(source)
    return GraphHTTPServer((host, port), handler_class, backend)
