"""Server-side per-tenant policy for the multi-tenant graph service.

PR 1 built the budget / rate-limit middleware, but until this module it only
ever ran *client-side* — the paper's restrictive API was simulated inside the
crawler's own process.  Here the same policy objects
(:class:`~repro.api.budget.QueryBudget`,
:class:`~repro.api.ratelimit.RateLimitPolicy`) are promoted to the serving
tier: a ``tenants.json`` file maps API keys to named tenants, each carrying
its own budget, rate limit and usage counters, and the asyncio frontend
(:mod:`repro.server.aio`) enforces them per request — a 429 with a typed JSON
body instead of an in-process exception.

The tenants file is versioned like every other format in the tree::

    {
      "format": "repro-graph-tenants",
      "version": 1,
      "tenants": {
        "alice-key": {"name": "alice", "budget": 10000,
                       "rate_limit": {"max_calls": 100, "window_seconds": 1.0}},
        "bob-key":   {"name": "bob"}
      }
    }

``budget`` is the tenant's unique-node allowance (``null`` / absent =
unlimited) billed exactly like the paper's cost model: only *fresh* nodes the
tenant has never been served count, so a tenant's revisits are free just as
they are against a client-side cache.  ``rate_limit`` is a rolling
fixed-window policy over billable neighborhood requests (``GET /node``,
``POST /nodes``, ``POST /walk``) — the shape of the Twitter/Yelp limits the
paper cites.  Malformed files fail typed
(:class:`~repro.exceptions.TenantConfigError`); unknown or missing keys at
request time raise :class:`~repro.exceptions.TenantAuthError`, which the
server answers with HTTP 401.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..api.budget import QueryBudget
from ..api.ratelimit import FixedWindowPolicy, RateLimitPolicy
from ..exceptions import (
    QueryBudgetExceededError,
    RateLimitExceededError,
    TenantAuthError,
    TenantConfigError,
)
from ..types import NodeId

#: Format identifier of a tenants policy file.
TENANTS_FORMAT = "repro-graph-tenants"
#: Current tenants-file version; bump on any incompatible change.
TENANTS_VERSION = 1

#: Header carrying the tenant API key on every request.
API_KEY_HEADER = "X-Api-Key"


class WallClock:
    """Real time behind the :class:`~repro.api.ratelimit.SimulatedClock` API.

    Server-side rate limits must roll with actual wall time, but the policy
    objects are written against the simulated clock's ``now`` / ``advance``
    interface.  ``now`` is ``time.monotonic()``; ``advance`` is refused
    because a *server* never blocks a request to wait a window out — it
    answers 429 with ``retry_after`` and lets the client decide.
    """

    @property
    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> float:
        raise RuntimeError(
            "the wall clock cannot be advanced; server-side policies must "
            "acquire with blocking=False"
        )


class TenantPolicy:
    """One tenant's server-side policy state and usage counters.

    Mutated only from the server's event loop (the asyncio frontend is
    single-threaded), read from any thread via :meth:`stats_payload`.
    """

    def __init__(
        self,
        name: str,
        *,
        budget: Optional[int] = None,
        rate_limit: Optional[RateLimitPolicy] = None,
    ) -> None:
        self.name = name
        self.budget = QueryBudget(budget)
        self.rate_limit = rate_limit
        self.endpoint_counts: Counter = Counter()
        self.nodes_served = 0
        self.walks = 0
        self.rate_limited = 0
        self.budget_denied = 0
        #: Node ids already billed against the budget: the paper's cost model
        #: bills *unique* queries, so a tenant's revisits are free (bounded by
        #: the budget — an unlimited tenant skips the tracking entirely).
        self._seen: set = set()

    # ------------------------------------------------------------------
    # Enforcement (called per request by the asyncio frontend)
    # ------------------------------------------------------------------
    def charge_request(self, endpoint: str) -> None:
        self.endpoint_counts[endpoint] += 1

    def acquire_slot(self, clock) -> None:
        """Take one rate-limit slot, or raise the typed 429 error."""
        if self.rate_limit is None:
            return
        try:
            self.rate_limit.acquire(clock, blocking=False)
        except RateLimitExceededError:
            self.rate_limited += 1
            raise

    def reserve_nodes(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        """The not-yet-billed subset of ``nodes``; raises when it cannot fit.

        Raising *before* the backend fetch keeps a denied request free: no
        partial billing, no records served.
        """
        if self.budget.unlimited:
            return []
        fresh: List[NodeId] = []
        batch: set = set()
        for node in nodes:
            if node not in self._seen and node not in batch:
                batch.add(node)
                fresh.append(node)
        if not self.budget.can_spend(len(fresh)):
            self.budget_denied += 1
            raise QueryBudgetExceededError(self.budget.limit, spent=self.budget.spent)
        return fresh

    def commit_nodes(self, fresh: Sequence[NodeId], served: int) -> None:
        """Bill a successful fetch: spend the reservation, count the records."""
        if fresh:
            self.budget.spend(len(fresh))
            self._seen.update(fresh)
        self.nodes_served += served

    def bill_walk(self, unique_queries: int) -> None:
        """Bill one server-side walk's unique-query cost against the budget.

        The walk ran under its own fresh stack (so its accounting matches a
        local run bit-for-bit); here its cost lands on the tenant.  The spend
        is clamped to the remaining allowance: concurrent walks of one tenant
        may jointly overshoot the reservation made before they started, and a
        clamp (rather than an error after the work is done) keeps the budget
        a monotone gauge.
        """
        self.walks += 1
        self.nodes_served += unique_queries
        if not self.budget.unlimited:
            self.budget.spend(min(unique_queries, self.budget.remaining))

    @property
    def unique_nodes(self) -> int:
        return len(self._seen)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def reset_usage(self) -> None:
        """Zero the *reported* usage counters; enforcement state survives.

        Budget spend, billed-node tracking and rate-limit windows are policy
        — resetting them on a stats reset would hand a tenant its allowance
        back.  Only the figures `stats_payload` reports as usage are cleared.
        """
        self.endpoint_counts.clear()
        self.nodes_served = 0
        self.walks = 0
        self.rate_limited = 0
        self.budget_denied = 0

    def stats_payload(self) -> Dict[str, Any]:
        """The tenant's ``GET /stats`` entry (JSON-ready)."""
        payload: Dict[str, Any] = {
            "endpoints": dict(self.endpoint_counts),
            "nodes_served": self.nodes_served,
            "unique_nodes": self.unique_nodes,
            "walks": self.walks,
            "rate_limited": self.rate_limited,
            "budget_denied": self.budget_denied,
            "budget": None,
            "rate_limit": None,
        }
        if not self.budget.unlimited:
            payload["budget"] = {
                "limit": self.budget.limit,
                "spent": self.budget.spent,
                "remaining": self.budget.remaining,
            }
        if isinstance(self.rate_limit, FixedWindowPolicy):
            payload["rate_limit"] = {
                "max_calls": self.rate_limit.max_calls,
                "window_seconds": self.rate_limit.window_seconds,
            }
        elif self.rate_limit is not None:
            payload["rate_limit"] = {"policy": type(self.rate_limit).__name__}
        return payload


class TenantRegistry:
    """API key -> :class:`TenantPolicy` resolution for one server.

    An *open* registry (no tenants configured) resolves every request —
    keyed or not — to one shared unlimited ``public`` tenant, so a plain
    ``serve --async`` behaves exactly like the threaded frontend.  A
    registry built from a tenants file *requires* a known key and answers
    anything else with :class:`~repro.exceptions.TenantAuthError`.
    """

    def __init__(self, policies: Optional[Dict[str, TenantPolicy]] = None) -> None:
        self._by_key = dict(policies or {})
        names = [policy.name for policy in self._by_key.values()]
        if len(names) != len(set(names)):
            raise TenantConfigError(
                f"tenant names must be unique (stats are keyed by name), "
                f"got {sorted(names)}"
            )
        self._default = TenantPolicy("public") if not self._by_key else None

    @property
    def open(self) -> bool:
        """Whether the service accepts unkeyed requests (no tenants file)."""
        return self._default is not None

    def resolve(self, api_key: Optional[str]) -> TenantPolicy:
        if self._default is not None:
            return self._default
        if api_key is None:
            raise TenantAuthError(
                f"this service requires a tenant API key "
                f"({API_KEY_HEADER} header)"
            )
        policy = self._by_key.get(api_key)
        if policy is None:
            raise TenantAuthError("unknown API key")
        return policy

    def policies(self) -> List[TenantPolicy]:
        """Every tenant (the default one included), for ``/stats``."""
        if self._default is not None:
            return [self._default]
        return list(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key) if self._by_key else 1


def _build_policy(key: str, spec: Any) -> TenantPolicy:
    if not isinstance(spec, dict):
        raise TenantConfigError(
            f"tenant entry for key {key!r} must be a JSON object, "
            f"got {type(spec).__name__}"
        )
    unknown = set(spec) - {"name", "budget", "rate_limit"}
    if unknown:
        raise TenantConfigError(
            f"tenant entry for key {key!r} has unknown fields {sorted(unknown)}"
        )
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise TenantConfigError(
            f"tenant entry for key {key!r} needs a non-empty string 'name'"
        )
    budget = spec.get("budget")
    if budget is not None and (not isinstance(budget, int) or budget < 0):
        raise TenantConfigError(
            f"tenant {name!r}: 'budget' must be a non-negative integer or null"
        )
    rate_limit = None
    rate_spec = spec.get("rate_limit")
    if rate_spec is not None:
        if (not isinstance(rate_spec, dict)
                or set(rate_spec) != {"max_calls", "window_seconds"}):
            raise TenantConfigError(
                f"tenant {name!r}: 'rate_limit' must be "
                f'{{"max_calls": N, "window_seconds": S}} or null'
            )
        try:
            rate_limit = FixedWindowPolicy(
                max_calls=int(rate_spec["max_calls"]),
                window_seconds=float(rate_spec["window_seconds"]),
            )
        except (TypeError, ValueError) as error:
            raise TenantConfigError(
                f"tenant {name!r}: invalid rate limit: {error}"
            ) from error
    return TenantPolicy(name, budget=budget, rate_limit=rate_limit)


def parse_tenants(payload: Any, source: str = "tenants") -> TenantRegistry:
    """Build a :class:`TenantRegistry` from a decoded tenants document."""
    if not isinstance(payload, dict):
        raise TenantConfigError(f"{source} must be a JSON object")
    if payload.get("format") != TENANTS_FORMAT:
        raise TenantConfigError(
            f"{source} is not a {TENANTS_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    if payload.get("version") != TENANTS_VERSION:
        raise TenantConfigError(
            f"{source} has version {payload.get('version')!r}; this server "
            f"reads version {TENANTS_VERSION}"
        )
    tenants = payload.get("tenants")
    if not isinstance(tenants, dict) or not tenants:
        raise TenantConfigError(
            f"{source} must map at least one API key under 'tenants'"
        )
    policies = {}
    for key, spec in tenants.items():
        if not isinstance(key, str) or not key:
            raise TenantConfigError(f"{source}: API keys must be non-empty strings")
        policies[key] = _build_policy(key, spec)
    return TenantRegistry(policies)


def load_tenants(path: Union[str, Path]) -> TenantRegistry:
    """Read and validate a ``tenants.json`` policy file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise TenantConfigError(f"tenants file {path} does not exist") from None
    except OSError as error:
        raise TenantConfigError(f"cannot read tenants file {path}: {error}") from error
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise TenantConfigError(f"tenants file {path} is not JSON: {error}") from error
    return parse_tenants(payload, source=str(path))


def build_registry(tenants) -> TenantRegistry:
    """Coerce any accepted ``tenants=`` spec into a :class:`TenantRegistry`.

    Accepts ``None`` (open service), a path to a ``tenants.json`` file, a
    decoded tenants document (dict), or an existing registry.
    """
    if tenants is None:
        return TenantRegistry()
    if isinstance(tenants, TenantRegistry):
        return tenants
    if isinstance(tenants, dict):
        return parse_tenants(tenants)
    if isinstance(tenants, (str, Path)):
        return load_tenants(tenants)
    raise TenantConfigError(
        f"tenants must be None, a path, a tenants document or a "
        f"TenantRegistry, got {type(tenants).__name__}"
    )
