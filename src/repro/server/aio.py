"""Asyncio multi-tenant graph service speaking the ``repro-graph-http`` wire.

:class:`AsyncGraphServer` is the second frontend over the same wire the
thread-per-connection :class:`~repro.server.app.GraphHTTPServer` serves — one
event loop instead of one thread per connection, so thousands of idle
keep-alive crawler connections cost a coroutine each rather than a stack
each.  The parser is the asyncio port of the PR-5 lean HTTP/1.1 path (shared
rules in :mod:`repro.server.wire`), and the endpoint surface is a strict
superset of the threaded server's:

* everything in :mod:`repro.server.app` (``/info``, ``/node/<id>``,
  ``/nodes``, ``/meta/<id>``, ``/node-ids``), wire-identical;
* ``POST /walk`` — run a whole random walk *server-side* (kernel, seed,
  steps, start -> path + fingerprint), collapsing a crawl's
  O(steps) round trips into one;
* ``GET /stats`` — per-tenant usage: endpoint counts, nodes served, budget
  remaining, rate-limit denials.

Multi-tenancy promotes the PR-1 middleware to *server-side policy*: a
``tenants.json`` file (:mod:`repro.server.tenants`) maps API keys to named
tenants, each with its own unique-node budget and rolling rate limit.
Budget exhaustion and throttling answer HTTP 429 with typed bodies
(``budget_exhausted`` / ``rate_limited``) that the client maps back to the
exact local exceptions, so a remote crawl against a restricted tenant fails
identically to a local crawl under the same middleware.

The server runs its event loop on one named daemon thread
(``repro-aio-server``); :meth:`start` / :meth:`close` and the stats surface
mirror the threaded server so fixtures, benchmarks and the CLI treat the two
interchangeably.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
import urllib.parse
import weakref
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..api.backend import GraphBackend, as_backend
from ..api.builder import build_api
from ..api.remote import (
    WIRE_FORMAT,
    WIRE_VERSION,
    decode_node_id,
    record_to_wire,
    walk_fingerprint,
)
from ..exceptions import (
    DeadEndError,
    InvalidConfigurationError,
    InvalidStartNodeError,
    NodeNotFoundError,
    QueryBudgetExceededError,
    RateLimitExceededError,
    ReplayMissError,
    TenantAuthError,
)
from ..obs import (
    SPAN_ECHO_HEADER,
    TRACE_HEADER,
    MetricsRegistry,
    format_span_echo,
    metrics as global_metrics,
    new_span_id,
    parse_trace_header,
    suppress_metrics,
)
from ..walks.factory import make_walker
from .tenants import API_KEY_HEADER, TenantPolicy, WallClock, build_registry
from .wire import (
    MAX_HEADERS,
    MAX_LINE,
    HeaderLineError,
    LeanHeaders,
    reachable_url,
    store_header_line,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}

#: Endpoints billed against a tenant's rate limit: the ones that cost the
#: upstream service work per the paper's cost model (neighborhood queries and
#: server-side walks).  ``/info``, ``/meta``, ``/node-ids`` and ``/stats``
#: stay free, like profile peeks in the paper.
_BILLABLE = {"/node", "/nodes", "/walk"}

#: Cap on a server-side walk when the request names neither steps nor budget
#: and the tenant is unlimited; without it one request could walk forever.
_MAX_FREE_WALK_STEPS = 100_000


class _BadRequest(Exception):
    """Internal: a request the server rejects with HTTP 400."""


class _ParseError(Exception):
    """A request the parser must refuse, with the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class _Request:
    method: str
    target: str
    headers: LeanHeaders
    body: bytes
    close: bool = False

    @property
    def path(self) -> str:
        return urllib.parse.urlsplit(self.target).path


def _node_error_payload(error: NodeNotFoundError) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "error": "replay_miss" if isinstance(error, ReplayMissError) else "not_found",
        "message": str(error),
    }
    try:
        json.dumps(error.node)
        payload["node"] = error.node
    except (TypeError, ValueError):
        payload["node"] = repr(error.node)
    source = getattr(error, "source", None)
    if source is not None:
        payload["source"] = str(source)
    return payload


class AsyncGraphServer:
    """An asyncio graph service bound to one :class:`GraphBackend`.

    The listening socket is bound eagerly in the constructor (so
    ``server_address`` / ``url`` exist before :meth:`start`), and the event
    loop runs on a named daemon thread once started.  :meth:`close` stops the
    loop, force-closes every open connection and joins the thread; the test
    suite asserts no server outlives its fixture, exactly as for the threaded
    frontend.

    Args:
        source: Anything :func:`~repro.api.backend.as_backend` accepts.
        host / port: Bind address; ``port=0`` picks an ephemeral port.
        tenants: ``None`` (open service), a ``tenants.json`` path, a decoded
            tenants document, or a :class:`~repro.server.tenants.TenantRegistry`.
        clock: Clock for rate-limit windows (defaults to the wall clock;
            tests inject a :class:`~repro.api.ratelimit.SimulatedClock`).
        access_log: Optional path; one JSON line is appended per request.
        timeout: Seconds a started request may dawdle mid-headers/body.
    """

    #: Every not-yet-closed server, so the test suite can assert zero leaks.
    _live: "weakref.WeakSet[AsyncGraphServer]" = weakref.WeakSet()

    def __init__(
        self,
        source,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tenants=None,
        clock=None,
        access_log=None,
        timeout: float = 30.0,
    ) -> None:
        self.graph_backend: GraphBackend = as_backend(source)
        self.tenants = build_registry(tenants)
        self._clock = clock if clock is not None else WallClock()
        self.timeout = timeout
        family = socket.AF_INET6 if ":" in str(host) else socket.AF_INET
        self._socket = socket.create_server((host, port), family=family)
        self.server_address = self._socket.getsockname()[:2]
        self._access_log_path = Path(access_log) if access_log is not None else None
        self._access_log = None
        self.endpoint_counts: Counter = Counter()
        self._nodes_served = 0
        #: Per-server registry: isolated from other servers in the process,
        #: rendered by ``GET /metrics``, reset atomically by `reset_stats`.
        self.metrics = MetricsRegistry()
        self._stats_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._writers: set = set()
        self._closed = False
        AsyncGraphServer._live.add(self)

    # ------------------------------------------------------------------
    # Request accounting (same surface as GraphHTTPServer)
    # ------------------------------------------------------------------
    def note_request(self, method: str, path: str) -> None:  # noqa: ARG002
        endpoint = "/" + path.lstrip("/").split("/", 1)[0] if path.strip("/") else "/"
        with self._stats_lock:
            self.endpoint_counts[endpoint] += 1

    def note_served(self, count: int) -> None:
        with self._stats_lock:
            self._nodes_served += count
        self.metrics.inc("repro_server_nodes_served_total", count)

    @property
    def nodes_served(self) -> int:
        """Total node records served across ``/node``, ``/nodes`` and ``/walk``."""
        with self._stats_lock:
            return self._nodes_served

    def reset_stats(self) -> None:
        """Zero every reported figure atomically: counts, registry, tenants.

        Holding ``_stats_lock`` across all three makes the reset indivisible
        with respect to `_stats_payload`; the registry's own lock makes it
        indivisible with respect to a concurrent ``/metrics`` scrape.  Tenant
        *enforcement* state (budget spent, rate windows) survives — only the
        reported usage counters are cleared.
        """
        with self._stats_lock:
            self.endpoint_counts.clear()
            self._nodes_served = 0
            self.metrics.reset()
            for policy in self.tenants.policies():
                policy.reset_usage()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """A client-connectable URL for the bound address."""
        host, port = self.server_address[:2]
        return reachable_url(host, port)

    def start(self) -> "AsyncGraphServer":
        """Run the event loop from a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server is already started")
        if self._closed:
            raise RuntimeError("server is closed")
        if self._access_log_path is not None:
            # Line-buffered so every entry lands on disk as soon as its line
            # is complete — ``tail -f`` on the log sees requests live.
            self._access_log = self._access_log_path.open(
                "a", encoding="utf-8", buffering=1
            )
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-aio-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._boot_error is not None:
            error, self._boot_error = self._boot_error, None
            self.close()
            raise error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced by start()
            self._boot_error = error
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, sock=self._socket, limit=MAX_LINE + 2
        )
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            # Force-close open keep-alive connections first: since 3.12
            # wait_closed() really waits for every connection handler, and an
            # idle crawler socket would otherwise pin the shutdown.
            for writer in list(self._writers):
                writer.close()
            await server.wait_closed()

    def close(self) -> None:
        """Stop serving, close every open connection, join the loop thread."""
        if self._closed:
            return
        self._closed = True
        AsyncGraphServer._live.discard(self)
        if self._thread is not None:
            self._ready.wait(timeout=10)
            loop, stop = self._loop, self._stop_event
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:  # loop already gone
                    pass
            self._thread.join(timeout=10)
            self._thread = None
        else:
            self._socket.close()
        if self._access_log is not None:
            self._access_log.close()
            self._access_log = None

    @property
    def closed(self) -> bool:
        return self._closed

    @classmethod
    def live_servers(cls) -> List["AsyncGraphServer"]:
        """Every server not yet closed (leak detection in the test suite)."""
        return list(cls._live)

    def __enter__(self) -> "AsyncGraphServer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _ParseError as error:
                    # Answer the refusal with ``Connection: close`` so a
                    # smuggling probe can never leave ambiguous framing on a
                    # kept-alive socket, then drop the connection.
                    await self._write_response(
                        writer,
                        error.status,
                        {"error": "bad_request", "message": error.message},
                        close=True,
                    )
                    break
                if request is None:
                    # Clean EOF between requests, or EOF mid-request (the
                    # async port of the half-sent-request fix): nobody is
                    # left to receive a response, so send none.
                    break
                keep_alive = await self._respond(writer, request)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown (asyncio.run cancelling leftover tasks)
            # caught us mid-read.  Exit through the close path below so the
            # task finishes normally instead of surfacing the cancellation
            # through the stream protocol's done-callback.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                # Shutdown cancelled us while draining the transport.  The
                # writer is already closed; finishing normally here keeps
                # the stream protocol's done-callback from logging a
                # spurious "Exception in callback ... CancelledError".
                pass

    async def _read_request(self, reader) -> Optional[_Request]:
        """Read one request; ``None`` on EOF, :class:`_ParseError` on refuse.

        The wait for the *first* byte is unbounded — an idle keep-alive
        connection costs this server nothing — but once a request line has
        arrived the rest of the request must land within ``timeout`` seconds,
        so a stalled half-request cannot pin parser state forever.
        """
        try:
            request_line = await reader.readline()
        except ValueError:
            raise _ParseError(431, "Line too long") from None
        if not request_line:
            return None
        try:
            return await asyncio.wait_for(
                self._read_rest(reader, request_line), self.timeout
            )
        except (TimeoutError, asyncio.IncompleteReadError):
            return None

    async def _read_rest(self, reader, request_line: bytes) -> Optional[_Request]:
        words = request_line.decode("iso-8859-1").rstrip("\r\n").split()
        if len(words) != 3 or words[2] != "HTTP/1.1":
            raise _ParseError(
                400, f"this server speaks HTTP/1.1 only, got {words!r}"
            )
        method, target, _version = words
        raw: Dict[bytes, bytes] = {}
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                raise _ParseError(431, "Line too long") from None
            if not line:
                # EOF mid-headers: the client died before finishing the
                # request — not the blank line that ends a header block.
                # Dispatching the half-sent request would serve a response
                # nobody can receive; close without responding instead.
                return None
            if line in (b"\r\n", b"\n"):
                break
            if len(raw) >= MAX_HEADERS:
                raise _ParseError(431, "Too many headers")
            try:
                store_header_line(raw, line)
            except HeaderLineError as error:
                raise _ParseError(error.status, error.message) from None
        headers = LeanHeaders(raw)
        body = b""
        length_header = headers.get("Content-Length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                length = -1
            if length < 0:
                raise _ParseError(400, "Content-Length is not a non-negative integer")
            if length:
                body = await reader.readexactly(length)
        close = raw.get(b"connection", b"").lower() == b"close"
        return _Request(method, target, headers, body, close)

    async def _write_response(
        self,
        writer,
        status: int,
        payload,
        *,
        close: bool = False,
        extra_headers: str = "",
    ) -> None:
        if isinstance(payload, str):
            # ``GET /metrics``: Prometheus text exposition, not JSON.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra_headers}"
        )
        if close:
            head += "Connection: close\r\n"
        writer.write(head.encode("iso-8859-1") + b"\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _respond(self, writer, request: _Request) -> bool:
        started = time.perf_counter()
        path = request.path
        self.note_request(request.method, path)
        endpoint = "/" + path.lstrip("/").split("/", 1)[0] if path.strip("/") else "/"
        # Trace context travels as an additive header; malformed or absent
        # values leave tracing off for this request (never a refusal).
        trace_ctx = parse_trace_header(request.headers.get(TRACE_HEADER))
        tenant: Optional[TenantPolicy] = None
        try:
            tenant = self.tenants.resolve(request.headers.get(API_KEY_HEADER))
        except TenantAuthError as error:
            status, payload, served = 401, {"error": "unauthorized", "message": str(error)}, 0
        else:
            tenant.charge_request(endpoint)
            status, payload, served = await self._dispatch(request, endpoint, tenant)
        if served:
            self.note_served(served)
        duration_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.inc(
            "repro_server_requests_total", endpoint=endpoint, status=status
        )
        self.metrics.observe("repro_server_request_ms", duration_ms, endpoint=endpoint)
        if tenant is not None:
            self.metrics.observe(
                "repro_tenant_request_ms", duration_ms, tenant=tenant.name
            )
        extra_headers = ""
        trace_id = None
        if trace_ctx is not None:
            trace_id, parent_span = trace_ctx
            echo = format_span_echo(
                trace_id, new_span_id(), parent_span, duration_ms,
                "server" + endpoint,
            )
            extra_headers = f"{SPAN_ECHO_HEADER}: {echo}\r\n"
        await self._write_response(
            writer, status, payload, close=request.close, extra_headers=extra_headers
        )
        self._log_access(
            tenant.name if tenant is not None else None,
            request.method,
            path,
            status,
            served,
            duration_ms,
            trace_id,
        )
        return not request.close

    async def _dispatch(
        self, request: _Request, endpoint: str, tenant: TenantPolicy
    ) -> Tuple[int, Dict[str, Any], int]:
        try:
            if endpoint in _BILLABLE:
                tenant.acquire_slot(self._clock)
            if request.method == "GET":
                return await self._route_get(request, tenant)
            if request.method == "POST":
                return await self._route_post(request, tenant)
            return 400, {
                "error": "bad_request",
                "message": f"unsupported method {request.method}",
            }, 0
        except _BadRequest as error:
            return 400, {"error": "bad_request", "message": str(error)}, 0
        except RateLimitExceededError as error:
            return 429, {
                "error": "rate_limited",
                "message": str(error),
                "retry_after": error.retry_after,
            }, 0
        except QueryBudgetExceededError as error:
            return 429, {
                "error": "budget_exhausted",
                "message": str(error),
                "limit": error.budget,
                "spent": error.spent,
            }, 0
        except NodeNotFoundError as error:
            return 404, _node_error_payload(error), 0
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - surface as HTTP 500
            return 500, {
                "error": "server_error",
                "message": f"{type(error).__name__}: {error}",
            }, 0

    @staticmethod
    def _decode_node(segment: str):
        try:
            return decode_node_id(segment)
        except ValueError:
            raise _BadRequest(
                f"node id path segment {segment!r} is not JSON "
                f"(ids travel JSON-encoded, percent-escaped)"
            ) from None

    async def _route_get(
        self, request: _Request, tenant: TenantPolicy
    ) -> Tuple[int, Dict[str, Any], int]:
        path = request.path
        backend = self.graph_backend
        if path == "/info":
            descriptor: Dict[str, Any] = {
                "format": WIRE_FORMAT,
                "version": WIRE_VERSION,
                "name": backend.name,
                "nodes": len(backend),
                "backend": type(backend).__name__,
                "server": "async",
            }
            for key in ("recorded_start", "epoch", "shard", "replicas"):
                value = getattr(backend, key, None)
                if value is not None:
                    descriptor["start" if key == "recorded_start" else key] = value
            return 200, descriptor, 0
        if path == "/node-ids":
            return 200, {"nodes": backend.node_ids()}, 0
        if path == "/stats":
            return 200, self._stats_payload(), 0
        if path == "/metrics":
            return 200, self.metrics.render_prometheus(), 0
        if path.startswith("/node/"):
            node = self._decode_node(path[len("/node/"):])
            fresh = tenant.reserve_nodes([node])
            record = backend.fetch(node)
            tenant.commit_nodes(fresh, 1)
            return 200, record_to_wire(record), 1
        if path.startswith("/meta/"):
            node = self._decode_node(path[len("/meta/"):])
            payload: Dict[str, Any] = {
                "meta": node,
                "contains": bool(backend.contains(node)),
            }
            summary = backend.metadata(node)
            if summary is not None:
                payload["degree"] = summary.get("degree")
                payload["attributes"] = summary.get("attributes", {})
            return 200, payload, 0
        return 404, {
            "error": "unknown_endpoint",
            "message": f"no endpoint at {path}",
        }, 0

    async def _route_post(
        self, request: _Request, tenant: TenantPolicy
    ) -> Tuple[int, Dict[str, Any], int]:
        path = request.path
        if path == "/nodes":
            payload = self._json_body(request)
            nodes = payload.get("nodes") if isinstance(payload, dict) else None
            if not isinstance(nodes, list):
                raise _BadRequest('request body must be {"nodes": [...]}')
            fresh = tenant.reserve_nodes(nodes)
            records = self.graph_backend.fetch_many(nodes)
            tenant.commit_nodes(fresh, len(records))
            return 200, {
                "records": [record_to_wire(record) for record in records]
            }, len(records)
        if path == "/walk":
            return await self._route_walk(request, tenant)
        return 404, {
            "error": "unknown_endpoint",
            "message": f"no endpoint at {path}",
        }, 0

    @staticmethod
    def _json_body(request: _Request) -> Any:
        try:
            return json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not JSON: {error}") from None

    # ------------------------------------------------------------------
    # Server-side walks
    # ------------------------------------------------------------------
    async def _route_walk(
        self, request: _Request, tenant: TenantPolicy
    ) -> Tuple[int, Dict[str, Any], int]:
        payload = self._json_body(request)
        if not isinstance(payload, dict):
            raise _BadRequest('request body must be {"kernel": ..., "start": ...}')
        kernel = payload.get("kernel")
        if not isinstance(kernel, str):
            raise _BadRequest('walk request needs a string "kernel"')
        if "start" not in payload:
            raise _BadRequest('walk request needs a "start" node id')
        start = payload["start"]
        seed = payload.get("seed", 0)
        steps = payload.get("steps")
        budget = payload.get("budget")
        burn_in = payload.get("burn_in", 0)
        thinning = payload.get("thinning", 1)
        for name, value, optional in (
            ("steps", steps, True),
            ("budget", budget, True),
            ("burn_in", burn_in, False),
            ("thinning", thinning, False),
        ):
            if value is None and optional:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise _BadRequest(f'walk "{name}" must be a non-negative integer')
        # Cap the walk's budget by what the tenant has left, so one request
        # cannot crawl past its allowance; billing happens after the walk
        # from its *unique* query count, matching the paper's cost model.
        remaining = tenant.budget.remaining
        if remaining is not None:
            if remaining <= 0:
                raise QueryBudgetExceededError(
                    tenant.budget.limit, spent=tenant.budget.spent
                )
            budget = remaining if budget is None else min(budget, remaining)
        if steps is None and budget is None:
            steps = _MAX_FREE_WALK_STEPS
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None,
                self._run_walk,
                kernel, start, seed, steps, budget, burn_in, thinning,
            )
        except (InvalidConfigurationError, InvalidStartNodeError, DeadEndError,
                ValueError) as error:
            raise _BadRequest(str(error)) from error
        tenant.bill_walk(result.unique_queries)
        self.metrics.inc("repro_server_walks_total")
        path = list(result.path)
        return 200, {
            "path": path,
            "fingerprint": walk_fingerprint(path),
            "steps": result.steps,
            "unique_queries": result.unique_queries,
            "total_queries": result.total_queries,
            "stopped_by_budget": result.stopped_by_budget,
            "samples": len(result.samples),
        }, result.unique_queries

    def _run_walk(self, kernel, start, seed, steps, budget, burn_in, thinning):
        """Run one walk on an executor thread, off the event loop.

        The walk gets the same default middleware stack a local crawl builds
        (:func:`~repro.api.builder.build_api` with a fresh budget), so a
        server-side walk is bit-identical to the client-driven walk with the
        same kernel, seed and budget — the conformance suite pins this.
        """
        api = build_api(self.graph_backend, budget=budget)
        walker = make_walker(kernel, api=api, seed=seed)
        # Per-query registry adds would tax the walk by more than the graph
        # work itself; report the walk's cache traffic in aggregate instead
        # (every repeated query is a hit, every unique one a miss).
        with suppress_metrics():
            result = walker.run(
                start, max_steps=steps, burn_in=burn_in, thinning=thinning
            )
        registry = global_metrics()
        if registry is not None:
            registry.inc(
                "repro_cache_hits_total",
                result.total_queries - result.unique_queries,
            )
            registry.inc("repro_cache_misses_total", result.unique_queries)
        return result

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _stats_payload(self) -> Dict[str, Any]:
        # Tenants are read under the same lock `reset_stats` holds, so a
        # stats read never interleaves with a reset (half-zeroed figures).
        with self._stats_lock:
            endpoints = dict(self.endpoint_counts)
            nodes_served = self._nodes_served
            tenants = {
                policy.name: policy.stats_payload()
                for policy in self.tenants.policies()
            }
        return {
            "format": WIRE_FORMAT,
            "version": WIRE_VERSION,
            "server": "async",
            "endpoints": endpoints,
            "nodes_served": nodes_served,
            "tenants": tenants,
            "latency": {
                "endpoints": self.metrics.histogram_family(
                    "repro_server_request_ms", "endpoint"
                ),
                "tenants": self.metrics.histogram_family(
                    "repro_tenant_request_ms", "tenant"
                ),
            },
        }

    def _log_access(
        self,
        tenant: Optional[str],
        method: str,
        path: str,
        status: int,
        nodes: int,
        duration_ms: float,
        trace_id: Optional[str] = None,
    ) -> None:
        if self._access_log is None:
            return
        entry = {
            "ts": round(time.time(), 6),
            "tenant": tenant,
            "method": method,
            "path": path,
            "status": status,
            "nodes": nodes,
            "ms": round(duration_ms, 3),
            "duration_ms": round(duration_ms, 3),
        }
        if trace_id is not None:
            entry["trace_id"] = trace_id
        line = json.dumps(entry)
        try:
            self._access_log.write(line + "\n")
            self._access_log.flush()
        except ValueError:  # pragma: no cover - log closed mid-shutdown
            pass


def serve_backend_async(
    source,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    tenants=None,
    clock=None,
    access_log=None,
) -> AsyncGraphServer:
    """Bind an :class:`AsyncGraphServer` over ``source`` and return it (not serving).

    The asyncio twin of :func:`~repro.server.app.serve_backend`: ``source``
    is anything :func:`~repro.api.backend.as_backend` accepts, ``port=0``
    binds an ephemeral port, and :meth:`~AsyncGraphServer.start` (or the
    context manager) serves from a background thread.
    """
    return AsyncGraphServer(
        source, host, port, tenants=tenants, clock=clock, access_log=access_log
    )
