"""Shared pieces of the lean HTTP/1.1 wire, used by both server frontends.

The thread-per-connection :mod:`repro.server.app` and the asyncio
:mod:`repro.server.aio` frontends speak the exact same ``repro-graph-http``
wire, so the parsing rules that carry correctness weight live here once:

* :class:`LeanHeaders` — the case-insensitive raw-bytes header map the fast
  request path builds instead of an ``email.message.Message``;
* :func:`store_header_line` — one header line into that map, rejecting
  malformed lines *and conflicting duplicates* (two different
  ``Content-Length`` values is the classic request-smuggling shape: whichever
  copy a proxy honours, this service must refuse rather than pick one);
* :func:`reachable_url` — a client-connectable URL for a bound address
  (wildcard binds resolved to loopback, IPv6 hosts bracketed).

Both frontends also share the stdlib sanity caps: :data:`MAX_LINE` bytes per
line and :data:`MAX_HEADERS` header lines per request.
"""

from __future__ import annotations

from typing import Dict

#: Hard cap on one request/status/header line (mirrors http.client).
MAX_LINE = 65536
#: Hard cap on header lines per request (mirrors http.client's _MAXHEADERS).
MAX_HEADERS = 100


class LeanHeaders:
    """Case-insensitive header lookup over raw ``bytes`` pairs.

    The fast-path request parsers store headers as lowercased
    ``bytes -> bytes``; this wrapper answers the one call the handlers make
    — ``self.headers.get("Content-Length")`` — without ever building an
    ``email.message.Message``.
    """

    __slots__ = ("_raw",)

    def __init__(self, raw: Dict[bytes, bytes]) -> None:
        self._raw = raw

    def get(self, name: str, default=None):
        value = self._raw.get(name.lower().encode("iso-8859-1"))
        return value.decode("iso-8859-1") if value is not None else default


class HeaderLineError(Exception):
    """A header line the server must refuse, with the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def store_header_line(raw: Dict[bytes, bytes], line: bytes) -> None:
    """Parse one raw header ``line`` into the lowercased ``raw`` map.

    Raises :class:`HeaderLineError` (status 400) on a line without a colon
    and on *conflicting duplicates* — the same header name arriving twice
    with different values.  Two ``Content-Length`` headers that disagree are
    a request-smuggling probe, not a client bug to paper over; refusing every
    conflicting duplicate (not just Content-Length) keeps the rule simple
    and the parser state canonical.  Repeats with the *same* value stay
    accepted, as retrying proxies occasionally produce them harmlessly.
    """
    name, separator, value = line.partition(b":")
    if not separator:
        raise HeaderLineError(400, f"Malformed header line {line!r}")
    key = name.strip().lower()
    value = value.strip()
    previous = raw.get(key)
    if previous is not None and previous != value:
        raise HeaderLineError(
            400,
            f"Conflicting duplicate header {key.decode('iso-8859-1')!r}",
        )
    raw[key] = value


def reachable_url(host, port) -> str:
    """A URL a client on this machine can actually connect to.

    A server bound to a wildcard address (``0.0.0.0`` / ``::``) reports that
    literal address back from ``getsockname``, but connecting to it is
    platform-dependent at best; resolve to the matching loopback.  IPv6
    literals must travel bracketed inside a URL authority, or the colons
    parse as a port separator.
    """
    host = str(host)
    if host == "0.0.0.0":
        host = "127.0.0.1"
    elif host == "::":
        host = "::1"
    if ":" in host:
        host = f"[{host}]"
    return f"http://{host}:{port}"
