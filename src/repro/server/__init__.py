"""HTTP server tier: serve any :class:`GraphBackend` as a JSON graph service.

The client/server split of the access layer: :func:`serve_backend` puts any
existing backend — in-memory graph, CSR, mmap snapshot, crawl-dump replay —
behind a stdlib ``http.server`` service speaking the crawl-record JSON wire
format, and :class:`~repro.api.remote.HTTPGraphBackend` (the client half, in
:mod:`repro.api`) drives it through the unchanged two-method backend
protocol.  ``python -m repro.cli serve --source PATH --port N`` is the
command-line entry point.
"""

from .app import GraphHTTPServer, GraphRequestHandler, serve_backend

__all__ = ["GraphHTTPServer", "GraphRequestHandler", "serve_backend"]
