"""HTTP server tier: serve any :class:`GraphBackend` as a JSON graph service.

The client/server split of the access layer, with two frontends over the same
``repro-graph-http`` wire:

* :func:`serve_backend` — the thread-per-connection stdlib ``http.server``
  frontend (:class:`GraphHTTPServer`);
* :func:`serve_backend_async` — the asyncio multi-tenant frontend
  (:class:`AsyncGraphServer`): one event loop for every connection, per-tenant
  API-key policy (:mod:`repro.server.tenants`), server-side ``POST /walk``
  and a ``GET /stats`` usage surface.

:class:`~repro.api.remote.HTTPGraphBackend` and
:class:`~repro.api.remote_async.AsyncHTTPGraphBackend` (the client halves, in
:mod:`repro.api`) drive either frontend through the unchanged two-method
backend protocol.  ``python -m repro.cli serve --source PATH --port N`` is
the command-line entry point (``--async --tenants tenants.json`` for the
multi-tenant frontend).
"""

from .aio import AsyncGraphServer, serve_backend_async
from .app import GraphHTTPServer, GraphRequestHandler, serve_backend
from .tenants import (
    TENANTS_FORMAT,
    TENANTS_VERSION,
    TenantPolicy,
    TenantRegistry,
    WallClock,
    load_tenants,
    parse_tenants,
)

__all__ = [
    "AsyncGraphServer",
    "GraphHTTPServer",
    "GraphRequestHandler",
    "TENANTS_FORMAT",
    "TENANTS_VERSION",
    "TenantPolicy",
    "TenantRegistry",
    "WallClock",
    "load_tenants",
    "parse_tenants",
    "serve_backend",
    "serve_backend_async",
]
