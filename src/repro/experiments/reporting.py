"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows / series the paper reports, in a
format that is readable in a terminal and easy to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graphs.statistics import GraphSummary
from .results import ExperimentReport, ResultTable


def format_number(value: object, precision: int = 4) -> str:
    """Format a number compactly (integers without decimals)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def render_table(rows: Sequence[Sequence[object]], precision: int = 4) -> str:
    """Render rows (first row = header) as an aligned text table."""
    if not rows:
        return ""
    formatted = [[format_number(cell, precision) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in formatted) for col in range(len(formatted[0]))]
    lines: List[str] = []
    for index, row in enumerate(formatted):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_result_table(table: ResultTable, precision: int = 4) -> str:
    """Render a :class:`ResultTable` in wide format with a title header."""
    body = render_table(table.to_wide_rows(), precision=precision)
    header = f"{table.title}\n({table.y_label} vs {table.x_label})"
    return f"{header}\n{body}"


def render_report(report: ExperimentReport, precision: int = 4) -> str:
    """Render every table of an :class:`ExperimentReport`."""
    sections: List[str] = [f"=== {report.name} ==="]
    if report.metadata:
        meta = ", ".join(f"{key}={format_number(value)}" for key, value in report.metadata.items())
        sections.append(meta)
    for key in report.keys():
        sections.append("")
        sections.append(render_result_table(report.get(key), precision=precision))
    return "\n".join(sections)


def render_dataset_summaries(summaries: Sequence[GraphSummary], precision: int = 4) -> str:
    """Render Table 1: one row per dataset."""
    rows: List[Sequence[object]] = [
        ["dataset", "nodes", "edges", "avg degree", "avg clustering", "triangles"]
    ]
    for summary in summaries:
        rows.append(list(summary.as_row()))
    return render_table(rows, precision=precision)


def render_comparison(
    table: ResultTable,
    baseline: str,
    challengers: Sequence[str],
    precision: int = 4,
) -> str:
    """Summarise how challengers compare to a baseline on curve means.

    Produces lines like ``CNRW vs SRW: 0.034 vs 0.051 (improvement 33%)`` —
    the "who wins, by roughly what factor" statement EXPERIMENTS.md records.
    """
    lines: List[str] = []
    base_mean = table.mean_of(baseline)
    for challenger in challengers:
        if challenger not in table.series:
            continue
        challenger_mean = table.mean_of(challenger)
        if base_mean > 0:
            improvement = 100.0 * (base_mean - challenger_mean) / base_mean
        else:
            improvement = 0.0
        lines.append(
            f"{challenger} vs {baseline}: "
            f"{format_number(challenger_mean, precision)} vs {format_number(base_mean, precision)} "
            f"(improvement {improvement:.1f}%)"
        )
    return "\n".join(lines)


def markdown_table(rows: Sequence[Sequence[object]], precision: int = 4) -> str:
    """Render rows (first row = header) as a GitHub-flavoured markdown table."""
    if not rows:
        return ""
    formatted = [[format_number(cell, precision) for cell in row] for row in rows]
    header = "| " + " | ".join(formatted[0]) + " |"
    divider = "|" + "|".join("---" for _ in formatted[0]) + "|"
    body = ["| " + " | ".join(row) + " |" for row in formatted[1:]]
    return "\n".join([header, divider, *body])


def report_to_markdown(report: ExperimentReport, precision: int = 4) -> str:
    """Render an :class:`ExperimentReport` as markdown (for EXPERIMENTS.md)."""
    sections: List[str] = [f"### {report.name}", ""]
    if report.metadata:
        for key, value in report.metadata.items():
            sections.append(f"- {key}: {format_number(value, precision)}")
        sections.append("")
    for key in report.keys():
        table = report.get(key)
        sections.append(f"**{table.title}** ({table.y_label} vs {table.x_label})")
        sections.append("")
        sections.append(markdown_table(table.to_wide_rows(), precision=precision))
        sections.append("")
    return "\n".join(sections)
