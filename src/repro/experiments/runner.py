"""Experiment runner: turns configurations into result tables.

The runner owns the repetition / seeding / accounting logic shared by every
paper figure:

* :func:`run_cost_sweep` — error (and optionally KL / L2 bias) as a function
  of the unique-query budget (Figures 6, 7, 9, 10).
* :func:`run_distribution_study` — empirical sampling distribution vs the
  theoretical stationary distribution (Figure 8).
* :func:`run_size_sweep` — metrics as a function of graph size for a
  parametrised graph family (Figure 11).
* :func:`escape_probability_study` — the Theorem 3 barbell-crossing ablation.

Each trial gets its own :class:`~repro.api.session.SamplingSession` (and
therefore its own access-layer stack) over the same graph so query accounting
is isolated, and its own derived seed so the whole sweep is reproducible from
a single integer.  Walks execute through the
:class:`~repro.engine.scheduler.WalkScheduler` — the same batched driver the
multi-walker ensembles use — or, with ``engine="vector"``, through the
array-native :class:`~repro.engine.vector.VectorScheduler` over a per-process
CSR view of the graph (its own seed lineage; non-vectorisable specs fall back
to the scalar driver with a warning).  Whole sweeps fan out across a process
pool when ``jobs > 1``: trials are self-contained :class:`WalkTask` values
with pre-derived seeds, so the results are bit-identical for any ``jobs``
under either engine.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..api.session import SamplingSession
from ..engine.scheduler import WalkScheduler
from ..estimation.aggregates import AggregateQuery
from ..estimation.estimators import estimate as estimate_aggregate
from ..estimation.ground_truth import ground_truth
from ..exceptions import InsufficientSamplesError
from ..graphs.graph import Graph
from ..metrics.bias import relative_error
from ..metrics.distributions import Distribution, empirical_distribution, theoretical_distribution
from ..metrics.divergence import l2_distance, symmetric_kl_divergence
from ..rng import derive_seed, make_rng
from ..walks.base import WalkResult
from .config import CostSweepConfig, DistributionStudyConfig, SizeSweepConfig, WalkerSpec
from .results import ExperimentReport, ResultTable


def _pick_start_node(graph: Graph, seed: Optional[int]) -> object:
    """Choose a start node uniformly (but never an isolated node).

    Scans a seeded permutation of the node list, so a usable start is found
    whenever one exists — sampling with replacement could retry the same
    isolated node over and over and spuriously give up.
    """
    rng = make_rng(seed)
    nodes = graph.nodes()
    if not nodes:
        raise InsufficientSamplesError("graph has no node with degree >= 1")
    for index in rng.permutation(len(nodes)):
        node = nodes[int(index)]
        if graph.degree(node) > 0:
            return node
    raise InsufficientSamplesError("graph has no node with degree >= 1")


def _make_session(graph: Graph, spec: WalkerSpec, seed: Optional[int], budget: Optional[int] = None) -> SamplingSession:
    """Build a fresh session for one trial of ``spec`` on ``graph``."""
    session = SamplingSession(graph)
    if budget is not None:
        session.budget(budget)
    return session.walker(spec.name, seed=seed, **spec.options_dict())


# ----------------------------------------------------------------------
# Trial execution (sequential or process-pool)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WalkTask:
    """One self-contained walk trial, executable in any process.

    The seed is pre-derived by the sweep that created the task, so executing
    tasks in any order — or on any number of workers — produces bit-identical
    walks.  ``graph=None`` means "use the worker's shared graph" (installed
    once per worker by the pool initialiser, so big graphs are pickled once
    per worker instead of once per trial).
    """

    spec: WalkerSpec
    seed: Optional[int]
    budget: Optional[int] = None
    steps: Optional[int] = None
    burn_in: int = 0
    thinning: int = 1
    graph: Optional[Graph] = None
    engine: str = "scalar"


_WORKER_GRAPH: Optional[Graph] = None

# Per-process CSR views for vector-engine trials: compiling the graph to CSR
# once per worker instead of once per trial.  Keyed by ``id(graph)`` with the
# graph itself pinned in the value, both to keep the key valid (no collection
# while cached) and to verify identity on lookup.
_CSR_CACHE: Dict[int, tuple] = {}


def _install_worker_graph(graph: Optional[Graph]) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph


def _csr_backend_for(graph: Graph):
    """Return (building if needed) this process's CSR view of ``graph``."""
    from ..api.backend import CSRBackend

    cached = _CSR_CACHE.get(id(graph))
    if cached is not None and cached[0] is graph:
        return cached[1]
    backend = CSRBackend.from_graph(graph)
    _CSR_CACHE[id(graph)] = (graph, backend)
    return backend


def _execute_walk_task(task: WalkTask) -> WalkResult:
    """Run one trial through the scheduler and return its raw result.

    Estimation happens on the caller's side (queries may hold non-picklable
    predicates; :class:`WalkResult` always travels cleanly).

    ``engine="vector"`` trials run through the array-native
    :class:`~repro.engine.vector.VectorScheduler` over a per-process CSR view
    of the graph (vector seed lineage); specs the vector engine cannot run
    fall back to the scalar scheduler with a warning, exactly as
    :meth:`SamplingSession.run_ensemble` documents.
    """
    graph = task.graph if task.graph is not None else _WORKER_GRAPH
    if graph is None:
        raise ValueError("walk task has no graph and no worker graph is installed")
    if task.engine == "vector":
        session = SamplingSession(_csr_backend_for(graph))
        if task.budget is not None:
            session.budget(task.budget)
        session.walker(task.spec.name, seed=derive_seed(task.seed, 1), **task.spec.options_dict())
        start = _pick_start_node(graph, derive_seed(task.seed, 2))
        return session.run_ensemble(
            1, steps=task.steps, starts=[start], seed=derive_seed(task.seed, 1),
            burn_in=task.burn_in, thinning=task.thinning, mode="vector",
        )[0]
    session = _make_session(graph, task.spec, derive_seed(task.seed, 1), budget=task.budget)
    start = _pick_start_node(graph, derive_seed(task.seed, 2))
    walker = session.build_walker()
    scheduler = WalkScheduler(session.api)
    return scheduler.run(
        [walker], [start], steps=task.steps, burn_in=task.burn_in, thinning=task.thinning
    )[0]


def run_walk_tasks(
    tasks: Sequence[WalkTask], jobs: int = 1, graph: Optional[Graph] = None
) -> List[WalkResult]:
    """Execute walk trials, fanning out over a process pool when ``jobs > 1``.

    Results come back in task order and are bit-identical for any ``jobs``
    because every task carries its own derived seed.  ``graph`` is the shared
    graph of tasks whose own ``graph`` field is ``None``.
    """
    tasks = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    jobs = min(jobs, len(tasks)) if tasks else 1
    if jobs <= 1:
        return [
            _execute_walk_task(task if task.graph is not None else replace(task, graph=graph))
            for task in tasks
        ]
    chunksize = max(1, len(tasks) // (jobs * 4))
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_install_worker_graph, initargs=(graph,)
    ) as pool:
        return list(pool.map(_execute_walk_task, tasks, chunksize=chunksize))


def _estimate_value(
    result: WalkResult, query: AggregateQuery, uniform_samples: bool
) -> Optional[float]:
    """Turn a walk's samples into an estimate (None when unusable)."""
    if not result.samples:
        return None
    try:
        return estimate_aggregate(result.samples, query, uniform_samples=uniform_samples).value
    except InsufficientSamplesError:
        return None


def run_single_trial(
    graph: Graph,
    spec: WalkerSpec,
    query: AggregateQuery,
    budget: int,
    seed: Optional[int],
    burn_in: int = 0,
    thinning: int = 1,
) -> Dict[str, object]:
    """Run one walk under a query budget and return its estimate and path.

    Returns a dictionary with keys ``estimate`` (float or None when the walk
    produced no usable sample), ``samples`` (list of :class:`Sample`),
    ``path`` (visited nodes) and ``unique_queries``.
    """
    result = _execute_walk_task(
        WalkTask(spec=spec, seed=seed, budget=budget, burn_in=burn_in, thinning=thinning, graph=graph)
    )
    return {
        "estimate": _estimate_value(result, query, spec.uniform_samples),
        "samples": result.samples,
        "path": result.path,
        "unique_queries": result.unique_queries,
    }


def run_cost_sweep(
    graph: Graph,
    config: CostSweepConfig,
    title: str = "cost sweep",
    jobs: int = 1,
    engine: str = "scalar",
) -> ExperimentReport:
    """Run the error-versus-query-cost experiment of Figures 6, 7, 9 and 10.

    The report always contains a ``relative_error`` table; when
    ``config.compute_divergences`` is true it additionally contains
    ``kl_divergence`` and ``l2_distance`` tables computed from the visit
    distribution of the walks against the theoretical stationary
    distribution (the small-graph bias measures of the paper).  With
    ``jobs > 1`` the trials of the whole sweep fan out over a process pool;
    per-trial derived seeds keep the report bit-identical for any ``jobs``.
    """
    truth = ground_truth(graph, config.query)
    error_table = ResultTable(title=f"{title}: relative error", y_label="relative error")
    kl_table = ResultTable(title=f"{title}: KL divergence", y_label="KL divergence")
    l2_table = ResultTable(title=f"{title}: L2 distance", y_label="L2 distance")
    theoretical = theoretical_distribution(graph) if config.compute_divergences else None
    support = graph.nodes() if config.compute_divergences else None

    cells = [
        (budget_index, budget, walker_index, spec)
        for budget_index, budget in enumerate(config.budgets)
        for walker_index, spec in enumerate(config.walkers)
    ]
    tasks = [
        WalkTask(
            spec=spec,
            seed=derive_seed(config.seed, budget_index, walker_index, trial),
            budget=budget,
            burn_in=config.burn_in,
            thinning=config.thinning,
            engine=engine,
        )
        for budget_index, budget, walker_index, spec in cells
        for trial in range(config.trials)
    ]
    results = iter(run_walk_tasks(tasks, jobs=jobs, graph=graph))

    for budget_index, budget, walker_index, spec in cells:
        errors: List[float] = []
        kls: List[float] = []
        l2s: List[float] = []
        visits_all: List[object] = []
        for _ in range(config.trials):
            result = next(results)
            value = _estimate_value(result, config.query, spec.uniform_samples)
            if value is not None:
                errors.append(relative_error(value, truth))
            if config.compute_divergences:
                visits_all.extend(result.path)
        if errors:
            error_table.add_point(spec.display_label, budget, sum(errors) / len(errors))
        if config.compute_divergences and visits_all:
            empirical = empirical_distribution(
                visits_all, support=support, smoothing=config.divergence_smoothing
            )
            kls.append(symmetric_kl_divergence(theoretical, empirical, support=support))
            l2s.append(l2_distance(theoretical, empirical, support=support))
            kl_table.add_point(spec.display_label, budget, sum(kls) / len(kls))
            l2_table.add_point(spec.display_label, budget, sum(l2s) / len(l2s))

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update(
        {
            "graph": graph.name,
            "nodes": graph.number_of_nodes,
            "edges": graph.number_of_edges,
            "query": config.query.label,
            "ground_truth": truth,
            "trials": config.trials,
            "seed": config.seed,
        }
    )
    report.add_table("relative_error", error_table)
    if config.compute_divergences:
        report.add_table("kl_divergence", kl_table)
        report.add_table("l2_distance", l2_table)
    return report


def run_distribution_study(
    graph: Graph,
    config: DistributionStudyConfig,
    title: str = "distribution study",
    jobs: int = 1,
    engine: str = "scalar",
) -> ExperimentReport:
    """Run the sampling-distribution experiment of Figure 8.

    For each walker the report's ``distribution`` table holds, per node
    (ordered by degree, x = rank), the empirical visit probability; the
    ``theoretical`` series holds the stationary distribution.  A second table
    ``divergence`` summarises the distance of each walker's empirical
    distribution from the theoretical one.  ``jobs > 1`` fans the walks out
    over a process pool without changing any number in the report.
    """
    from ..metrics.distributions import nodes_by_degree

    ordering = nodes_by_degree(graph)
    support = graph.nodes()
    theoretical = theoretical_distribution(graph)

    distribution_table = ResultTable(
        title=f"{title}: sampling distribution",
        x_label="node rank (by degree)",
        y_label="probability",
    )
    theo_vector = theoretical.vector(ordering)
    for rank, probability in enumerate(theo_vector):
        distribution_table.add_point("Theoretical", rank, float(probability))

    divergence_table = ResultTable(
        title=f"{title}: distance to stationary distribution",
        x_label="walker",
        y_label="divergence",
    )

    tasks = [
        WalkTask(
            spec=spec,
            seed=derive_seed(config.seed, walker_index, walk_index),
            steps=config.steps,
            engine=engine,
        )
        for walker_index, spec in enumerate(config.walkers)
        for walk_index in range(config.num_walks)
    ]
    results = iter(run_walk_tasks(tasks, jobs=jobs, graph=graph))

    empirical_by_walker: Dict[str, Distribution] = {}
    for walker_index, spec in enumerate(config.walkers):
        visits: List[object] = []
        for _ in range(config.num_walks):
            visits.extend(next(results).path)
        empirical = empirical_distribution(visits, support=support)
        empirical_by_walker[spec.display_label] = empirical
        vector = empirical.vector(ordering)
        for rank, probability in enumerate(vector):
            distribution_table.add_point(spec.display_label, rank, float(probability))
        divergence_table.add_point(
            "KL", walker_index, symmetric_kl_divergence(theoretical, empirical, support=support)
        )
        divergence_table.add_point(
            "L2", walker_index, l2_distance(theoretical, empirical, support=support)
        )

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update(
        {
            "graph": graph.name,
            "walkers": [spec.display_label for spec in config.walkers],
            "num_walks": config.num_walks,
            "steps": config.steps,
        }
    )
    report.add_table("distribution", distribution_table)
    report.add_table("divergence", divergence_table)
    return report


def run_size_sweep(
    graph_builder: Callable[[int], Graph],
    config: SizeSweepConfig,
    title: str = "size sweep",
    jobs: int = 1,
    engine: str = "scalar",
) -> ExperimentReport:
    """Run a metric-versus-graph-size experiment (Figure 11).

    ``graph_builder`` maps a size parameter to a graph (e.g. a barbell graph
    with that clique size).  For each size the runner performs a single-budget
    cost experiment and records the mean relative error plus, optionally, the
    KL / L2 bias of the visit distribution.  ``jobs > 1`` fans all trials of
    all sizes out over one process pool (each task carries its own graph).
    """
    error_table = ResultTable(
        title=f"{title}: relative error", x_label="graph size", y_label="relative error"
    )
    kl_table = ResultTable(
        title=f"{title}: KL divergence", x_label="graph size", y_label="KL divergence"
    )
    l2_table = ResultTable(
        title=f"{title}: L2 distance", x_label="graph size", y_label="L2 distance"
    )

    graphs = {size: graph_builder(size) for size in config.sizes}
    tasks = [
        WalkTask(
            spec=spec,
            seed=derive_seed(config.seed, size_index, walker_index, trial),
            budget=config.budget,
            graph=graphs[size],
            engine=engine,
        )
        for size_index, size in enumerate(config.sizes)
        for walker_index, spec in enumerate(config.walkers)
        for trial in range(config.trials)
    ]
    results = iter(run_walk_tasks(tasks, jobs=jobs))

    for size_index, size in enumerate(config.sizes):
        graph = graphs[size]
        truth = ground_truth(graph, config.query)
        theoretical = theoretical_distribution(graph) if config.compute_divergences else None
        support = graph.nodes() if config.compute_divergences else None
        for walker_index, spec in enumerate(config.walkers):
            errors: List[float] = []
            visits_all: List[object] = []
            for _ in range(config.trials):
                result = next(results)
                value = _estimate_value(result, config.query, spec.uniform_samples)
                if value is not None:
                    errors.append(relative_error(value, truth))
                if config.compute_divergences:
                    visits_all.extend(result.path)
            if errors:
                error_table.add_point(spec.display_label, size, sum(errors) / len(errors))
            if config.compute_divergences and visits_all:
                empirical = empirical_distribution(visits_all, support=support)
                kl_table.add_point(
                    spec.display_label,
                    size,
                    symmetric_kl_divergence(theoretical, empirical, support=support),
                )
                l2_table.add_point(
                    spec.display_label, size, l2_distance(theoretical, empirical, support=support)
                )

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update({"sizes": list(config.sizes), "budget": config.budget, "trials": config.trials})
    report.add_table("relative_error", error_table)
    if config.compute_divergences:
        report.add_table("kl_divergence", kl_table)
        report.add_table("l2_distance", l2_table)
    return report


def escape_probability_study(
    clique_sizes: Sequence[int],
    walkers: Sequence[WalkerSpec],
    steps: int = 200,
    trials: int = 100,
    seed: Optional[int] = 0,
    title: str = "barbell escape",
) -> ExperimentReport:
    """Measure how often each walker crosses a barbell bridge within ``steps``.

    Theorem 3 of the paper lower-bounds the ratio of the CNRW and SRW
    bridge-crossing probabilities by ``|G1| ln|G1| / (|G1| - 1)``.  This study
    estimates the crossing probability empirically: a walk starts inside the
    first clique and we record whether it ever reaches the second clique
    within ``steps`` transitions.
    """
    from ..graphs.generators import barbell_graph

    table = ResultTable(
        title=f"{title}: crossing probability",
        x_label="clique size",
        y_label="crossing probability",
    )
    for size_index, clique_size in enumerate(clique_sizes):
        graph = barbell_graph(clique_size)
        other_side = set(range(clique_size, 2 * clique_size))
        for walker_index, spec in enumerate(walkers):
            crossings = 0
            for trial in range(trials):
                trial_seed = derive_seed(seed, size_index, walker_index, trial)
                session = _make_session(graph, spec, derive_seed(trial_seed, 1))
                start_rng = make_rng(derive_seed(trial_seed, 2))
                start = int(start_rng.integers(0, clique_size))
                result = session.run(start, max_steps=steps)
                if any(node in other_side for node in result.path):
                    crossings += 1
            table.add_point(spec.display_label, clique_size, crossings / trials)

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update({"steps": steps, "trials": trials, "seed": seed})
    report.add_table("crossing_probability", table)
    return report
