"""Experiment runner: turns configurations into result tables.

The runner owns the repetition / seeding / accounting logic shared by every
paper figure:

* :func:`run_cost_sweep` — error (and optionally KL / L2 bias) as a function
  of the unique-query budget (Figures 6, 7, 9, 10).
* :func:`run_distribution_study` — empirical sampling distribution vs the
  theoretical stationary distribution (Figure 8).
* :func:`run_size_sweep` — metrics as a function of graph size for a
  parametrised graph family (Figure 11).
* :func:`escape_probability_study` — the Theorem 3 barbell-crossing ablation.

Each trial gets its own :class:`~repro.api.session.SamplingSession` (and
therefore its own access-layer stack) over the same graph so query accounting
is isolated, and its own derived seed so the whole sweep is reproducible from
a single integer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..api.session import SamplingSession
from ..estimation.aggregates import AggregateQuery
from ..estimation.estimators import estimate as estimate_aggregate
from ..estimation.ground_truth import ground_truth
from ..exceptions import InsufficientSamplesError
from ..graphs.graph import Graph
from ..metrics.bias import relative_error
from ..metrics.distributions import Distribution, empirical_distribution, theoretical_distribution
from ..metrics.divergence import l2_distance, symmetric_kl_divergence
from ..rng import derive_seed, make_rng
from .config import CostSweepConfig, DistributionStudyConfig, SizeSweepConfig, WalkerSpec
from .results import ExperimentReport, ResultTable


def _pick_start_node(graph: Graph, seed: Optional[int]) -> object:
    """Choose a start node uniformly (but never an isolated node)."""
    rng = make_rng(seed)
    nodes = graph.nodes()
    for _ in range(len(nodes)):
        node = nodes[int(rng.integers(0, len(nodes)))]
        if graph.degree(node) > 0:
            return node
    raise InsufficientSamplesError("graph has no node with degree >= 1")


def _make_session(graph: Graph, spec: WalkerSpec, seed: Optional[int], budget: Optional[int] = None) -> SamplingSession:
    """Build a fresh session for one trial of ``spec`` on ``graph``."""
    session = SamplingSession(graph)
    if budget is not None:
        session.budget(budget)
    return session.walker(spec.name, seed=seed, **spec.options_dict())


def run_single_trial(
    graph: Graph,
    spec: WalkerSpec,
    query: AggregateQuery,
    budget: int,
    seed: Optional[int],
    burn_in: int = 0,
    thinning: int = 1,
) -> Dict[str, object]:
    """Run one walk under a query budget and return its estimate and path.

    Returns a dictionary with keys ``estimate`` (float or None when the walk
    produced no usable sample), ``samples`` (list of :class:`Sample`),
    ``path`` (visited nodes) and ``unique_queries``.
    """
    session = _make_session(graph, spec, derive_seed(seed, 1), budget=budget)
    start = _pick_start_node(graph, derive_seed(seed, 2))
    result = session.run(start, max_steps=None, burn_in=burn_in, thinning=thinning)
    value: Optional[float] = None
    if result.samples:
        try:
            value = estimate_aggregate(
                result.samples, query, uniform_samples=spec.uniform_samples
            ).value
        except InsufficientSamplesError:
            value = None
    return {
        "estimate": value,
        "samples": result.samples,
        "path": result.path,
        "unique_queries": result.unique_queries,
    }


def run_cost_sweep(graph: Graph, config: CostSweepConfig, title: str = "cost sweep") -> ExperimentReport:
    """Run the error-versus-query-cost experiment of Figures 6, 7, 9 and 10.

    The report always contains a ``relative_error`` table; when
    ``config.compute_divergences`` is true it additionally contains
    ``kl_divergence`` and ``l2_distance`` tables computed from the visit
    distribution of the walks against the theoretical stationary
    distribution (the small-graph bias measures of the paper).
    """
    truth = ground_truth(graph, config.query)
    error_table = ResultTable(title=f"{title}: relative error", y_label="relative error")
    kl_table = ResultTable(title=f"{title}: KL divergence", y_label="KL divergence")
    l2_table = ResultTable(title=f"{title}: L2 distance", y_label="L2 distance")
    theoretical = theoretical_distribution(graph) if config.compute_divergences else None
    support = graph.nodes() if config.compute_divergences else None

    for budget_index, budget in enumerate(config.budgets):
        for walker_index, spec in enumerate(config.walkers):
            errors: List[float] = []
            kls: List[float] = []
            l2s: List[float] = []
            visits_all: List[object] = []
            for trial in range(config.trials):
                seed = derive_seed(config.seed, budget_index, walker_index, trial)
                outcome = run_single_trial(
                    graph,
                    spec,
                    config.query,
                    budget,
                    seed,
                    burn_in=config.burn_in,
                    thinning=config.thinning,
                )
                if outcome["estimate"] is not None:
                    errors.append(relative_error(outcome["estimate"], truth))
                if config.compute_divergences:
                    visits_all.extend(outcome["path"])
            if errors:
                error_table.add_point(spec.display_label, budget, sum(errors) / len(errors))
            if config.compute_divergences and visits_all:
                empirical = empirical_distribution(
                    visits_all, support=support, smoothing=config.divergence_smoothing
                )
                kls.append(symmetric_kl_divergence(theoretical, empirical, support=support))
                l2s.append(l2_distance(theoretical, empirical, support=support))
                kl_table.add_point(spec.display_label, budget, sum(kls) / len(kls))
                l2_table.add_point(spec.display_label, budget, sum(l2s) / len(l2s))

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update(
        {
            "graph": graph.name,
            "nodes": graph.number_of_nodes,
            "edges": graph.number_of_edges,
            "query": config.query.label,
            "ground_truth": truth,
            "trials": config.trials,
            "seed": config.seed,
        }
    )
    report.add_table("relative_error", error_table)
    if config.compute_divergences:
        report.add_table("kl_divergence", kl_table)
        report.add_table("l2_distance", l2_table)
    return report


def run_distribution_study(
    graph: Graph, config: DistributionStudyConfig, title: str = "distribution study"
) -> ExperimentReport:
    """Run the sampling-distribution experiment of Figure 8.

    For each walker the report's ``distribution`` table holds, per node
    (ordered by degree, x = rank), the empirical visit probability; the
    ``theoretical`` series holds the stationary distribution.  A second table
    ``divergence`` summarises the distance of each walker's empirical
    distribution from the theoretical one.
    """
    from ..metrics.distributions import nodes_by_degree

    ordering = nodes_by_degree(graph)
    support = graph.nodes()
    theoretical = theoretical_distribution(graph)

    distribution_table = ResultTable(
        title=f"{title}: sampling distribution",
        x_label="node rank (by degree)",
        y_label="probability",
    )
    theo_vector = theoretical.vector(ordering)
    for rank, probability in enumerate(theo_vector):
        distribution_table.add_point("Theoretical", rank, float(probability))

    divergence_table = ResultTable(
        title=f"{title}: distance to stationary distribution",
        x_label="walker",
        y_label="divergence",
    )

    empirical_by_walker: Dict[str, Distribution] = {}
    for walker_index, spec in enumerate(config.walkers):
        visits: List[object] = []
        for walk_index in range(config.num_walks):
            seed = derive_seed(config.seed, walker_index, walk_index)
            session = _make_session(graph, spec, derive_seed(seed, 1))
            start = _pick_start_node(graph, derive_seed(seed, 2))
            result = session.run(start, max_steps=config.steps)
            visits.extend(result.path)
        empirical = empirical_distribution(visits, support=support)
        empirical_by_walker[spec.display_label] = empirical
        vector = empirical.vector(ordering)
        for rank, probability in enumerate(vector):
            distribution_table.add_point(spec.display_label, rank, float(probability))
        divergence_table.add_point(
            "KL", walker_index, symmetric_kl_divergence(theoretical, empirical, support=support)
        )
        divergence_table.add_point(
            "L2", walker_index, l2_distance(theoretical, empirical, support=support)
        )

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update(
        {
            "graph": graph.name,
            "walkers": [spec.display_label for spec in config.walkers],
            "num_walks": config.num_walks,
            "steps": config.steps,
        }
    )
    report.add_table("distribution", distribution_table)
    report.add_table("divergence", divergence_table)
    return report


def run_size_sweep(
    graph_builder: Callable[[int], Graph],
    config: SizeSweepConfig,
    title: str = "size sweep",
) -> ExperimentReport:
    """Run a metric-versus-graph-size experiment (Figure 11).

    ``graph_builder`` maps a size parameter to a graph (e.g. a barbell graph
    with that clique size).  For each size the runner performs a single-budget
    cost experiment and records the mean relative error plus, optionally, the
    KL / L2 bias of the visit distribution.
    """
    error_table = ResultTable(
        title=f"{title}: relative error", x_label="graph size", y_label="relative error"
    )
    kl_table = ResultTable(
        title=f"{title}: KL divergence", x_label="graph size", y_label="KL divergence"
    )
    l2_table = ResultTable(
        title=f"{title}: L2 distance", x_label="graph size", y_label="L2 distance"
    )

    for size_index, size in enumerate(config.sizes):
        graph = graph_builder(size)
        truth = ground_truth(graph, config.query)
        theoretical = theoretical_distribution(graph) if config.compute_divergences else None
        support = graph.nodes() if config.compute_divergences else None
        for walker_index, spec in enumerate(config.walkers):
            errors: List[float] = []
            visits_all: List[object] = []
            for trial in range(config.trials):
                seed = derive_seed(config.seed, size_index, walker_index, trial)
                outcome = run_single_trial(graph, spec, config.query, config.budget, seed)
                if outcome["estimate"] is not None:
                    errors.append(relative_error(outcome["estimate"], truth))
                if config.compute_divergences:
                    visits_all.extend(outcome["path"])
            if errors:
                error_table.add_point(spec.display_label, size, sum(errors) / len(errors))
            if config.compute_divergences and visits_all:
                empirical = empirical_distribution(visits_all, support=support)
                kl_table.add_point(
                    spec.display_label,
                    size,
                    symmetric_kl_divergence(theoretical, empirical, support=support),
                )
                l2_table.add_point(
                    spec.display_label, size, l2_distance(theoretical, empirical, support=support)
                )

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update({"sizes": list(config.sizes), "budget": config.budget, "trials": config.trials})
    report.add_table("relative_error", error_table)
    if config.compute_divergences:
        report.add_table("kl_divergence", kl_table)
        report.add_table("l2_distance", l2_table)
    return report


def escape_probability_study(
    clique_sizes: Sequence[int],
    walkers: Sequence[WalkerSpec],
    steps: int = 200,
    trials: int = 100,
    seed: Optional[int] = 0,
    title: str = "barbell escape",
) -> ExperimentReport:
    """Measure how often each walker crosses a barbell bridge within ``steps``.

    Theorem 3 of the paper lower-bounds the ratio of the CNRW and SRW
    bridge-crossing probabilities by ``|G1| ln|G1| / (|G1| - 1)``.  This study
    estimates the crossing probability empirically: a walk starts inside the
    first clique and we record whether it ever reaches the second clique
    within ``steps`` transitions.
    """
    from ..graphs.generators import barbell_graph

    table = ResultTable(
        title=f"{title}: crossing probability",
        x_label="clique size",
        y_label="crossing probability",
    )
    for size_index, clique_size in enumerate(clique_sizes):
        graph = barbell_graph(clique_size)
        other_side = set(range(clique_size, 2 * clique_size))
        for walker_index, spec in enumerate(walkers):
            crossings = 0
            for trial in range(trials):
                trial_seed = derive_seed(seed, size_index, walker_index, trial)
                session = _make_session(graph, spec, derive_seed(trial_seed, 1))
                start_rng = make_rng(derive_seed(trial_seed, 2))
                start = int(start_rng.integers(0, clique_size))
                result = session.run(start, max_steps=steps)
                if any(node in other_side for node in result.path):
                    crossings += 1
            table.add_point(spec.display_label, clique_size, crossings / trials)

    report = ExperimentReport(name=title.replace(" ", "_"))
    report.metadata.update({"steps": steps, "trials": trials, "seed": seed})
    report.add_table("crossing_probability", table)
    return report
