"""One experiment definition per table / figure of the paper.

Every function here builds the workload (dataset + aggregate + walker line-up
+ budgets) of one paper figure and delegates execution to
:mod:`repro.experiments.runner`.  The ``trials`` / ``scale`` parameters let
the benchmark harness trade fidelity for runtime; the defaults are sized so
the whole suite completes in minutes on a laptop while preserving the
qualitative shape of the paper's results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..estimation.aggregates import AggregateQuery
from ..graphs.datasets import load_dataset
from ..graphs.generators import barbell_graph
from ..graphs.statistics import GraphSummary, summarize
from .config import (
    PAPER_FIVE_WALKERS,
    PAPER_FOUR_WALKERS,
    PAPER_THREE_WALKERS,
    CostSweepConfig,
    DistributionStudyConfig,
    SizeSweepConfig,
    WalkerSpec,
)
from .results import ExperimentReport
from .runner import (
    escape_probability_study,
    run_cost_sweep,
    run_distribution_study,
    run_size_sweep,
)

#: Dataset names in the order of the paper's Table 1.
TABLE1_DATASETS = (
    "facebook_like",
    "googleplus_like",
    "yelp_like",
    "youtube_like",
    "clustered",
    "barbell",
)


def table1(seed: int = 0, scale: float = 1.0, datasets: Optional[Sequence[str]] = None) -> List[GraphSummary]:
    """Table 1: summary statistics of every experiment dataset."""
    names = list(datasets) if datasets is not None else list(TABLE1_DATASETS)
    return [summarize(load_dataset(name, seed=seed, scale=scale)) for name in names]


def figure6(
    seed: int = 0,
    scale: float = 0.25,
    trials: int = 10,
    budgets: Sequence[int] = (200, 400, 600, 800, 1000),
) -> ExperimentReport:
    """Figure 6: average-degree estimation error on the Google-Plus-like graph.

    All five walkers (MHRW, SRW, NB-SRW, CNRW, GNRW) are compared on the
    relative error of the average-degree estimate as the query budget grows.
    The paper's headline observations — CNRW/GNRW dominate, MHRW is far worse
    — are asserted by the test suite on this report.
    """
    graph = load_dataset("googleplus_like", seed=seed, scale=scale)
    config = CostSweepConfig(
        walkers=PAPER_FIVE_WALKERS,
        query=AggregateQuery.average_degree(),
        budgets=tuple(budgets),
        trials=trials,
        seed=seed,
    )
    return run_cost_sweep(graph, config, title="figure6 googleplus average degree")


def figure7_facebook(
    seed: int = 0,
    scale: float = 1.0,
    trials: int = 10,
    budgets: Sequence[int] = (20, 40, 60, 80, 100, 120, 140),
) -> ExperimentReport:
    """Figure 7(a-c): KL divergence, L2 distance and estimation error on Facebook."""
    graph = load_dataset("facebook_like", seed=seed, scale=scale)
    config = CostSweepConfig(
        walkers=PAPER_FOUR_WALKERS,
        query=AggregateQuery.average_degree(),
        budgets=tuple(budgets),
        trials=trials,
        seed=seed,
        compute_divergences=True,
    )
    return run_cost_sweep(graph, config, title="figure7 facebook")


def figure7_youtube(
    seed: int = 0,
    scale: float = 1.0,
    trials: int = 8,
    budgets: Sequence[int] = (100, 250, 500, 750, 1000),
) -> ExperimentReport:
    """Figure 7(d): estimation error on the Youtube-like graph (SRW/CNRW/GNRW)."""
    graph = load_dataset("youtube_like", seed=seed, scale=scale)
    config = CostSweepConfig(
        walkers=PAPER_THREE_WALKERS,
        query=AggregateQuery.average_degree(),
        budgets=tuple(budgets),
        trials=trials,
        seed=seed,
    )
    return run_cost_sweep(graph, config, title="figure7 youtube")


def figure8(
    seed: int = 0,
    scale: float = 0.4,
    num_walks: int = 20,
    steps: int = 2000,
) -> ExperimentReport:
    """Figure 8: sampling distributions of SRW, CNRW and GNRW vs theoretical pi.

    The paper runs 100 walks of 10,000 steps on two Facebook ego networks; the
    defaults here are scaled down but the assertion is identical: all three
    walkers' empirical visit distributions converge to ``pi(v) = deg(v)/2|E|``.
    """
    graph = load_dataset("facebook_like", seed=seed, scale=scale)
    config = DistributionStudyConfig(
        walkers=PAPER_THREE_WALKERS,
        num_walks=num_walks,
        steps=steps,
        seed=seed,
    )
    return run_distribution_study(graph, config, title="figure8 sampling distribution")


def figure9(
    seed: int = 0,
    scale: float = 1.0,
    trials: int = 10,
    budgets: Sequence[int] = (100, 250, 500, 750, 1000),
    attribute: str = "reviews_count",
) -> List[ExperimentReport]:
    """Figure 9: GNRW grouping strategies on the Yelp-like graph.

    Two sub-experiments, matching Figures 9(a) and 9(b): estimating the
    average degree and the average ``reviews_count``, each with SRW as the
    baseline and GNRW grouped by degree, by MD5 and by ``reviews_count``.
    Returns a list of two reports (average degree first).
    """
    graph = load_dataset("yelp_like", seed=seed, scale=scale)
    walkers = (
        WalkerSpec.make("srw", label="SRW"),
        WalkerSpec.make("gnrw_by_degree", label="GNRW_By_Degree"),
        WalkerSpec.make("gnrw_by_md5", label="GNRW_By_MD5"),
        WalkerSpec.make(
            "gnrw_by_attribute", label="GNRW_By_ReviewsCount", group_attribute=attribute
        ),
    )
    reports: List[ExperimentReport] = []
    for query, label in (
        (AggregateQuery.average_degree(), "figure9a yelp average degree"),
        (AggregateQuery.average_attribute(attribute), "figure9b yelp average reviews count"),
    ):
        config = CostSweepConfig(
            walkers=walkers,
            query=query,
            budgets=tuple(budgets),
            trials=trials,
            seed=seed,
        )
        reports.append(run_cost_sweep(graph, config, title=label))
    return reports


def figure10(
    seed: int = 0,
    scale: float = 1.0,
    trials: int = 10,
    budgets: Sequence[int] = (20, 40, 60, 80, 100, 120, 140),
) -> ExperimentReport:
    """Figure 10: clustered graph (cliques of 10/30/50) with all bias measures."""
    graph = load_dataset("clustered", seed=seed, scale=scale)
    config = CostSweepConfig(
        walkers=PAPER_FOUR_WALKERS,
        query=AggregateQuery.average_attribute("age"),
        budgets=tuple(budgets),
        trials=trials,
        seed=seed,
        compute_divergences=True,
    )
    return run_cost_sweep(graph, config, title="figure10 clustered graph")


def figure11(
    seed: int = 0,
    sizes: Sequence[int] = (10, 14, 18, 22, 26),
    budget: int = 80,
    trials: int = 10,
) -> ExperimentReport:
    """Figure 11: metrics vs barbell graph size (total nodes = 2 * clique size).

    The paper varies the barbell size from 20 to 56 nodes; ``sizes`` here are
    clique sizes, so the default range covers 20 to 52 total nodes.
    """
    config = SizeSweepConfig(
        walkers=PAPER_THREE_WALKERS,
        query=AggregateQuery.average_attribute("age"),
        sizes=tuple(sizes),
        budget=budget,
        trials=trials,
        seed=seed,
    )

    def builder(clique_size: int):
        graph = barbell_graph(clique_size)
        # Attach the community-correlated "age" attribute like the dataset
        # builder does, so the aggregate has real between-clique variance.
        from ..graphs.attributes import assign_community_correlated_attribute

        assign_community_correlated_attribute(
            graph, name="age", base=25.0, spread=20.0, noise=1.0, seed=seed
        )
        return graph

    return run_size_sweep(builder, config, title="figure11 barbell size sweep")


def theorem3_escape(
    seed: int = 0,
    clique_sizes: Sequence[int] = (10, 20, 30, 40, 50),
    steps: int = 300,
    trials: int = 60,
) -> ExperimentReport:
    """Theorem 3 ablation: barbell bridge-crossing probability, CNRW vs SRW."""
    walkers = (
        WalkerSpec.make("srw", label="SRW"),
        WalkerSpec.make("cnrw", label="CNRW"),
    )
    return escape_probability_study(
        clique_sizes=clique_sizes,
        walkers=walkers,
        steps=steps,
        trials=trials,
        seed=seed,
        title="theorem3 barbell escape",
    )


def ablation_recurrence(
    seed: int = 0,
    scale: float = 1.0,
    trials: int = 10,
    budgets: Sequence[int] = (20, 40, 60, 80, 100, 120, 140),
) -> ExperimentReport:
    """Section 3.2 ablation: edge-based vs node-based circulation for CNRW.

    The paper states (without showing the data) that the edge-based design
    outperforms the node-based one; this experiment regenerates that
    comparison on the clustered graph, alongside SRW for reference.
    """
    graph = load_dataset("clustered", seed=seed, scale=scale)
    walkers = (
        WalkerSpec.make("srw", label="SRW"),
        WalkerSpec.make("cnrw", label="CNRW-edge"),
        WalkerSpec.make("cnrw_node", label="CNRW-node"),
        WalkerSpec.make("nbcnrw", label="NB-CNRW"),
    )
    config = CostSweepConfig(
        walkers=walkers,
        query=AggregateQuery.average_attribute("age"),
        budgets=tuple(budgets),
        trials=trials,
        seed=seed,
        compute_divergences=True,
    )
    return run_cost_sweep(graph, config, title="ablation recurrence design")
