"""Experiment configuration objects.

The experiment harness is configured declaratively so every paper figure is a
small, inspectable configuration value rather than an ad-hoc script.  All
configurations validate themselves eagerly, so a typo fails at construction
time rather than hours into a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..estimation.aggregates import AggregateQuery
from ..exceptions import InvalidConfigurationError


@dataclass(frozen=True)
class WalkerSpec:
    """One sampler to run: a factory name plus its keyword options.

    Attributes:
        name: A walker-registry name (e.g. ``"cnrw"``, ``"gnrw_by_degree"``).
        label: Label used in result tables (defaults to the upper-case name).
        options: Extra keyword arguments for :func:`repro.walks.make_walker`.
        uniform_samples: Whether this sampler targets the uniform distribution
            (MHRW) and therefore needs the un-reweighted estimator.
    """

    name: str
    label: Optional[str] = None
    options: Tuple[Tuple[str, object], ...] = ()
    uniform_samples: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidConfigurationError("walker name must be non-empty")

    @property
    def display_label(self) -> str:
        return self.label or self.name.upper()

    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    @classmethod
    def make(cls, name: str, label: Optional[str] = None, uniform_samples: bool = False, **options) -> "WalkerSpec":
        """Convenience constructor accepting options as keyword arguments."""
        return cls(
            name=name,
            label=label,
            options=tuple(sorted(options.items())),
            uniform_samples=uniform_samples,
        )


@dataclass(frozen=True)
class CostSweepConfig:
    """Configuration of an error-versus-query-cost experiment (Figures 6-10).

    For every query budget and every walker, ``trials`` independent walks are
    run; each walk keeps walking until its budget is exhausted, samples every
    visited node, and produces one aggregate estimate.  The averaged error at
    each budget forms one point of the curve.
    """

    walkers: Sequence[WalkerSpec]
    query: AggregateQuery
    budgets: Sequence[int]
    trials: int = 20
    burn_in: int = 0
    thinning: int = 1
    seed: Optional[int] = 0
    compute_divergences: bool = False
    divergence_smoothing: float = 0.0

    def __post_init__(self) -> None:
        if not self.walkers:
            raise InvalidConfigurationError("need at least one walker")
        if not self.budgets:
            raise InvalidConfigurationError("need at least one budget")
        if any(budget < 2 for budget in self.budgets):
            raise InvalidConfigurationError("budgets must be at least 2 queries")
        if self.trials < 1:
            raise InvalidConfigurationError("trials must be at least 1")
        if self.burn_in < 0:
            raise InvalidConfigurationError("burn_in must be non-negative")
        if self.thinning < 1:
            raise InvalidConfigurationError("thinning must be at least 1")


@dataclass(frozen=True)
class DistributionStudyConfig:
    """Configuration of a sampling-distribution study (Figure 8).

    Runs ``num_walks`` independent walks of ``steps`` steps for each walker
    and accumulates visit counts into an empirical distribution, which is then
    compared against the theoretical ``pi``.
    """

    walkers: Sequence[WalkerSpec]
    num_walks: int = 20
    steps: int = 2000
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not self.walkers:
            raise InvalidConfigurationError("need at least one walker")
        if self.num_walks < 1:
            raise InvalidConfigurationError("num_walks must be at least 1")
        if self.steps < 1:
            raise InvalidConfigurationError("steps must be at least 1")


@dataclass(frozen=True)
class SizeSweepConfig:
    """Configuration of a graph-size sweep (Figure 11: barbell sizes).

    ``sizes`` are passed to a graph-builder callable supplied at run time; the
    per-size experiment is otherwise a cost experiment at a single budget.
    """

    walkers: Sequence[WalkerSpec]
    query: AggregateQuery
    sizes: Sequence[int]
    budget: int
    trials: int = 20
    seed: Optional[int] = 0
    compute_divergences: bool = True

    def __post_init__(self) -> None:
        if not self.walkers:
            raise InvalidConfigurationError("need at least one walker")
        if not self.sizes:
            raise InvalidConfigurationError("need at least one size")
        if self.budget < 2:
            raise InvalidConfigurationError("budget must be at least 2")
        if self.trials < 1:
            raise InvalidConfigurationError("trials must be at least 1")


# Walker line-ups used repeatedly by the paper's figures.
PAPER_FIVE_WALKERS = (
    WalkerSpec.make("mhrw", label="MHRW", uniform_samples=True),
    WalkerSpec.make("srw", label="SRW"),
    WalkerSpec.make("nbsrw", label="NB-SRW"),
    WalkerSpec.make("cnrw", label="CNRW"),
    WalkerSpec.make("gnrw_by_degree", label="GNRW"),
)

PAPER_FOUR_WALKERS = (
    WalkerSpec.make("srw", label="SRW"),
    WalkerSpec.make("nbsrw", label="NB-SRW"),
    WalkerSpec.make("cnrw", label="CNRW"),
    WalkerSpec.make("gnrw_by_degree", label="GNRW"),
)

PAPER_THREE_WALKERS = (
    WalkerSpec.make("srw", label="SRW"),
    WalkerSpec.make("cnrw", label="CNRW"),
    WalkerSpec.make("gnrw_by_degree", label="GNRW"),
)
