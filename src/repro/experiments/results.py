"""Result containers for the experiment harness.

The harness produces *series* (metric value as a function of query cost,
graph size, ...) per sampler, plus flat tables for CSV export.  No plotting
dependency is used; the benchmark scripts print the series in the same layout
as the paper's figures and EXPERIMENTS.md records them.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union


@dataclass
class Series:
    """One curve: ``y`` values indexed by ``x`` values for one sampler."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add_point(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.x, self.y))

    def final_value(self) -> float:
        if not self.y:
            raise ValueError("series is empty")
        return self.y[-1]

    def mean_value(self) -> float:
        if not self.y:
            raise ValueError("series is empty")
        return sum(self.y) / len(self.y)

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class ResultTable:
    """A collection of named series sharing the same x-axis meaning.

    Attributes:
        title: Table/figure title (e.g. ``"Figure 6: Google Plus"``).
        x_label: Meaning of the x values (``"query cost"``, ``"graph size"``).
        y_label: Meaning of the y values (``"relative error"``, ...).
        series: Mapping label -> :class:`Series`.
        metadata: Free-form extra information (dataset name, trials, seed...).
    """

    title: str
    x_label: str = "query cost"
    y_label: str = "value"
    series: Dict[str, Series] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_point(self, label: str, x: float, y: float) -> None:
        """Append a point to the series named ``label`` (created on demand)."""
        if label not in self.series:
            self.series[label] = Series(label=label)
        self.series[label].add_point(x, y)

    def labels(self) -> List[str]:
        return list(self.series)

    def get(self, label: str) -> Series:
        return self.series[label]

    def x_values(self) -> List[float]:
        """Return the union of x values across series, sorted."""
        values = set()
        for series in self.series.values():
            values.update(series.x)
        return sorted(values)

    # ------------------------------------------------------------------
    # Comparisons (used by tests and EXPERIMENTS.md generation)
    # ------------------------------------------------------------------
    def mean_of(self, label: str) -> float:
        return self.get(label).mean_value()

    def dominates(self, better: str, worse: str, tolerance: float = 0.0) -> bool:
        """Return whether ``better``'s mean y value is <= ``worse``'s.

        This is the headline comparison of the paper ("CNRW/GNRW achieve lower
        error than SRW at equal query cost"), evaluated on curve averages to
        be robust to per-point noise.  ``tolerance`` allows a small slack.
        """
        return self.mean_of(better) <= self.mean_of(worse) * (1.0 + tolerance)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """Return long-format rows: one per (series, point)."""
        rows: List[Dict[str, object]] = []
        for label, series in self.series.items():
            for x, y in zip(series.x, series.y):
                rows.append({"series": label, self.x_label: x, self.y_label: y})
        return rows

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Render the table as CSV text; also write it to ``path`` if given."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=["series", self.x_label, self.y_label])
        writer.writeheader()
        for row in self.rows():
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_wide_rows(self) -> List[List[object]]:
        """Return wide-format rows: header + one row per x value."""
        labels = self.labels()
        header: List[object] = [self.x_label] + labels
        rows: List[List[object]] = [header]
        lookup = {label: self.get(label).as_dict() for label in labels}
        for x in self.x_values():
            row: List[object] = [x]
            for label in labels:
                row.append(lookup[label].get(x, ""))
            rows.append(row)
        return rows


@dataclass
class ExperimentReport:
    """A bundle of result tables produced by one experiment (one figure)."""

    name: str
    tables: Dict[str, ResultTable] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_table(self, key: str, table: ResultTable) -> None:
        self.tables[key] = table

    def get(self, key: str) -> ResultTable:
        return self.tables[key]

    def keys(self) -> List[str]:
        return list(self.tables)

    def to_csv_files(self, directory: Union[str, Path]) -> List[Path]:
        """Write one CSV per table into ``directory`` and return the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: List[Path] = []
        for key, table in self.tables.items():
            path = directory / f"{self.name}_{key}.csv"
            table.to_csv(path)
            paths.append(path)
        return paths
