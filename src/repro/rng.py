"""Seedable random-number helpers.

Every stochastic component of the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so that experiments are reproducible end to
end by threading a single integer seed through the configuration objects.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar, Union

import numpy as np

T = TypeVar("T")

#: Anything accepted as a source of randomness.
SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Args:
        seed: ``None`` for fresh OS entropy, an ``int`` seed, or an existing
            generator (returned unchanged so state is shared intentionally).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the streams are
    statistically independent regardless of ``count``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit generator seed sequence.
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seed_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def choice(rng: np.random.Generator, items: Sequence[T]) -> T:
    """Uniformly choose one element of ``items`` (which must be non-empty)."""
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    index = int(rng.integers(0, len(items)))
    return items[index]


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence[T],
    weights: Sequence[float],
) -> T:
    """Choose one element of ``items`` with probability proportional to weight."""
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    threshold = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        cumulative += weight
        if threshold < cumulative:
            return item
    # Floating point slack: return the last item with positive weight.
    for item, weight in zip(reversed(items), reversed(list(weights))):
        if weight > 0:
            return item
    raise ValueError("no item with positive weight")


def shuffled(rng: np.random.Generator, items: Sequence[T]) -> list:
    """Return a new list with the elements of ``items`` in random order."""
    result = list(items)
    rng.shuffle(result)
    return result


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """Return ``True`` with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    return bool(rng.random() < probability)


def derive_seed(seed: Optional[int], *components: int) -> Optional[int]:
    """Deterministically combine a base seed with integer components.

    Used by the experiment runner to give each (trial, budget) cell its own
    reproducible stream while keeping a single user-facing seed.
    """
    if seed is None:
        return None
    mixed = np.random.SeedSequence([seed, *components])
    return int(mixed.generate_state(1)[0])
