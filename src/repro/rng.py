"""Seedable random-number helpers.

Every stochastic component of the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so that experiments are reproducible end to
end by threading a single integer seed through the configuration objects.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar, Union

import numpy as np

T = TypeVar("T")

#: Anything accepted as a source of randomness.
SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Args:
        seed: ``None`` for fresh OS entropy, an ``int`` seed, or an existing
            generator (returned unchanged so state is shared intentionally).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the streams are
    statistically independent regardless of ``count``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit generator seed sequence.
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seed_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def choice(rng: np.random.Generator, items: Sequence[T]) -> T:
    """Uniformly choose one element of ``items`` (which must be non-empty)."""
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    index = int(rng.integers(0, len(items)))
    return items[index]


def cumulative_pick(
    items: Sequence[T],
    weights: Sequence[float],
    threshold: float,
) -> T:
    """Select the item whose cumulative-weight interval contains ``threshold``.

    ``weights`` must be non-negative (callers validate); ``threshold`` is a
    uniform draw on ``[0, sum(weights))``.  Floating-point slack in the
    cumulative sum can leave ``threshold`` past the final interval, in which
    case the last item with positive weight is returned.
    """
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if threshold < cumulative:
            return item
    # Floating point slack: return the last item with positive weight.
    for item, weight in zip(reversed(items), reversed(list(weights))):
        if weight > 0:
            return item
    raise ValueError("no item with positive weight")


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence[T],
    weights: Sequence[float],
) -> T:
    """Choose one element of ``items`` with probability proportional to weight."""
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    # Validate every weight up front: the selection scan exits early, so a
    # check inside it would silently accept negatives past the chosen item.
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return cumulative_pick(items, weights, rng.random() * total)


def shuffled(rng: np.random.Generator, items: Sequence[T]) -> list:
    """Return a new list with the elements of ``items`` in random order."""
    result = list(items)
    rng.shuffle(result)
    return result


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """Return ``True`` with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    return bool(rng.random() < probability)


#: Integer tags keeping each execution mode's seed lineage disjoint.  The
#: scalar lineage (plain ``SeedSequence(seed)`` / ``derive_seed``) is the
#: conformance reference; new execution modes get their own tag so their
#: streams can never collide with — or silently drift from — the golden
#: scalar fingerprints.
LINEAGE_TAGS = {
    "vector": 0x56454354,  # ASCII "VECT"
}


def lineage_rng(seed: SeedLike, lineage: str = "vector") -> np.random.Generator:
    """Return the root generator of a named, explicitly separate seed lineage.

    An integer seed is mixed with the lineage tag via
    ``SeedSequence([tag, seed])`` so the stream is deterministic but disjoint
    from every scalar-lineage stream derived from the same user seed.  An
    existing generator spawns a child (shared-state semantics would defeat
    batched draws); ``None`` gives fresh entropy.
    """
    try:
        tag = LINEAGE_TAGS[lineage]
    except KeyError:
        known = ", ".join(sorted(LINEAGE_TAGS))
        raise ValueError(f"unknown seed lineage {lineage!r} (known: {known})")
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        return np.random.default_rng(seed_seq.spawn(1)[0])
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence([tag, int(seed)]))


def derive_seed(seed: Optional[int], *components: int) -> Optional[int]:
    """Deterministically combine a base seed with integer components.

    Used by the experiment runner to give each (trial, budget) cell its own
    reproducible stream while keeping a single user-facing seed.
    """
    if seed is None:
        return None
    mixed = np.random.SeedSequence([seed, *components])
    return int(mixed.generate_state(1)[0])
