"""A consistent-hashed cluster of graph shards behind one backend.

:class:`ShardedBackend` presents N shard backends — usually
:class:`~repro.api.remote.HTTPGraphBackend` clients driving N ``serve``
processes, but any :class:`~repro.api.backend.GraphBackend` works — as one
backend: ``fetch`` routes by ring lookup (memoised per node), ``fetch_many``
splits a batch into per-shard sub-batches dispatched *concurrently* over the
shards' keep-alive connections and re-merged in request order, and
``metadata`` / ``contains`` / ``node_ids`` / ``sample_node`` federate across
the shards.  HTTP shards are dispatched by *pipelining*: every sub-batch is
posted before the first response is read, so the shard servers work in
parallel without any client-side threads; backends that cannot pipeline fan
out over a thread pool (one worker per shard) instead.  Because every
policy (cache, budget, rate limit, trace) sits in middleware above the
backend protocol, a kernel walking a sharded cluster is bit-identical to
the same kernel walking the unpartitioned graph — the conformance suite
asserts exactly that.

Failure semantics: node-level misses surface unchanged
(:class:`~repro.exceptions.NodeNotFoundError` /
:class:`~repro.exceptions.ReplayMissError`); anything else a shard raises is
wrapped into :class:`~repro.exceptions.ShardError` carrying the failing
shard's index and address.

:func:`load_cluster` reassembles a cluster from a ``cluster.json`` manifest
(paths or URLs per shard); :func:`open_cluster` additionally understands the
``cluster://host:port,host:port,...`` URL-list shorthand, which assumes the
manifest's default ring spec and shard order.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..api.backend import GraphBackend, RawRecord, as_backend
from ..exceptions import ClusterError, NodeNotFoundError, ShardError
from ..types import NodeId
from .partition import (
    CLUSTER_FORMAT,
    CLUSTER_MANIFEST_NAME,
    CLUSTER_VERSION,
    DEFAULT_VNODES,
    HashRing,
)

PathLike = Union[str, Path]

#: URL scheme of the manifest-less shorthand: ``cluster://host:port,host:port``.
CLUSTER_URL_SCHEME = "cluster://"


def _raiser(error: Exception):
    """A collector that re-raises a failure captured during the send phase."""
    def collect():
        raise error
    return collect


def _collector(backend, handle):
    """A collector that finishes one shard's pipelined batched fetch."""
    def collect():
        return backend.end_fetch_many(handle)
    return collect


class ShardedBackend(GraphBackend):
    """Route backend fetches across consistent-hashed shard backends.

    Args:
        shards: One backend per shard, in ring shard order.
        ring: The :class:`~repro.cluster.partition.HashRing` the data was
            partitioned with.  Defaults to ``HashRing(len(shards))`` — only
            correct if the partition used the default vnodes count too.
        name: Backend name; defaults to ``cluster:<N>``.

    The cluster is treated as immutable for the lifetime of the backend
    (like every other backend): per-shard sizes and the federated node-id
    table are fetched once and cached.  ``close()`` shuts the dispatch pool
    down and closes every shard backend; the class is a context manager.
    """

    def __init__(
        self,
        shards: Sequence[GraphBackend],
        ring: Optional[HashRing] = None,
        name: Optional[str] = None,
    ) -> None:
        if not shards:
            raise ClusterError("a cluster needs at least one shard backend")
        self._shards: List[GraphBackend] = list(shards)
        self._ring = ring if ring is not None else HashRing(len(self._shards))
        if self._ring.shards != len(self._shards):
            raise ClusterError(
                f"ring routes {self._ring.shards} shards but {len(self._shards)} "
                f"shard backends were provided"
            )
        self._labels = [
            getattr(backend, "base_url", None) or backend.name
            for backend in self._shards
        ]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._sizes: Optional[List[int]] = None
        self._node_ids: Optional[List[NodeId]] = None
        # Ring lookups hash the JSON-encoded id; walks revisit nodes heavily,
        # so memoising node -> shard turns the per-batch routing cost into a
        # dict probe.  Unhashable ids can't be cached (they can't be fetched
        # either — the ring raises its typed error for them).
        self._route_cache: Dict[NodeId, int] = {}
        # Every shard speaking the pipelined two-phase protocol lets a batch
        # post all sub-batches before reading any response.
        self._pipelined = all(
            hasattr(backend, "begin_fetch_many") and hasattr(backend, "end_fetch_many")
            for backend in self._shards
        )
        self.name = name if name is not None else f"cluster:{len(self._shards)}"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def shard_backends(self) -> List[GraphBackend]:
        """The per-shard backends, in ring shard order (read-only view)."""
        return list(self._shards)

    def shard_of(self, node: NodeId) -> int:
        """Return the shard index the ring routes ``node`` to (memoised)."""
        try:
            return self._route_cache[node]
        except KeyError:
            pass
        except TypeError:
            return self._ring.shard_of(node)  # unhashable id: typed ring error
        shard = self._ring.shard_of(node)
        self._route_cache[node] = shard
        return shard

    def _shard_error(self, shard: int, error: Exception, doing: str) -> ShardError:
        return ShardError(
            f"shard {shard} ({self._labels[shard]}) failed during {doing}: "
            f"{type(error).__name__}: {error}",
            shard=shard,
            url=self._labels[shard],
        )

    # ------------------------------------------------------------------
    # GraphBackend interface
    # ------------------------------------------------------------------
    def fetch(self, node: NodeId) -> RawRecord:
        shard = self.shard_of(node)
        try:
            return self._shards[shard].fetch(node)
        except NodeNotFoundError:
            raise
        except Exception as error:
            raise self._shard_error(shard, error, f"fetch({node!r})") from error

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        order = list(nodes)
        if not order:
            return []
        # Split the batch into per-shard sub-batches; each keeps its nodes in
        # request order (duplicates included), so re-merging by remembered
        # positions reproduces the exact sequential-fetch answer.
        positions: Dict[int, List[int]] = {}
        sub_batches: Dict[int, List[NodeId]] = {}
        for position, node in enumerate(order):
            shard = self.shard_of(node)
            positions.setdefault(shard, []).append(position)
            sub_batches.setdefault(shard, []).append(node)
        if len(sub_batches) == 1:
            ((shard, batch),) = sub_batches.items()
            try:
                return list(self._shards[shard].fetch_many(batch))
            except NodeNotFoundError:
                raise
            except Exception as error:
                raise self._shard_error(
                    shard, error, f"fetch_many({len(batch)} nodes)"
                ) from error
        if self._pipelined:
            tasks = self._dispatch_pipelined(sub_batches)
        else:
            tasks = [
                (shard, self._dispatch_pool().submit(
                    self._shards[shard].fetch_many, batch).result)
                for shard, batch in sub_batches.items()
            ]
        records: List[Optional[RawRecord]] = [None] * len(order)
        miss: Optional[NodeNotFoundError] = None
        failure: Optional[ShardError] = None
        for shard, collect in tasks:
            try:
                shard_records = collect()
            except NodeNotFoundError as error:
                # A missing node aborts the whole batch, mirroring a local
                # sequential fetch_many; remember the first miss but keep
                # draining the other shards so no work is abandoned mid-air.
                if miss is None:
                    miss = error
            except Exception as error:
                if failure is None:
                    failure = self._shard_error(
                        shard, error, f"fetch_many({len(sub_batches[shard])} nodes)"
                    )
                    failure.__cause__ = error
            else:
                for position, record in zip(positions[shard], shard_records):
                    records[position] = record
        if miss is not None:
            raise miss
        if failure is not None:
            raise failure
        return records  # type: ignore[return-value]

    def _dispatch_pipelined(self, sub_batches: Dict[int, List[NodeId]]):
        """Post every shard's sub-batch, then return response collectors.

        All requests are in flight before the first response is read, so the
        shard servers work concurrently without any client-side threads —
        on loopback this beats a thread pool (no future/GIL churn), and over
        a real network the in-flight overlap is the same.
        """
        tasks = []
        for shard, batch in sub_batches.items():
            backend = self._shards[shard]
            try:
                handle = backend.begin_fetch_many(batch)
            except Exception as error:
                exc = error
                tasks.append((shard, _raiser(exc)))
            else:
                tasks.append((shard, _collector(backend, handle)))
        return tasks

    def contains(self, node: NodeId) -> bool:
        shard = self.shard_of(node)
        try:
            return self._shards[shard].contains(node)
        except Exception as error:
            raise self._shard_error(shard, error, f"contains({node!r})") from error

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        shard = self.shard_of(node)
        try:
            return self._shards[shard].metadata(node)
        except Exception as error:
            raise self._shard_error(shard, error, f"metadata({node!r})") from error

    def node_ids(self) -> List[NodeId]:
        return list(self._all_node_ids())

    def sample_node(self, rng) -> NodeId:
        nodes = self._all_node_ids()
        return nodes[int(rng.integers(0, len(nodes)))]

    def __len__(self) -> int:
        return sum(self._shard_sizes())

    # ------------------------------------------------------------------
    # Federation caches
    # ------------------------------------------------------------------
    def _shard_sizes(self) -> List[int]:
        if self._sizes is None:
            sizes = []
            for shard, backend in enumerate(self._shards):
                try:
                    sizes.append(len(backend))
                except Exception as error:
                    raise self._shard_error(shard, error, "len()") from error
            self._sizes = sizes
        return self._sizes

    def _all_node_ids(self) -> List[NodeId]:
        if self._node_ids is None:
            nodes: List[NodeId] = []
            for shard, backend in enumerate(self._shards):
                try:
                    nodes.extend(backend.node_ids())
                except Exception as error:
                    raise self._shard_error(shard, error, "node_ids()") from error
            self._node_ids = nodes
        return self._node_ids

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _dispatch_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._shards), thread_name_prefix="repro-cluster"
            )
        return self._pool

    def close(self) -> None:
        """Shut the dispatch pool down and close every shard backend."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        for backend in self._shards:
            backend.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedBackend(name={self.name!r}, shards={len(self._shards)}, "
            f"ring={self._ring!r})"
        )


# ----------------------------------------------------------------------
# Manifest / URL-list loading
# ----------------------------------------------------------------------
def read_cluster_manifest(path: PathLike) -> Tuple[Dict[str, Any], Path]:
    """Read and validate a ``cluster.json``; returns (manifest, base dir)."""
    path = Path(path)
    if path.is_dir():
        path = path / CLUSTER_MANIFEST_NAME
    if not path.is_file():
        raise ClusterError(f"no cluster manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ClusterError(f"unreadable cluster manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != CLUSTER_FORMAT:
        raise ClusterError(
            f"{path} is not a {CLUSTER_FORMAT} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else manifest!r})"
        )
    if manifest.get("version") != CLUSTER_VERSION:
        raise ClusterError(
            f"cluster manifest {path} has version {manifest.get('version')!r}; "
            f"this build reads version {CLUSTER_VERSION}"
        )
    return manifest, path.parent


def _shard_entries(manifest: Dict[str, Any], ring: HashRing) -> List[Dict[str, Any]]:
    entries = manifest.get("shards")
    if not isinstance(entries, list) or not entries:
        raise ClusterError("cluster manifest has no 'shards' entries")
    by_index: Dict[int, Dict[str, Any]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "shard" not in entry or "source" not in entry:
            raise ClusterError(f"malformed shard entry {entry!r}")
        by_index[int(entry["shard"])] = entry
    if sorted(by_index) != list(range(ring.shards)):
        raise ClusterError(
            f"cluster manifest lists shards {sorted(by_index)} but the ring "
            f"routes {ring.shards} shards (expected 0..{ring.shards - 1})"
        )
    return [by_index[index] for index in range(ring.shards)]


def load_cluster(path: PathLike, **client_options) -> ShardedBackend:
    """Open a ``cluster.json`` manifest (or its directory) as one backend.

    Each shard entry's ``source`` is an ``http(s)://`` URL (driven through
    :class:`~repro.api.remote.HTTPGraphBackend`, with ``client_options``
    forwarded — ``timeout``, ``retries``, ...) or a path to a shard
    directory, resolved relative to the manifest's own directory.
    """
    manifest, base_dir = read_cluster_manifest(path)
    ring = HashRing.from_spec(manifest.get("ring"))
    backends: List[GraphBackend] = []
    try:
        for entry in _shard_entries(manifest, ring):
            source = entry["source"]
            if isinstance(source, str) and source.startswith(("http://", "https://")):
                from ..api.remote import HTTPGraphBackend

                backends.append(HTTPGraphBackend(source, **client_options))
            else:
                backends.append(as_backend(str(base_dir / source)))
    except Exception:
        for backend in backends:
            backend.close()
        raise
    name = manifest.get("name")
    return ShardedBackend(
        backends, ring, name=f"cluster:{name}" if name else None
    )


def parse_cluster_url(url: str) -> List[str]:
    """Split a ``cluster://`` URL list into per-shard base URLs.

    ``cluster://host:port,host:port,...`` — entries without a scheme get
    ``http://`` prefixed.  Shard order is list order, and the ring is the
    default spec (``DEFAULT_VNODES`` virtual nodes), matching what
    ``partition_snapshot`` writes when not told otherwise.
    """
    if not url.startswith(CLUSTER_URL_SCHEME):
        raise ClusterError(f"not a {CLUSTER_URL_SCHEME} URL: {url!r}")
    entries = [entry.strip() for entry in url[len(CLUSTER_URL_SCHEME):].split(",")]
    entries = [entry for entry in entries if entry]
    if not entries:
        raise ClusterError(
            f"{url!r} names no shard servers (expected "
            f"{CLUSTER_URL_SCHEME}host:port,host:port,...)"
        )
    return [
        entry if entry.startswith(("http://", "https://")) else f"http://{entry}"
        for entry in entries
    ]


def cluster_from_urls(
    urls: Sequence[str], *, vnodes: int = DEFAULT_VNODES, **client_options
) -> ShardedBackend:
    """Build a :class:`ShardedBackend` over shard-server URLs, in ring order."""
    from ..api.remote import HTTPGraphBackend

    backends = [HTTPGraphBackend(url, **client_options) for url in urls]
    return ShardedBackend(backends, HashRing(len(backends), vnodes=vnodes))


def open_cluster(source: PathLike, **client_options) -> ShardedBackend:
    """Open a cluster from a ``cluster://`` URL list or a manifest path."""
    if isinstance(source, str) and source.startswith(CLUSTER_URL_SCHEME):
        return cluster_from_urls(parse_cluster_url(source), **client_options)
    return load_cluster(source, **client_options)
