"""A consistent-hashed cluster of graph shards behind one backend.

:class:`ShardedBackend` presents N shard backends — usually
:class:`~repro.api.remote.HTTPGraphBackend` clients driving N ``serve``
processes, but any :class:`~repro.api.backend.GraphBackend` works — as one
backend: ``fetch`` routes by ring lookup (memoised per node), ``fetch_many``
splits a batch into per-shard sub-batches dispatched *concurrently* over the
shards' keep-alive connections and re-merged in request order, and
``metadata`` / ``contains`` / ``node_ids`` / ``sample_node`` federate across
the shards.  HTTP shards are dispatched by *pipelining*: every sub-batch is
posted before the first response is read, so the shard servers work in
parallel without any client-side threads; backends that cannot pipeline fan
out over a thread pool (one worker per shard) instead.  Because every
policy (cache, budget, rate limit, trace) sits in middleware above the
backend protocol, a kernel walking a sharded cluster is bit-identical to
the same kernel walking the unpartitioned graph — the conformance suite
asserts exactly that.

Failure semantics: node-level misses surface unchanged
(:class:`~repro.exceptions.NodeNotFoundError` /
:class:`~repro.exceptions.ReplayMissError`); anything else a shard raises is
wrapped into :class:`~repro.exceptions.ShardError` carrying the failing
shard's index and address.  On a replicated layout
(``partition_snapshot(..., replicas=k)``) reads rotate round-robin across a
node's live replicas and *fail over*: a failing shard is marked dead for a
deterministic cool-down and the read retries the next replica, so
:class:`~repro.exceptions.ShardError` only escapes once every replica of the
range is down.  Walks stay bit-identical through failover because record
content is replica-independent.

:func:`load_cluster` reassembles a cluster from a ``cluster.json`` manifest
(paths or URLs per shard); :func:`open_cluster` additionally understands the
``cluster://host:port,host:port,...`` URL-list shorthand, which assumes the
manifest's default ring spec and shard order.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import obs
from ..api.backend import GraphBackend, RawRecord, as_backend
from ..exceptions import (
    ClusterError,
    NodeNotFoundError,
    ShardError,
    StaleManifestError,
)
from ..types import NodeId
from .partition import (
    CLUSTER_FORMAT,
    CLUSTER_MANIFEST_NAME,
    CLUSTER_READ_VERSIONS,
    DEFAULT_VNODES,
    HashRing,
)

PathLike = Union[str, Path]

#: URL scheme of the manifest-less shorthand: ``cluster://host:port,host:port``.
CLUSTER_URL_SCHEME = "cluster://"

#: How long (seconds) a shard that failed a read stays deprioritised before
#: the next read probes it again.  Deterministic constant, no jitter: the
#: failover schedule of a replayed workload is reproducible.
DEFAULT_FAILOVER_COOLDOWN = 1.0

#: Bound on the node -> replica-set route memo (same bounded-FIFO discipline
#: as the warehouse decoded-record cache).  Covers the hot set of any
#: realistic walk while keeping a 1M-node crawl from growing the memo into a
#: silent memory leak.
DEFAULT_ROUTE_CACHE = 262_144


def _raiser(error: Exception):
    """A collector that re-raises a failure captured during the send phase."""
    def collect():
        raise error
    return collect


def _collector(backend, handle):
    """A collector that finishes one shard's pipelined batched fetch."""
    def collect():
        return backend.end_fetch_many(handle)
    return collect


def _traced_collect(tracer, span, collect):
    """Finish ``span`` when the shard's pipelined response is collected."""
    def run():
        try:
            with tracer.scope(span.trace_id, span.span_id):
                return collect()
        except Exception:
            span.tags["error"] = True
            raise
        finally:
            tracer.finish(span)
    return run


class ShardedBackend(GraphBackend):
    """Route backend fetches across consistent-hashed shard backends.

    Args:
        shards: One backend per shard, in ring shard order.
        ring: The :class:`~repro.cluster.partition.HashRing` the data was
            partitioned with.  Defaults to ``HashRing(len(shards))`` — only
            correct if the partition used the default vnodes count too.
        name: Backend name; defaults to ``cluster:<N>``.
        replicas: The layout's replica factor (how many successor shards
            store each node).  Reads rotate round-robin across a node's live
            replicas and fail over when one dies.
        expected_epoch: The manifest's membership epoch; ``verify_epoch``
            compares it against what reachable shards publish.
        failover_cooldown: Seconds a failed shard stays deprioritised before
            the next read probes it again.
        route_cache: Bound on the node -> replica-set route memo.
        clock: Monotonic time source (injectable for tests).

    The cluster is treated as immutable for the lifetime of the backend
    (like every other backend): per-shard sizes and the federated node-id
    table are fetched once and cached.  ``close()`` shuts the dispatch pool
    down and closes every shard backend; the class is a context manager.
    """

    def __init__(
        self,
        shards: Sequence[GraphBackend],
        ring: Optional[HashRing] = None,
        name: Optional[str] = None,
        *,
        replicas: int = 1,
        expected_epoch: Optional[int] = None,
        failover_cooldown: float = DEFAULT_FAILOVER_COOLDOWN,
        route_cache: int = DEFAULT_ROUTE_CACHE,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not shards:
            raise ClusterError("a cluster needs at least one shard backend")
        self._shards: List[GraphBackend] = list(shards)
        self._ring = ring if ring is not None else HashRing(len(self._shards))
        if self._ring.shards != len(self._shards):
            raise ClusterError(
                f"ring routes {self._ring.shards} shards but {len(self._shards)} "
                f"shard backends were provided"
            )
        if not 1 <= int(replicas) <= self._ring.shards:
            raise ClusterError(
                f"replicas={replicas} is not placeable on {self._ring.shards} "
                f"shards (each replica needs a distinct physical shard)"
            )
        self.replicas = int(replicas)
        self.expected_epoch = None if expected_epoch is None else int(expected_epoch)
        self._labels = [
            getattr(backend, "base_url", None) or backend.name
            for backend in self._shards
        ]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._sizes: Optional[List[int]] = None
        self._node_ids: Optional[List[NodeId]] = None
        # Ring lookups hash the JSON-encoded id; walks revisit nodes heavily,
        # so memoising node -> replica set turns the per-batch routing cost
        # into a dict probe.  Unhashable ids can't be cached (they can't be
        # fetched either — the ring raises its typed error for them).
        self._route_cache: Dict[NodeId, Tuple[int, ...]] = {}
        self._route_cap = max(1, int(route_cache))
        # Failover health: shard -> clock() when it was marked dead.  A dead
        # shard is deprioritised (never hard-excluded) until the cool-down
        # expires, then the next read probes it again.
        self._dead_at: Dict[int, float] = {}
        self._cooldown = float(failover_cooldown)
        self._clock = clock
        self._rr = 0  # round-robin cursor spreading reads across replicas
        # Every shard speaking the pipelined two-phase protocol lets a batch
        # post all sub-batches before reading any response.
        self._pipelined = all(
            hasattr(backend, "begin_fetch_many") and hasattr(backend, "end_fetch_many")
            for backend in self._shards
        )
        self.name = name if name is not None else f"cluster:{len(self._shards)}"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def shard_backends(self) -> List[GraphBackend]:
        """The per-shard backends, in ring shard order (read-only view)."""
        return list(self._shards)

    def shard_of(self, node: NodeId) -> int:
        """Return the primary shard the ring routes ``node`` to (memoised)."""
        return self.shards_of(node)[0]

    def shards_of(self, node: NodeId) -> Tuple[int, ...]:
        """The replica set serving ``node``, primary first (memoised)."""
        try:
            route = self._route_cache.get(node)
        except TypeError:
            # Unhashable id: can't memoise; the ring raises its typed error.
            return self._ring.shards_of(node, self.replicas)
        if route is None:
            route = self._ring.shards_of(node, self.replicas)
            # Bounded FIFO eviction, the warehouse record-cache discipline:
            # cheap and lock-free under the GIL.
            if len(self._route_cache) >= self._route_cap:
                self._route_cache.pop(next(iter(self._route_cache)), None)
            self._route_cache[node] = route
        return route

    def _shard_error(self, shard: int, error: Exception, doing: str) -> ShardError:
        return ShardError(
            f"shard {shard} ({self._labels[shard]}) failed during {doing}: "
            f"{type(error).__name__}: {error}",
            shard=shard,
            url=self._labels[shard],
        )

    # ------------------------------------------------------------------
    # Failover health
    # ------------------------------------------------------------------
    def _is_live(self, shard: int) -> bool:
        dead_since = self._dead_at.get(shard)
        if dead_since is None:
            return True
        if self._clock() - dead_since >= self._cooldown:
            # Cool-down expired: let the next read probe the shard again (a
            # failed probe re-marks it dead for another cool-down).
            del self._dead_at[shard]
            return True
        return False

    def _mark_dead(self, shard: int) -> None:
        self._dead_at[shard] = self._clock()
        registry = obs.metrics()
        if registry is not None:
            registry.inc(
                "repro_shard_dead_marks_total", shard=self._labels[shard]
            )

    @property
    def dead_shards(self) -> List[int]:
        """Shards currently inside their failover cool-down."""
        return sorted(
            shard for shard in list(self._dead_at) if not self._is_live(shard)
        )

    def _pick_shard(self, node: NodeId, tried=()) -> Optional[int]:
        """Choose the replica that serves this read of ``node``.

        Untried live replicas are preferred and rotated round-robin to
        spread read load.  A shard inside its cool-down is deprioritised but
        never hard-excluded: if every untried replica is marked dead the
        read still probes one, so stale health state cannot wedge a range.
        Returns ``None`` once every replica was tried this call (the caller
        raises the attributed failure).
        """
        candidates = [s for s in self.shards_of(node) if s not in tried]
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        live = [s for s in candidates if self._is_live(s)]
        pool = live or candidates
        choice = pool[self._rr % len(pool)]
        self._rr += 1
        return choice

    def _replicas_exhausted(
        self, node: NodeId, tried, last: Optional[ShardError], doing: str
    ) -> ShardError:
        if last is not None and len(tried) <= 1:
            return last  # unreplicated: identical to the single-shard error
        where = ", ".join(f"{s} ({self._labels[s]})" for s in sorted(tried))
        error = ShardError(
            f"every replica of node {node!r} is down during {doing} "
            f"(tried shards {where})",
            shard=last.shard if last is not None else None,
            url=last.url if last is not None else None,
        )
        error.__cause__ = last
        return error

    # ------------------------------------------------------------------
    # GraphBackend interface
    # ------------------------------------------------------------------
    def _read(self, node: NodeId, doing: str, call):
        """Run a single-node read with replica failover.

        Tries replicas (round-robin among live ones) until one answers; a
        failing shard is marked dead for the cool-down and the read moves to
        the next untried replica.  Node-level misses surface unchanged.
        When a tracer is active the read carries a ``cluster.read`` span
        whose tags record every replica tried, in order.
        """
        with obs.maybe_span("cluster.read", kind="shard", op=doing) as span:
            tried: Set[int] = set()
            attempts: List[str] = []
            last: Optional[ShardError] = None
            while True:
                shard = self._pick_shard(node, tried)
                if shard is None:
                    if span is not None:
                        span.tags["replicas_tried"] = attempts
                        span.tags["error"] = True
                    raise self._replicas_exhausted(node, tried, last, doing)
                attempts.append(self._labels[shard])
                try:
                    result = call(self._shards[shard])
                except NodeNotFoundError:
                    if span is not None:
                        span.tags["replicas_tried"] = attempts
                    raise
                except Exception as error:
                    registry = obs.metrics()
                    if registry is not None:
                        registry.inc(
                            "repro_shard_failover_reads_total",
                            shard=self._labels[shard],
                        )
                    self._mark_dead(shard)
                    tried.add(shard)
                    last = self._shard_error(shard, error, doing)
                    last.__cause__ = error
                else:
                    if span is not None:
                        span.tags["replicas_tried"] = attempts
                        span.tags["shard"] = self._labels[shard]
                    return result

    def fetch(self, node: NodeId) -> RawRecord:
        return self._read(
            node, f"fetch({node!r})", lambda backend: backend.fetch(node)
        )

    def contains(self, node: NodeId) -> bool:
        return self._read(
            node, f"contains({node!r})", lambda backend: backend.contains(node)
        )

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        return self._read(
            node, f"metadata({node!r})", lambda backend: backend.metadata(node)
        )

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        order = list(nodes)
        if not order:
            return []
        # Route every position to a replica and dispatch per-shard
        # sub-batches; each keeps its nodes in request order (duplicates
        # included), so re-merging by remembered positions reproduces the
        # exact sequential-fetch answer.  When a shard fails, its positions
        # re-route to their next untried replica on the following round —
        # the records are replica-independent, so a batch that survives
        # failover is bit-identical to a healthy one.
        records: List[Optional[RawRecord]] = [None] * len(order)
        pending: List[int] = list(range(len(order)))
        tried: Dict[int, Set[int]] = {}
        doing = f"fetch_many({len(order)} nodes)"
        miss: Optional[NodeNotFoundError] = None
        last: Optional[ShardError] = None
        while pending:
            sub_positions: Dict[int, List[int]] = {}
            for position in pending:
                node = order[position]
                shard = self._pick_shard(node, tried.get(position, ()))
                if shard is None:
                    raise self._replicas_exhausted(
                        node, tried.get(position, set()), last, doing
                    )
                sub_positions.setdefault(shard, []).append(position)
            pending = []
            for shard, positions, collect in self._dispatch(sub_positions, order):
                try:
                    shard_records = collect()
                except NodeNotFoundError as error:
                    # A missing node aborts the whole batch, mirroring a
                    # local sequential fetch_many; remember the first miss
                    # but keep draining the other shards so no response is
                    # abandoned mid-air and every connection stays reusable.
                    if miss is None:
                        miss = error
                except Exception as error:
                    self._mark_dead(shard)
                    registry = obs.metrics()
                    if registry is not None:
                        registry.inc(
                            "repro_shard_redispatch_total",
                            len(positions),
                            shard=self._labels[shard],
                        )
                    failure = self._shard_error(
                        shard, error, f"fetch_many({len(positions)} nodes)"
                    )
                    failure.__cause__ = error
                    last = failure
                    for position in positions:
                        tried.setdefault(position, set()).add(shard)
                    pending.extend(positions)
                else:
                    for position, record in zip(positions, shard_records):
                        records[position] = record
            if miss is not None:
                raise miss
        return records  # type: ignore[return-value]

    def _dispatch(self, sub_positions: Dict[int, List[int]], order: List[NodeId]):
        """Build ``(shard, positions, collect)`` tasks for one round."""
        if len(sub_positions) == 1:
            # Single-shard round: call straight through, no pipelining or
            # pool overhead.
            ((shard, positions),) = sub_positions.items()
            backend = self._shards[shard]
            batch = [order[position] for position in positions]
            return [(shard, positions, lambda: list(backend.fetch_many(batch)))]
        if self._pipelined:
            return self._dispatch_pipelined(sub_positions, order)
        # Pool fan-out: worker threads have no span context of their own, so
        # when a tracer is active the dispatching thread's (trace, span) pair
        # is adopted inside each worker — shard spans stay in the one trace.
        tracer = obs.current_tracer()
        context = tracer.current() if tracer is not None else None

        def submit(shard: int, batch: List[NodeId]):
            backend = self._shards[shard]
            if context is None:
                return self._dispatch_pool().submit(backend.fetch_many, batch)

            def run():
                with tracer.scope(*context):
                    with tracer.span(
                        "shard.fetch", kind="shard", shard=self._labels[shard],
                        nodes=len(batch),
                    ):
                        return backend.fetch_many(batch)

            return self._dispatch_pool().submit(run)

        return [
            (shard, positions, submit(
                shard, [order[position] for position in positions]).result)
            for shard, positions in sub_positions.items()
        ]

    def _dispatch_pipelined(
        self, sub_positions: Dict[int, List[int]], order: List[NodeId]
    ):
        """Post every shard's sub-batch, then return response collectors.

        All requests are in flight before the first response is read, so the
        shard servers work concurrently without any client-side threads —
        on loopback this beats a thread pool (no future/GIL churn), and over
        a real network the in-flight overlap is the same.

        A shard whose ``begin_fetch_many`` raises becomes a ``_raiser``
        task.  ``begin`` either sent on (or dropped) that shard's own
        connection and touched nothing else, and the caller collects every
        task before acting on any failure — so an aborted batch still drains
        each posted response and leaves every connection reusable.

        When a tracer is active each shard's sub-batch gets a
        ``shard.fetch`` span opened when its request is posted and finished
        when its response is collected, so the span covers the true
        in-flight window of the pipelined round.
        """
        tracer = obs.current_tracer()
        tasks = []
        for shard, positions in sub_positions.items():
            backend = self._shards[shard]
            batch = [order[position] for position in positions]
            span = None
            if tracer is not None:
                span = tracer.start_span(
                    "shard.fetch", kind="shard", shard=self._labels[shard],
                    nodes=len(batch), pipelined=True,
                )
            try:
                if span is not None:
                    with tracer.scope(span.trace_id, span.span_id):
                        handle = backend.begin_fetch_many(batch)
                else:
                    handle = backend.begin_fetch_many(batch)
            except Exception as error:
                if span is not None:
                    span.tags["error"] = True
                    tracer.finish(span)
                tasks.append((shard, positions, _raiser(error)))
            else:
                collect = _collector(backend, handle)
                if span is not None:
                    collect = _traced_collect(tracer, span, collect)
                tasks.append((shard, positions, collect))
        return tasks

    def node_ids(self) -> List[NodeId]:
        return list(self._all_node_ids())

    def sample_node(self, rng) -> NodeId:
        nodes = self._all_node_ids()
        return nodes[int(rng.integers(0, len(nodes)))]

    def __len__(self) -> int:
        if self.replicas == 1:
            return sum(self._shard_sizes())
        return len(self._all_node_ids())

    # ------------------------------------------------------------------
    # Federation caches
    # ------------------------------------------------------------------
    def _shard_sizes(self) -> List[int]:
        if self._sizes is None:
            sizes = []
            for shard, backend in enumerate(self._shards):
                try:
                    sizes.append(len(backend))
                except Exception as error:
                    raise self._shard_error(shard, error, "len()") from error
            self._sizes = sizes
        return self._sizes

    def _all_node_ids(self) -> List[NodeId]:
        if self._node_ids is None:
            nodes: List[NodeId] = []
            seen: Set[NodeId] = set()
            failures = 0
            for shard, backend in enumerate(self._shards):
                try:
                    shard_nodes = backend.node_ids()
                except Exception as error:
                    # With replication factor k every node is stored on k
                    # shards, so the union over any (shards - k + 1)
                    # survivors is still the complete id set; only the k-th
                    # concurrent failure can actually lose a range.
                    self._mark_dead(shard)
                    failures += 1
                    if failures >= self.replicas:
                        raise self._shard_error(
                            shard, error, "node_ids()"
                        ) from error
                    continue
                if self.replicas == 1:
                    nodes.extend(shard_nodes)
                else:
                    # Replicated shards overlap: keep first appearances only.
                    for node in shard_nodes:
                        if node not in seen:
                            seen.add(node)
                            nodes.append(node)
            if failures:
                # Degraded enumeration is complete but survivor-ordered;
                # don't memoise it, so a recovered shard restores the
                # canonical first-appearance order.
                return nodes
            self._node_ids = nodes
        return self._node_ids

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _dispatch_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._shards), thread_name_prefix="repro-cluster"
            )
        return self._pool

    def verify_epoch(self) -> None:
        """Best-effort check that reachable shards serve our manifest epoch.

        A shard that cannot be reached (or predates epochs and publishes
        none) is skipped — the read path fails over at fetch time anyway.
        What this guards against is the *silently wrong* answer of a client
        walking a cluster that was :func:`~repro.cluster.repartition`-ed
        after its manifest was read: a definite epoch mismatch raises
        :class:`~repro.exceptions.StaleManifestError`.
        """
        expected = self.expected_epoch
        if expected is None:
            return
        for shard, backend in enumerate(self._shards):
            info = getattr(backend, "info", None)
            if callable(info):
                try:
                    published = info().get("epoch")
                except Exception:
                    continue  # unreachable shard: failover handles it later
            else:
                published = getattr(backend, "epoch", None)
            if published is not None and int(published) != expected:
                raise StaleManifestError(
                    f"shard {shard} ({self._labels[shard]}) serves membership "
                    f"epoch {published} but the cluster manifest says epoch "
                    f"{expected}; the cluster was repartitioned — re-read "
                    f"cluster.json",
                    shard=shard,
                    url=self._labels[shard],
                )

    def close(self) -> None:
        """Shut the dispatch pool down and close every shard backend.

        Closing is best-effort across all shards: a shard whose ``close``
        raises does not abandon the remaining shards' keep-alive sockets
        (the first error re-raises after everything was attempted).
        """
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        first_error: Optional[BaseException] = None
        for backend in self._shards:
            try:
                backend.close()
            except BaseException as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedBackend(name={self.name!r}, shards={len(self._shards)}, "
            f"ring={self._ring!r})"
        )


# ----------------------------------------------------------------------
# Manifest / URL-list loading
# ----------------------------------------------------------------------
def read_cluster_manifest(path: PathLike) -> Tuple[Dict[str, Any], Path]:
    """Read and validate a ``cluster.json``; returns (manifest, base dir)."""
    path = Path(path)
    if path.is_dir():
        path = path / CLUSTER_MANIFEST_NAME
    if not path.is_file():
        raise ClusterError(f"no cluster manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ClusterError(f"unreadable cluster manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != CLUSTER_FORMAT:
        raise ClusterError(
            f"{path} is not a {CLUSTER_FORMAT} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else manifest!r})"
        )
    if manifest.get("version") not in CLUSTER_READ_VERSIONS:
        raise ClusterError(
            f"cluster manifest {path} has version {manifest.get('version')!r}; "
            f"this build reads versions "
            f"{', '.join(str(v) for v in CLUSTER_READ_VERSIONS)}"
        )
    return manifest, path.parent


def _shard_entries(manifest: Dict[str, Any], ring: HashRing) -> List[Dict[str, Any]]:
    entries = manifest.get("shards")
    if not isinstance(entries, list) or not entries:
        raise ClusterError("cluster manifest has no 'shards' entries")
    by_index: Dict[int, Dict[str, Any]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "shard" not in entry or "source" not in entry:
            raise ClusterError(f"malformed shard entry {entry!r}")
        by_index[int(entry["shard"])] = entry
    if sorted(by_index) != list(range(ring.shards)):
        raise ClusterError(
            f"cluster manifest lists shards {sorted(by_index)} but the ring "
            f"routes {ring.shards} shards (expected 0..{ring.shards - 1})"
        )
    return [by_index[index] for index in range(ring.shards)]


def load_cluster(path: PathLike, **client_options) -> ShardedBackend:
    """Open a ``cluster.json`` manifest (or its directory) as one backend.

    Each shard entry's ``source`` is an ``http(s)://`` URL (driven through
    :class:`~repro.api.remote.HTTPGraphBackend`, with ``client_options``
    forwarded — ``timeout``, ``retries``, ...) or a path to a shard
    directory, resolved relative to the manifest's own directory.

    v2 manifests carry a replica factor and membership epoch; the returned
    backend fails reads over across the replicas, and the epoch every
    reachable shard publishes is checked against the manifest
    (:meth:`ShardedBackend.verify_epoch`) so a client can't silently walk a
    repartitioned cluster with stale routes.  v1 manifests load as
    ``replicas=1`` with no epoch check.
    """
    manifest, base_dir = read_cluster_manifest(path)
    ring = HashRing.from_spec(manifest.get("ring"))
    replicas = int(manifest.get("replicas", 1))
    epoch = manifest.get("epoch")
    backends: List[GraphBackend] = []
    try:
        for entry in _shard_entries(manifest, ring):
            source = entry["source"]
            if isinstance(source, str) and source.startswith(("http://", "https://")):
                from ..api.remote import HTTPGraphBackend

                backends.append(HTTPGraphBackend(source, **client_options))
            else:
                backends.append(as_backend(str(base_dir / source)))
        name = manifest.get("name")
        cluster = ShardedBackend(
            backends,
            ring,
            name=f"cluster:{name}" if name else None,
            replicas=replicas,
            expected_epoch=None if epoch is None else int(epoch),
        )
        cluster.verify_epoch()
        return cluster
    except Exception:
        for backend in backends:
            try:
                backend.close()
            except Exception:
                pass
        raise


def parse_cluster_url(url: str) -> List[str]:
    """Split a ``cluster://`` URL list into per-shard base URLs.

    ``cluster://host:port,host:port,...`` — entries without a scheme get
    ``http://`` prefixed.  Shard order is list order, and the ring is the
    default spec (``DEFAULT_VNODES`` virtual nodes), matching what
    ``partition_snapshot`` writes when not told otherwise.
    """
    if not url.startswith(CLUSTER_URL_SCHEME):
        raise ClusterError(f"not a {CLUSTER_URL_SCHEME} URL: {url!r}")
    entries = [entry.strip() for entry in url[len(CLUSTER_URL_SCHEME):].split(",")]
    entries = [entry for entry in entries if entry]
    if not entries:
        raise ClusterError(
            f"{url!r} names no shard servers (expected "
            f"{CLUSTER_URL_SCHEME}host:port,host:port,...)"
        )
    return [
        entry if entry.startswith(("http://", "https://")) else f"http://{entry}"
        for entry in entries
    ]


def cluster_from_urls(
    urls: Sequence[str],
    *,
    vnodes: int = DEFAULT_VNODES,
    replicas: Optional[int] = None,
    **client_options,
) -> ShardedBackend:
    """Build a :class:`ShardedBackend` over shard-server URLs, in ring order.

    The URL-list shorthand carries no manifest, so with ``replicas=None``
    (the default) the layout's replication factor and membership epoch are
    read from the first shard server that answers ``GET /info`` (every
    shard slice republishes both).  Pass ``replicas`` explicitly to skip
    the probe; a ``replicas=1`` client against a replicated layout still
    routes correctly — every primary stores its nodes — it just never
    fails over and enumerates each node once per copy.
    """
    from ..api.remote import HTTPGraphBackend

    backends = [HTTPGraphBackend(url, **client_options) for url in urls]
    expected_epoch: Optional[int] = None
    try:
        if replicas is None:
            replicas = 1
            for backend in backends:
                try:
                    info = backend.info()
                except Exception:
                    continue  # probe the next shard; plain servers still work
                replicas = int(info.get("replicas") or 1)
                epoch = info.get("epoch")
                expected_epoch = None if epoch is None else int(epoch)
                break
        cluster = ShardedBackend(
            backends,
            HashRing(len(backends), vnodes=vnodes),
            replicas=replicas,
            expected_epoch=expected_epoch,
        )
        cluster.verify_epoch()
        return cluster
    except BaseException:
        for backend in backends:
            try:
                backend.close()
            except Exception:
                pass
        raise


def open_cluster(source: PathLike, **client_options) -> ShardedBackend:
    """Open a cluster from a ``cluster://`` URL list or a manifest path."""
    if isinstance(source, str) and source.startswith(CLUSTER_URL_SCHEME):
        return cluster_from_urls(parse_cluster_url(source), **client_options)
    return load_cluster(source, **client_options)
