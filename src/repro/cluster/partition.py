"""Consistent-hash partitioning of a graph across shard servers.

Two pieces live here:

* :class:`HashRing` — a deterministic consistent-hash ring mapping node ids
  to shard indices.  Ring points are derived from a keyed ``blake2b`` digest
  of ``"shard:<s>:vnode:<v>"`` labels, and node ids are hashed through their
  canonical JSON encoding, so the mapping is *stable across runs, machines
  and Python versions* — unlike the builtin ``hash``, which is salted per
  process.  Virtual nodes (``vnodes``) smooth the load distribution; the ring
  is fully described by :meth:`HashRing.spec`, which is what the cluster
  manifest persists.
* :func:`partition_snapshot` — split a PR-3 CSR snapshot into ``shards``
  per-shard snapshot directories plus a versioned ``cluster.json`` manifest.
  Each shard directory is a *valid CSR snapshot* (so ``repro.cli serve
  --source shard-00`` serves it unchanged) holding the shard's stored nodes
  first and every boundary neighbor after them with an empty adjacency row,
  plus a ``shard.json`` sidecar recording the stored count and the ring spec.
  With ``replicas=k`` every node is written to its ``k`` ring-successor
  shards (:meth:`HashRing.shards_of`), so any single shard can die without
  losing a ring range.  :func:`load_shard` reopens one as a
  :class:`ShardSliceBackend`, which restricts the visible node set to the
  stored prefix — a mis-routed fetch raises
  :class:`~repro.exceptions.NodeNotFoundError` instead of silently answering
  with an empty neighborhood.
* :func:`repartition` — incremental dynamic membership: re-balance an
  on-disk cluster to a new shard count / replica factor, copying only the
  reassigned nodes and bumping the manifest ``epoch`` so stale clients
  detect the change through the epoch every shard republishes on ``/info``.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.backend import CSRBackend, GraphBackend, InMemoryBackend, RawRecord
from ..exceptions import ClusterError, NodeNotFoundError
from ..graphs.graph import Graph
from ..types import NodeId

PathLike = Union[str, Path]

#: Format identifier written into (and demanded from) every cluster manifest.
CLUSTER_FORMAT = "repro-graph-cluster"
#: Current cluster-manifest version; bump on any incompatible change.
#: v2 added ``replicas`` (replica factor) and ``epoch`` (membership counter).
CLUSTER_VERSION = 2
#: Manifest versions this build can load.  v1 manifests predate replication
#: and load as ``replicas=1`` / ``epoch=0``.
CLUSTER_READ_VERSIONS = (1, 2)
CLUSTER_MANIFEST_NAME = "cluster.json"

#: Format identifier of the per-shard ``shard.json`` sidecar.
SHARD_FORMAT = "repro-graph-shard"
SHARD_VERSION = 1
SHARD_MANIFEST_NAME = "shard.json"

#: Ring algorithm identifier persisted in manifests (validated on load).
RING_ALGORITHM = "consistent-hash-blake2b64"
#: Default virtual nodes per shard; enough to keep shard sizes within a few
#: percent of even on realistic graphs without making ring lookups slow.
DEFAULT_VNODES = 64


def _hash64(data: bytes) -> int:
    """A stable 64-bit hash (big-endian blake2b-8 digest)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def node_key(node: NodeId) -> bytes:
    """The canonical hashable encoding of a node id.

    JSON keeps ``5`` and ``"5"`` distinct (the same property the HTTP wire
    relies on) and is identical across processes, so the same node always
    lands on the same shard no matter which client computes the route.
    """
    try:
        if isinstance(node, np.integer):
            node = int(node)
        return json.dumps(node, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ClusterError(
            f"node id {node!r} cannot be routed: consistent hashing requires "
            f"a JSON-representable id ({exc})"
        ) from exc


class HashRing:
    """A deterministic consistent-hash ring over ``shards`` shard indices.

    Each shard contributes ``vnodes`` points on a 64-bit ring; a node id is
    routed to the owner of the first ring point at or after its own hash
    (wrapping at the top).  Two rings built from the same ``(shards,
    vnodes)`` pair produce identical routes forever — the property the
    on-disk partition layout depends on.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ClusterError(f"a cluster needs at least one shard (got {shards})")
        if vnodes < 1:
            raise ClusterError(f"vnodes must be at least 1 (got {vnodes})")
        self.shards = int(shards)
        self.vnodes = int(vnodes)
        points = sorted(
            (_hash64(f"shard:{shard}:vnode:{vnode}".encode("ascii")), shard)
            for shard in range(self.shards)
            for vnode in range(self.vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_of(self, node: NodeId) -> int:
        """Return the shard index owning ``node``."""
        position = bisect.bisect_right(self._hashes, _hash64(node_key(node)))
        if position == len(self._hashes):
            position = 0  # wrap past the top of the ring
        return self._owners[position]

    def shards_of(self, node: NodeId, k: int) -> Tuple[int, ...]:
        """Return the ``k`` distinct shards holding ``node``'s replicas.

        The successor walk starts at the ring point owning ``node`` — so
        ``shards_of(node, 1) == (shard_of(node),)`` and the first entry is
        always the primary — and continues clockwise, collecting each *new*
        shard it meets until ``k`` distinct physical shards are found.
        Successor placement keeps repartitioning cheap: adding a shard only
        reassigns the ring ranges adjacent to its new points.
        """
        if k < 1:
            raise ClusterError(f"replicas must be at least 1 (got {k})")
        if k > self.shards:
            raise ClusterError(
                f"cannot place {k} replicas on {self.shards} distinct shards"
            )
        position = bisect.bisect_right(self._hashes, _hash64(node_key(node)))
        points = len(self._owners)
        owners: List[int] = []
        for offset in range(points):
            owner = self._owners[(position + offset) % points]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == k:
                    break
        return tuple(owners)

    def spec(self) -> Dict[str, Any]:
        """The JSON-able ring description persisted in cluster manifests."""
        return {
            "algorithm": RING_ALGORITHM,
            "shards": self.shards,
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_spec(cls, spec: Any) -> "HashRing":
        """Rebuild a ring from a manifest spec (typed errors on mismatch)."""
        if not isinstance(spec, dict):
            raise ClusterError(
                f"ring spec must be a JSON object, got {type(spec).__name__}"
            )
        algorithm = spec.get("algorithm")
        if algorithm != RING_ALGORITHM:
            raise ClusterError(
                f"ring algorithm {algorithm!r} is not supported; this build "
                f"speaks {RING_ALGORITHM!r}"
            )
        try:
            return cls(int(spec["shards"]), int(spec.get("vnodes", DEFAULT_VNODES)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"malformed ring spec {spec!r}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HashRing(shards={self.shards}, vnodes={self.vnodes})"


class ShardSliceBackend(GraphBackend):
    """One shard's slice of a partitioned graph.

    Wraps the shard's CSR snapshot — whose node table holds the stored nodes
    (primary-owned plus replicated) first, then every boundary neighbor with
    an empty row — and restricts the *visible* node set to the stored prefix:
    ``fetch`` / ``contains`` / ``metadata`` / ``node_ids`` answer only for
    nodes this shard stores, so a request the ring should have sent elsewhere
    fails loudly with :class:`~repro.exceptions.NodeNotFoundError` instead of
    returning a boundary node's (empty, wrong) adjacency.

    ``epoch`` / ``replicas`` mirror the ``shard.json`` sidecar (``None`` /
    ``1`` for pre-replication sidecars); the server republishes the epoch on
    ``GET /info`` so cluster clients can detect a stale manifest after a
    :func:`repartition`.
    """

    def __init__(
        self,
        inner: CSRBackend,
        owned_count: int,
        *,
        shard: int,
        shards: int,
        name: Optional[str] = None,
        replicas: int = 1,
        epoch: Optional[int] = None,
    ) -> None:
        if not 0 <= owned_count <= len(inner):
            raise ClusterError(
                f"shard manifest claims {owned_count} stored nodes but the "
                f"snapshot holds {len(inner)}"
            )
        self._inner = inner
        self._owned_ids: List[NodeId] = inner.node_ids()[:owned_count]
        self._owned = set(self._owned_ids)
        self.shard = int(shard)
        self.shards = int(shards)
        self.replicas = int(replicas)
        self.epoch = None if epoch is None else int(epoch)
        self.name = name or f"shard{shard}/{shards}:{inner.name}"

    @property
    def inner(self) -> CSRBackend:
        """The underlying CSR store (owned + boundary rows)."""
        return self._inner

    def _require_owned(self, node: NodeId) -> None:
        if node not in self._owned:
            raise NodeNotFoundError(node)

    def fetch(self, node: NodeId) -> RawRecord:
        self._require_owned(node)
        return self._inner.fetch(node)

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        for node in nodes:
            self._require_owned(node)
        return self._inner.fetch_many(nodes)

    def contains(self, node: NodeId) -> bool:
        return node in self._owned

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        if node not in self._owned:
            return None
        return self._inner.metadata(node)

    def node_ids(self) -> List[NodeId]:
        return list(self._owned_ids)

    def sample_node(self, rng) -> NodeId:
        return self._owned_ids[int(rng.integers(0, len(self._owned_ids)))]

    def __len__(self) -> int:
        return len(self._owned_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardSliceBackend(shard={self.shard}/{self.shards}, "
            f"owned={len(self)}, table={len(self._inner)})"
        )


def _resolve_to_csr(source) -> CSRBackend:
    """Coerce a partitionable source into a (possibly memory-mapped) CSR."""
    from ..storage.snapshot import load_snapshot

    if isinstance(source, (str, Path)):
        return load_snapshot(source)
    if isinstance(source, InMemoryBackend):
        source = source.graph
    if isinstance(source, Graph):
        return CSRBackend.from_graph(source)
    if isinstance(source, CSRBackend):
        return source
    raise TypeError(
        f"cannot partition {type(source).__name__}; accepted sources: a CSR "
        "snapshot directory (str / Path), Graph, InMemoryBackend, or CSRBackend"
    )


def _assign_replicas(
    all_ids: Sequence[NodeId], ring: HashRing, replicas: int
) -> Tuple[List[List[NodeId]], List[int]]:
    """Place every node on its ``replicas`` successor shards.

    Returns ``(stored_by_shard, primary_count)``: each shard's stored node
    list (in ``all_ids`` order, so walks over the reassembled cluster
    reproduce the original neighbor order exactly) and how many of those it
    owns as the primary.
    """
    stored_by_shard: List[List[NodeId]] = [[] for _ in range(ring.shards)]
    primary_count = [0] * ring.shards
    for node in all_ids:
        owners = ring.shards_of(node, replicas)
        primary_count[owners[0]] += 1
        for shard in owners:
            stored_by_shard[shard].append(node)
    return stored_by_shard, primary_count


def _shard_table(
    stored: Sequence[NodeId],
    fetch: Callable[[NodeId], RawRecord],
    *,
    name: str,
) -> CSRBackend:
    """Build one shard's CSR: stored nodes first, boundary rows after.

    Table layout: stored nodes first (in global backend order), then
    boundary neighbors in first-appearance order with empty rows.  The
    boundary entries exist only so the CSR ``indices`` array has an in-table
    index for every neighbor.
    """
    table_index = {node: position for position, node in enumerate(stored)}
    boundary: List[NodeId] = []
    rows: List[List[int]] = []
    attrs: Dict[NodeId, Dict[str, Any]] = {}
    for node in stored:
        record = fetch(node)
        row: List[int] = []
        for neighbor in record.neighbors:
            position = table_index.get(neighbor)
            if position is None:
                position = len(stored) + len(boundary)
                table_index[neighbor] = position
                boundary.append(neighbor)
            row.append(position)
        rows.append(row)
        if record.attributes:
            attrs[node] = dict(record.attributes)
    table_ids = list(stored) + boundary
    indptr = np.zeros(len(table_ids) + 1, dtype=np.int64)
    lengths = [len(row) for row in rows] + [0] * len(boundary)
    np.cumsum(np.asarray(lengths, dtype=np.int64), out=indptr[1:])
    indices = np.fromiter(
        (position for row in rows for position in row),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return CSRBackend(
        indptr, indices, node_ids=table_ids, attributes=attrs, name=name
    )


def _write_shard_dir(
    target: Path,
    *,
    shard: int,
    ring: HashRing,
    stored: Sequence[NodeId],
    primary: int,
    fetch: Callable[[NodeId], RawRecord],
    graph_name: str,
    replicas: int,
    epoch: int,
) -> Path:
    """Write one servable shard snapshot directory plus its sidecar."""
    from ..storage.snapshot import save_snapshot

    shard_name = f"{graph_name}@{shard}/{ring.shards}"
    shard_csr = _shard_table(stored, fetch, name=shard_name)
    shard_dir = save_snapshot(shard_csr, target, name=shard_name)
    sidecar = {
        "format": SHARD_FORMAT,
        "version": SHARD_VERSION,
        "name": shard_name,
        "shard": shard,
        "shards": ring.shards,
        "owned": len(stored),
        "primary": primary,
        "replicas": replicas,
        "epoch": epoch,
        "ring": ring.spec(),
    }
    (shard_dir / SHARD_MANIFEST_NAME).write_text(
        json.dumps(sidecar, indent=2) + "\n", encoding="utf-8"
    )
    return shard_dir


def _write_cluster_manifest(
    out_dir: Path,
    *,
    graph_name: str,
    nodes: int,
    ring: HashRing,
    entries: List[Dict[str, Any]],
    replicas: int,
    epoch: int,
) -> None:
    manifest = {
        "format": CLUSTER_FORMAT,
        "version": CLUSTER_VERSION,
        "name": graph_name,
        "nodes": nodes,
        "epoch": epoch,
        "replicas": replicas,
        "ring": ring.spec(),
        "shards": entries,
    }
    (out_dir / CLUSTER_MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )


def _validate_replicas(replicas: int, ring: HashRing) -> int:
    replicas = int(replicas)
    if not 1 <= replicas <= ring.shards:
        raise ClusterError(
            f"replicas={replicas} is not placeable on {ring.shards} shards "
            f"(each replica needs a distinct physical shard)"
        )
    return replicas


def partition_snapshot(
    source,
    out_dir: PathLike,
    shards: int,
    *,
    vnodes: int = DEFAULT_VNODES,
    name: Optional[str] = None,
    replicas: int = 1,
) -> Path:
    """Split a snapshot into per-shard snapshots plus a ``cluster.json``.

    ``source`` is a CSR snapshot directory (the usual case), or any in-memory
    graph / CSR backend.  ``out_dir`` receives one ``shard-NN`` snapshot
    directory per shard and the versioned cluster manifest; the return value
    is ``out_dir``.  Every shard directory is independently servable
    (``repro.cli serve --source out/shard-00``), and
    :func:`~repro.cluster.backend.load_cluster` reassembles the whole graph.

    ``replicas=k`` writes every node to its ``k`` ring-successor shards
    (distinct physical shards), letting a
    :class:`~repro.cluster.backend.ShardedBackend` fail reads over to a live
    replica when a shard dies.  The manifest starts at membership ``epoch``
    0; :func:`repartition` bumps it on every membership change.
    """
    csr = _resolve_to_csr(source)
    ring = HashRing(shards, vnodes=vnodes)
    replicas = _validate_replicas(replicas, ring)
    graph_name = name or csr.name
    if graph_name.startswith("mmap:"):
        graph_name = graph_name[len("mmap:"):]

    all_ids = csr.node_ids()
    stored_by_shard, primary_count = _assign_replicas(all_ids, ring, replicas)

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    entries: List[Dict[str, Any]] = []
    for shard, stored in enumerate(stored_by_shard):
        shard_dirname = f"shard-{shard:02d}"
        _write_shard_dir(
            out_dir / shard_dirname,
            shard=shard,
            ring=ring,
            stored=stored,
            primary=primary_count[shard],
            fetch=csr.fetch,
            graph_name=graph_name,
            replicas=replicas,
            epoch=0,
        )
        entries.append({
            "shard": shard,
            "source": shard_dirname,
            "nodes": len(stored),
            "primary": primary_count[shard],
        })

    _write_cluster_manifest(
        out_dir,
        graph_name=graph_name,
        nodes=len(all_ids),
        ring=ring,
        entries=entries,
        replicas=replicas,
        epoch=0,
    )
    return out_dir


def repartition(
    cluster_dir: PathLike,
    *,
    shards: Optional[int] = None,
    replicas: Optional[int] = None,
    vnodes: Optional[int] = None,
) -> Dict[str, Any]:
    """Incrementally re-balance an on-disk cluster after membership changes.

    Reads the existing ``cluster.json``, recomputes the replica placement
    for the new ``(shards, replicas, vnodes)`` — each defaulting to the
    current value — and rewrites *only* the shard directories whose stored
    node set changed.  Nodes a shard already stores are re-read from its own
    slice; only reassigned nodes are copied across shard boundaries, which
    consistent hashing keeps to roughly ``nodes/shards`` per added shard.
    The manifest is rewritten with ``epoch`` bumped by one, so clients
    holding the old manifest detect the change through the epoch every shard
    republishes on ``GET /info`` (:class:`~repro.exceptions.StaleManifestError`).

    Rebuilt shards are staged in temporary directories and swapped in only
    after every rebuild succeeded; servers still running on the old
    directories keep serving their memory-mapped arrays.  Returns a report
    dict: ``epoch``, ``shards``, ``replicas``, ``nodes``, ``moved`` (nodes
    newly copied onto a shard) and ``rebuilt`` (shard indices rewritten).
    """
    from .backend import _shard_entries, read_cluster_manifest

    manifest, base_dir = read_cluster_manifest(cluster_dir)
    old_ring = HashRing.from_spec(manifest.get("ring"))
    old_replicas = int(manifest.get("replicas", 1))
    old_epoch = int(manifest.get("epoch", 0))
    new_ring = HashRing(
        old_ring.shards if shards is None else int(shards),
        vnodes=old_ring.vnodes if vnodes is None else int(vnodes),
    )
    new_replicas = _validate_replicas(
        old_replicas if replicas is None else int(replicas), new_ring
    )
    new_epoch = old_epoch + 1
    graph_name = manifest.get("name") or "graph"

    old_dirnames: Dict[int, str] = {}
    old_slices: Dict[int, ShardSliceBackend] = {}
    for entry in _shard_entries(manifest, old_ring):
        source = str(entry["source"])
        if source.startswith(("http://", "https://")):
            raise ClusterError(
                f"repartition rewrites shard directories on disk, but shard "
                f"{entry['shard']} is a remote server ({source}); run it "
                f"where the shard directories live"
            )
        shard = int(entry["shard"])
        old_dirnames[shard] = source
        old_slices[shard] = load_shard(base_dir / source)

    # A deterministic global node order: first appearance across the old
    # shards.  For unreplicated layouts this is exactly the original global
    # order, so an unchanged assignment round-trips to byte-identical shard
    # tables and is skipped below.
    all_ids: List[NodeId] = []
    seen = set()
    for shard in sorted(old_slices):
        for node in old_slices[shard].node_ids():
            if node not in seen:
                seen.add(node)
                all_ids.append(node)

    stored_by_shard, primary_count = _assign_replicas(all_ids, new_ring, new_replicas)

    def _reader(prefer_shard: int) -> Callable[[NodeId], RawRecord]:
        prefer = old_slices.get(prefer_shard)

        def fetch(node: NodeId) -> RawRecord:
            # Prefer the shard's own old slice — those nodes are not copies,
            # just a rewrite in place — and pull reassigned nodes from their
            # old primary.
            if prefer is not None and prefer.contains(node):
                return prefer.fetch(node)
            owner = old_ring.shards_of(node, old_replicas)[0]
            return old_slices[owner].fetch(node)

        return fetch

    moved = 0
    rebuilt: List[int] = []
    staged: Dict[int, Tuple[Path, Path]] = {}  # shard -> (tmp dir, final dir)
    entries: List[Dict[str, Any]] = []
    try:
        for shard, stored in enumerate(stored_by_shard):
            dirname = old_dirnames.get(shard, f"shard-{shard:02d}")
            final = base_dir / dirname
            old_slice = old_slices.get(shard)
            old_stored = old_slice.node_ids() if old_slice is not None else []
            old_set = set(old_stored)
            moved += sum(1 for node in stored if node not in old_set)
            if stored != old_stored:
                rebuilt.append(shard)
                tmp = base_dir / f".repartition-{shard:02d}.tmp"
                if tmp.exists():
                    shutil.rmtree(tmp)
                _write_shard_dir(
                    tmp,
                    shard=shard,
                    ring=new_ring,
                    stored=stored,
                    primary=primary_count[shard],
                    fetch=_reader(shard),
                    graph_name=graph_name,
                    replicas=new_replicas,
                    epoch=new_epoch,
                )
                staged[shard] = (tmp, final)
            entries.append({
                "shard": shard,
                "source": dirname,
                "nodes": len(stored),
                "primary": primary_count[shard],
            })
    except Exception:
        for tmp, _ in staged.values():
            shutil.rmtree(tmp, ignore_errors=True)
        raise

    # Every rebuild succeeded: release the old mmaps and swap directories.
    for old_slice in old_slices.values():
        try:
            old_slice.inner.close()
        except Exception:
            pass
    for shard, (tmp, final) in staged.items():
        if final.exists():
            shutil.rmtree(final)
        tmp.rename(final)
    for shard, stored in enumerate(stored_by_shard):
        if shard in staged:
            continue
        # Stored set unchanged: refresh only the sidecar (epoch, ring, spec).
        final = base_dir / old_dirnames.get(shard, f"shard-{shard:02d}")
        sidecar = read_shard_manifest(final)
        sidecar.update({
            "name": f"{graph_name}@{shard}/{new_ring.shards}",
            "shards": new_ring.shards,
            "primary": primary_count[shard],
            "replicas": new_replicas,
            "epoch": new_epoch,
            "ring": new_ring.spec(),
        })
        (final / SHARD_MANIFEST_NAME).write_text(
            json.dumps(sidecar, indent=2) + "\n", encoding="utf-8"
        )
    for shard in range(new_ring.shards, old_ring.shards):
        # The cluster shrank: drop directories of shards that left the ring.
        orphan = base_dir / old_dirnames.get(shard, f"shard-{shard:02d}")
        if orphan.exists():
            shutil.rmtree(orphan)

    _write_cluster_manifest(
        base_dir,
        graph_name=graph_name,
        nodes=len(all_ids),
        ring=new_ring,
        entries=entries,
        replicas=new_replicas,
        epoch=new_epoch,
    )
    return {
        "epoch": new_epoch,
        "shards": new_ring.shards,
        "replicas": new_replicas,
        "nodes": len(all_ids),
        "moved": moved,
        "rebuilt": rebuilt,
    }


def read_shard_manifest(directory: PathLike) -> Dict[str, Any]:
    """Read and validate the ``shard.json`` sidecar of a shard directory."""
    path = Path(directory) / SHARD_MANIFEST_NAME
    if not path.is_file():
        raise ClusterError(f"{directory} is not a shard directory (missing {SHARD_MANIFEST_NAME})")
    try:
        sidecar = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ClusterError(f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(sidecar, dict) or sidecar.get("format") != SHARD_FORMAT:
        raise ClusterError(
            f"{path} is not a {SHARD_FORMAT} manifest "
            f"(format={sidecar.get('format') if isinstance(sidecar, dict) else sidecar!r})"
        )
    if sidecar.get("version") != SHARD_VERSION:
        raise ClusterError(
            f"shard {directory} has format version {sidecar.get('version')!r}; "
            f"this build reads version {SHARD_VERSION}"
        )
    return sidecar


def load_shard(directory: PathLike) -> ShardSliceBackend:
    """Open one shard directory written by :func:`partition_snapshot`.

    The snapshot arrays open memory-mapped (O(1) like any snapshot); the
    returned :class:`ShardSliceBackend` serves only the shard's owned nodes.
    """
    from ..storage.snapshot import load_snapshot

    directory = Path(directory)
    sidecar = read_shard_manifest(directory)
    inner = load_snapshot(directory)
    try:
        owned = int(sidecar["owned"])
        shard = int(sidecar["shard"])
        shards = int(sidecar["shards"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterError(
            f"shard manifest {directory / SHARD_MANIFEST_NAME} is missing "
            f"valid 'owned'/'shard'/'shards' fields: {exc!r}"
        ) from exc
    epoch = sidecar.get("epoch")
    return ShardSliceBackend(
        inner,
        owned,
        shard=shard,
        shards=shards,
        name=sidecar.get("name"),
        replicas=int(sidecar.get("replicas", 1)),
        epoch=None if epoch is None else int(epoch),
    )
