"""Consistent-hash partitioning of a graph across shard servers.

Two pieces live here:

* :class:`HashRing` — a deterministic consistent-hash ring mapping node ids
  to shard indices.  Ring points are derived from a keyed ``blake2b`` digest
  of ``"shard:<s>:vnode:<v>"`` labels, and node ids are hashed through their
  canonical JSON encoding, so the mapping is *stable across runs, machines
  and Python versions* — unlike the builtin ``hash``, which is salted per
  process.  Virtual nodes (``vnodes``) smooth the load distribution; the ring
  is fully described by :meth:`HashRing.spec`, which is what the cluster
  manifest persists.
* :func:`partition_snapshot` — split a PR-3 CSR snapshot into ``shards``
  per-shard snapshot directories plus a versioned ``cluster.json`` manifest.
  Each shard directory is a *valid CSR snapshot* (so ``repro.cli serve
  --source shard-00`` serves it unchanged) holding the shard's owned nodes
  first and every boundary neighbor after them with an empty adjacency row,
  plus a ``shard.json`` sidecar recording the owned count and the ring spec.
  :func:`load_shard` reopens one as a :class:`ShardSliceBackend`, which
  restricts the visible node set to the owned prefix — a mis-routed fetch
  raises :class:`~repro.exceptions.NodeNotFoundError` instead of silently
  answering with an empty neighborhood.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..api.backend import CSRBackend, GraphBackend, InMemoryBackend, RawRecord
from ..exceptions import ClusterError, NodeNotFoundError
from ..graphs.graph import Graph
from ..types import NodeId

PathLike = Union[str, Path]

#: Format identifier written into (and demanded from) every cluster manifest.
CLUSTER_FORMAT = "repro-graph-cluster"
#: Current cluster-manifest version; bump on any incompatible change.
CLUSTER_VERSION = 1
CLUSTER_MANIFEST_NAME = "cluster.json"

#: Format identifier of the per-shard ``shard.json`` sidecar.
SHARD_FORMAT = "repro-graph-shard"
SHARD_VERSION = 1
SHARD_MANIFEST_NAME = "shard.json"

#: Ring algorithm identifier persisted in manifests (validated on load).
RING_ALGORITHM = "consistent-hash-blake2b64"
#: Default virtual nodes per shard; enough to keep shard sizes within a few
#: percent of even on realistic graphs without making ring lookups slow.
DEFAULT_VNODES = 64


def _hash64(data: bytes) -> int:
    """A stable 64-bit hash (big-endian blake2b-8 digest)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def node_key(node: NodeId) -> bytes:
    """The canonical hashable encoding of a node id.

    JSON keeps ``5`` and ``"5"`` distinct (the same property the HTTP wire
    relies on) and is identical across processes, so the same node always
    lands on the same shard no matter which client computes the route.
    """
    try:
        if isinstance(node, np.integer):
            node = int(node)
        return json.dumps(node, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ClusterError(
            f"node id {node!r} cannot be routed: consistent hashing requires "
            f"a JSON-representable id ({exc})"
        ) from exc


class HashRing:
    """A deterministic consistent-hash ring over ``shards`` shard indices.

    Each shard contributes ``vnodes`` points on a 64-bit ring; a node id is
    routed to the owner of the first ring point at or after its own hash
    (wrapping at the top).  Two rings built from the same ``(shards,
    vnodes)`` pair produce identical routes forever — the property the
    on-disk partition layout depends on.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ClusterError(f"a cluster needs at least one shard (got {shards})")
        if vnodes < 1:
            raise ClusterError(f"vnodes must be at least 1 (got {vnodes})")
        self.shards = int(shards)
        self.vnodes = int(vnodes)
        points = sorted(
            (_hash64(f"shard:{shard}:vnode:{vnode}".encode("ascii")), shard)
            for shard in range(self.shards)
            for vnode in range(self.vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_of(self, node: NodeId) -> int:
        """Return the shard index owning ``node``."""
        position = bisect.bisect_right(self._hashes, _hash64(node_key(node)))
        if position == len(self._hashes):
            position = 0  # wrap past the top of the ring
        return self._owners[position]

    def spec(self) -> Dict[str, Any]:
        """The JSON-able ring description persisted in cluster manifests."""
        return {
            "algorithm": RING_ALGORITHM,
            "shards": self.shards,
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_spec(cls, spec: Any) -> "HashRing":
        """Rebuild a ring from a manifest spec (typed errors on mismatch)."""
        if not isinstance(spec, dict):
            raise ClusterError(
                f"ring spec must be a JSON object, got {type(spec).__name__}"
            )
        algorithm = spec.get("algorithm")
        if algorithm != RING_ALGORITHM:
            raise ClusterError(
                f"ring algorithm {algorithm!r} is not supported; this build "
                f"speaks {RING_ALGORITHM!r}"
            )
        try:
            return cls(int(spec["shards"]), int(spec.get("vnodes", DEFAULT_VNODES)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"malformed ring spec {spec!r}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HashRing(shards={self.shards}, vnodes={self.vnodes})"


class ShardSliceBackend(GraphBackend):
    """One shard's slice of a partitioned graph.

    Wraps the shard's CSR snapshot — whose node table holds the owned nodes
    first, then every boundary neighbor with an empty row — and restricts the
    *visible* node set to the owned prefix: ``fetch`` / ``contains`` /
    ``metadata`` / ``node_ids`` answer only for nodes this shard owns, so a
    request the ring should have sent elsewhere fails loudly with
    :class:`~repro.exceptions.NodeNotFoundError` instead of returning a
    boundary node's (empty, wrong) adjacency.
    """

    def __init__(
        self,
        inner: CSRBackend,
        owned_count: int,
        *,
        shard: int,
        shards: int,
        name: Optional[str] = None,
    ) -> None:
        if not 0 <= owned_count <= len(inner):
            raise ClusterError(
                f"shard manifest claims {owned_count} owned nodes but the "
                f"snapshot holds {len(inner)}"
            )
        self._inner = inner
        self._owned_ids: List[NodeId] = inner.node_ids()[:owned_count]
        self._owned = set(self._owned_ids)
        self.shard = int(shard)
        self.shards = int(shards)
        self.name = name or f"shard{shard}/{shards}:{inner.name}"

    @property
    def inner(self) -> CSRBackend:
        """The underlying CSR store (owned + boundary rows)."""
        return self._inner

    def _require_owned(self, node: NodeId) -> None:
        if node not in self._owned:
            raise NodeNotFoundError(node)

    def fetch(self, node: NodeId) -> RawRecord:
        self._require_owned(node)
        return self._inner.fetch(node)

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        for node in nodes:
            self._require_owned(node)
        return self._inner.fetch_many(nodes)

    def contains(self, node: NodeId) -> bool:
        return node in self._owned

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        if node not in self._owned:
            return None
        return self._inner.metadata(node)

    def node_ids(self) -> List[NodeId]:
        return list(self._owned_ids)

    def sample_node(self, rng) -> NodeId:
        return self._owned_ids[int(rng.integers(0, len(self._owned_ids)))]

    def __len__(self) -> int:
        return len(self._owned_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardSliceBackend(shard={self.shard}/{self.shards}, "
            f"owned={len(self)}, table={len(self._inner)})"
        )


def _resolve_to_csr(source) -> CSRBackend:
    """Coerce a partitionable source into a (possibly memory-mapped) CSR."""
    from ..storage.snapshot import load_snapshot

    if isinstance(source, (str, Path)):
        return load_snapshot(source)
    if isinstance(source, InMemoryBackend):
        source = source.graph
    if isinstance(source, Graph):
        return CSRBackend.from_graph(source)
    if isinstance(source, CSRBackend):
        return source
    raise TypeError(
        f"cannot partition {type(source).__name__}; accepted sources: a CSR "
        "snapshot directory (str / Path), Graph, InMemoryBackend, or CSRBackend"
    )


def partition_snapshot(
    source,
    out_dir: PathLike,
    shards: int,
    *,
    vnodes: int = DEFAULT_VNODES,
    name: Optional[str] = None,
) -> Path:
    """Split a snapshot into per-shard snapshots plus a ``cluster.json``.

    ``source`` is a CSR snapshot directory (the usual case), or any in-memory
    graph / CSR backend.  ``out_dir`` receives one ``shard-NN`` snapshot
    directory per shard and the versioned cluster manifest; the return value
    is ``out_dir``.  Every shard directory is independently servable
    (``repro.cli serve --source out/shard-00``), and
    :func:`~repro.cluster.backend.load_cluster` reassembles the whole graph.
    """
    from ..storage.snapshot import save_snapshot

    csr = _resolve_to_csr(source)
    ring = HashRing(shards, vnodes=vnodes)
    graph_name = name or csr.name
    if graph_name.startswith("mmap:"):
        graph_name = graph_name[len("mmap:"):]

    all_ids = csr.node_ids()
    owned_by_shard: List[List[NodeId]] = [[] for _ in range(ring.shards)]
    for node in all_ids:
        owned_by_shard[ring.shard_of(node)].append(node)

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    attributes = csr.node_attributes
    entries: List[Dict[str, Any]] = []
    for shard, owned in enumerate(owned_by_shard):
        # Table layout: owned nodes first (in global backend order, so walks
        # over the reassembled cluster reproduce the original neighbor order
        # exactly), then boundary neighbors in first-appearance order with
        # empty rows.  The boundary entries exist only so the CSR ``indices``
        # array has an in-table index for every neighbor.
        table_index = {node: position for position, node in enumerate(owned)}
        boundary: List[NodeId] = []
        rows: List[List[int]] = []
        for node in owned:
            row: List[int] = []
            for neighbor in csr.fetch(node).neighbors:
                position = table_index.get(neighbor)
                if position is None:
                    position = len(owned) + len(boundary)
                    table_index[neighbor] = position
                    boundary.append(neighbor)
                row.append(position)
            rows.append(row)
        table_ids = owned + boundary
        indptr = np.zeros(len(table_ids) + 1, dtype=np.int64)
        lengths = [len(row) for row in rows] + [0] * len(boundary)
        np.cumsum(np.asarray(lengths, dtype=np.int64), out=indptr[1:])
        indices = np.fromiter(
            (position for row in rows for position in row),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        shard_attrs = {
            node: attributes[node] for node in owned if attributes.get(node)
        }
        shard_name = f"{graph_name}@{shard}/{ring.shards}"
        shard_csr = CSRBackend(
            indptr, indices, node_ids=table_ids, attributes=shard_attrs,
            name=shard_name,
        )
        shard_dirname = f"shard-{shard:02d}"
        shard_dir = save_snapshot(shard_csr, out_dir / shard_dirname, name=shard_name)
        sidecar = {
            "format": SHARD_FORMAT,
            "version": SHARD_VERSION,
            "name": shard_name,
            "shard": shard,
            "shards": ring.shards,
            "owned": len(owned),
            "ring": ring.spec(),
        }
        (shard_dir / SHARD_MANIFEST_NAME).write_text(
            json.dumps(sidecar, indent=2) + "\n", encoding="utf-8"
        )
        entries.append({"shard": shard, "source": shard_dirname, "nodes": len(owned)})

    manifest = {
        "format": CLUSTER_FORMAT,
        "version": CLUSTER_VERSION,
        "name": graph_name,
        "nodes": len(all_ids),
        "ring": ring.spec(),
        "shards": entries,
    }
    (out_dir / CLUSTER_MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return out_dir


def read_shard_manifest(directory: PathLike) -> Dict[str, Any]:
    """Read and validate the ``shard.json`` sidecar of a shard directory."""
    path = Path(directory) / SHARD_MANIFEST_NAME
    if not path.is_file():
        raise ClusterError(f"{directory} is not a shard directory (missing {SHARD_MANIFEST_NAME})")
    try:
        sidecar = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ClusterError(f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(sidecar, dict) or sidecar.get("format") != SHARD_FORMAT:
        raise ClusterError(
            f"{path} is not a {SHARD_FORMAT} manifest "
            f"(format={sidecar.get('format') if isinstance(sidecar, dict) else sidecar!r})"
        )
    if sidecar.get("version") != SHARD_VERSION:
        raise ClusterError(
            f"shard {directory} has format version {sidecar.get('version')!r}; "
            f"this build reads version {SHARD_VERSION}"
        )
    return sidecar


def load_shard(directory: PathLike) -> ShardSliceBackend:
    """Open one shard directory written by :func:`partition_snapshot`.

    The snapshot arrays open memory-mapped (O(1) like any snapshot); the
    returned :class:`ShardSliceBackend` serves only the shard's owned nodes.
    """
    from ..storage.snapshot import load_snapshot

    directory = Path(directory)
    sidecar = read_shard_manifest(directory)
    inner = load_snapshot(directory)
    try:
        owned = int(sidecar["owned"])
        shard = int(sidecar["shard"])
        shards = int(sidecar["shards"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterError(
            f"shard manifest {directory / SHARD_MANIFEST_NAME} is missing "
            f"valid 'owned'/'shard'/'shards' fields: {exc!r}"
        ) from exc
    return ShardSliceBackend(
        inner, owned, shard=shard, shards=shards, name=sidecar.get("name")
    )
