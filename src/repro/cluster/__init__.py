"""Sharded graph tier: consistent-hash partitioning over many graph servers.

The subsystem has two halves behind the unchanged two-method
:class:`~repro.api.backend.GraphBackend` protocol:

* **Partitioning** (:mod:`repro.cluster.partition`) — a deterministic
  consistent-hash :class:`HashRing` (stable across runs; configurable virtual
  nodes) and :func:`partition_snapshot`, which splits a PR-3 CSR snapshot
  into per-shard snapshot directories plus a versioned ``cluster.json``
  manifest.  Each shard directory is independently servable by ``repro.cli
  serve``.
* **Routing** (:mod:`repro.cluster.backend`) — :class:`ShardedBackend`
  presents N shard servers as one backend: per-node fetches route by ring
  lookup, batches split into per-shard sub-batches dispatched concurrently
  over keep-alive connections and re-merged in request order, metadata and
  node-id enumeration federate across shards, and failures carry per-shard
  attribution (:class:`~repro.exceptions.ShardError`).  Replicated layouts
  (``partition_snapshot(..., replicas=k)``) add transparent failover: reads
  rotate round-robin across live replicas, a failing shard sits out a
  deterministic cool-down, and :func:`repartition` re-balances an on-disk
  cluster incrementally while bumping the manifest epoch that every shard
  republishes on ``/info``.

Because all policy lives in middleware above the backend protocol, every
kernel, middleware layer and the :class:`~repro.engine.WalkScheduler` walk a
sharded cluster *bit-identically* to a local run — the conformance suite in
``tests/test_backend_conformance.py`` asserts it.  CLI:
``repro.cli partition`` and ``repro.cli serve-cluster``.
"""

from .backend import (
    CLUSTER_URL_SCHEME,
    DEFAULT_FAILOVER_COOLDOWN,
    DEFAULT_ROUTE_CACHE,
    ShardedBackend,
    cluster_from_urls,
    load_cluster,
    open_cluster,
    parse_cluster_url,
    read_cluster_manifest,
)
from .partition import (
    CLUSTER_FORMAT,
    CLUSTER_MANIFEST_NAME,
    CLUSTER_READ_VERSIONS,
    CLUSTER_VERSION,
    DEFAULT_VNODES,
    SHARD_FORMAT,
    SHARD_MANIFEST_NAME,
    SHARD_VERSION,
    HashRing,
    ShardSliceBackend,
    load_shard,
    node_key,
    partition_snapshot,
    read_shard_manifest,
    repartition,
)

__all__ = [
    "CLUSTER_FORMAT",
    "CLUSTER_MANIFEST_NAME",
    "CLUSTER_READ_VERSIONS",
    "CLUSTER_URL_SCHEME",
    "CLUSTER_VERSION",
    "DEFAULT_FAILOVER_COOLDOWN",
    "DEFAULT_ROUTE_CACHE",
    "DEFAULT_VNODES",
    "HashRing",
    "SHARD_FORMAT",
    "SHARD_MANIFEST_NAME",
    "SHARD_VERSION",
    "ShardSliceBackend",
    "ShardedBackend",
    "cluster_from_urls",
    "load_cluster",
    "load_shard",
    "node_key",
    "open_cluster",
    "parse_cluster_url",
    "partition_snapshot",
    "read_cluster_manifest",
    "read_shard_manifest",
    "repartition",
]
