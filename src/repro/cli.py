"""Command-line interface for regenerating the paper's tables and figures.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli figure6 --trials 10 --scale 0.3
    python -m repro.cli figure9 --out results/
    python -m repro.cli all --out results/

Each figure command runs the corresponding experiment definition from
:mod:`repro.experiments.figures`, prints the measured series in the paper's
layout and, when ``--out`` is given, writes one CSV per result table into that
directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .experiments import (
    ablation_recurrence,
    figure6,
    figure7_facebook,
    figure7_youtube,
    figure8,
    figure9,
    figure10,
    figure11,
    render_dataset_summaries,
    render_report,
    table1,
    theorem3_escape,
)
from .experiments.results import ExperimentReport

#: Experiment name -> callable returning a report or a list of reports.
EXPERIMENTS: Dict[str, Callable] = {
    "figure6": figure6,
    "figure7_facebook": figure7_facebook,
    "figure7_youtube": figure7_youtube,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "theorem3": theorem3_escape,
    "ablation_recurrence": ablation_recurrence,
}


def _print_and_save(reports, out_dir: Optional[Path]) -> None:
    if isinstance(reports, ExperimentReport):
        reports = [reports]
    for report in reports:
        print(render_report(report))
        print()
        if out_dir is not None:
            paths = report.to_csv_files(out_dir)
            for path in paths:
                print(f"wrote {path}")


def _run_table1(args: argparse.Namespace, out_dir: Optional[Path]) -> None:
    summaries = table1(seed=args.seed, scale=args.scale)
    print("Table 1: summary of the datasets")
    print(render_dataset_summaries(summaries))
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "table1.csv"
        lines = ["name,nodes,edges,average_degree,average_clustering,triangles"]
        for summary in summaries:
            record = summary.as_dict()
            lines.append(
                ",".join(str(record[key]) for key in (
                    "name", "nodes", "edges", "average_degree", "average_clustering", "triangles"
                ))
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {path}")


def _experiment_kwargs(name: str, args: argparse.Namespace) -> Dict[str, object]:
    """Build the keyword arguments accepted by a given experiment function."""
    kwargs: Dict[str, object] = {"seed": args.seed}
    # figure11 / theorem3 have no scale parameter; everything else does.
    if name not in ("figure11", "theorem3"):
        kwargs["scale"] = args.scale
    if args.trials is not None and name not in ("figure8",):
        kwargs["trials"] = args.trials
    return kwargs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the tables and figures of the VLDB 2015 paper "
        "'Leveraging History for Faster Sampling of Online Social Networks'.",
    )
    parser.add_argument(
        "experiment",
        choices=["list", "all", "table1", *EXPERIMENTS.keys()],
        help="experiment to run ('list' prints the available names)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale multiplier (default: each experiment's own default)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="number of independent trials per point (default: experiment default)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory to write result CSV files into"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in ("table1", *EXPERIMENTS.keys()):
            print(f"  {name}")
        return 0

    out_dir: Optional[Path] = args.out
    names: List[str]
    if args.experiment == "all":
        names = ["table1", *EXPERIMENTS.keys()]
    else:
        names = [args.experiment]

    for name in names:
        print(f"=== running {name} ===")
        if name == "table1":
            table_args = argparse.Namespace(
                seed=args.seed, scale=args.scale if args.scale is not None else 0.5
            )
            _run_table1(table_args, out_dir)
            print()
            continue
        function = EXPERIMENTS[name]
        kwargs = _experiment_kwargs(name, args)
        if args.scale is None:
            kwargs.pop("scale", None)
        reports = function(**kwargs)
        _print_and_save(reports, out_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
