"""Command-line interface for the paper's experiments and ad-hoc crawls.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli figure6 --trials 10 --scale 0.3
    python -m repro.cli figure9 --out results/
    python -m repro.cli all --out results/
    python -m repro.cli walk --dataset facebook_like --walker cnrw --budget 500
    python -m repro.cli walk --walker cnrw --walkers 8 --budget 500
    python -m repro.cli sweep --sweep-walkers srw,cnrw --budgets 100,200 --jobs 4
    python -m repro.cli snapshot --dataset facebook_like --out snapshots/fb
    python -m repro.cli walk --source snapshots/fb --walker cnrw --budget 500
    python -m repro.cli replay --record --dump crawl.jsonl --walker cnrw --budget 200
    python -m repro.cli replay --dump crawl.jsonl --walker cnrw --budget 200

Each figure command runs the corresponding experiment definition from
:mod:`repro.experiments.figures`, prints the measured series in the paper's
layout and, when ``--out`` is given, writes one CSV per result table into that
directory.  The ``walk`` command drives a budgeted crawl through the
:class:`~repro.api.session.SamplingSession` facade — the same access-layer
stack the experiments use — and reports the query cost, the estimate and the
simulated crawl time under the chosen rate limit; ``--walkers N`` runs an
N-walker ensemble through the batched
:class:`~repro.engine.scheduler.WalkScheduler` and pools the samples.  The
``sweep`` command runs a custom error-versus-cost sweep, optionally fanned out
over a process pool with ``--jobs``.

The storage commands persist graphs on disk (see :mod:`repro.storage`):
``snapshot`` compiles a dataset into a versioned memory-mapped CSR snapshot
directory that any later ``walk --source`` serves without rebuilding, and
``replay`` either records a traced crawl to a JSONL dump (``--record``) or
replays an existing dump offline as the walk's backend.

``serve`` exposes any graph source — a dataset, snapshot directory or crawl
dump — as a JSON-over-HTTP graph service (see :mod:`repro.server`)::

    python -m repro.cli serve --source snapshots/fb --port 8642
    python -m repro.cli walk --source http://127.0.0.1:8642 --walker cnrw --budget 500

A ``walk --source URL`` drives the remote service through
:class:`~repro.api.remote.HTTPGraphBackend` and is bit-identical to the same
walk over the served files locally.  ``serve --async`` swaps in the asyncio
frontend (one event loop instead of one thread per connection) and adds
``POST /walk`` (whole walks run server-side in one round trip) plus
``GET /stats``; ``--tenants tenants.json`` maps API keys to per-tenant
query budgets and rate limits, and ``--access-log FILE`` appends one JSON
line per request::

    python -m repro.cli serve --source snapshots/fb --port 8642 --async --tenants tenants.json

The cluster commands scale the service tier horizontally (see
:mod:`repro.cluster`): ``partition`` splits a CSR snapshot into N per-shard
snapshot directories plus a ``cluster.json`` manifest (consistent-hashed by
node id; ``--replicas k`` stores every node on its k successor shards so
reads survive a dead shard), ``repartition`` re-balances an existing
cluster directory to a new shard count / replica factor while bumping the
manifest epoch, and ``serve-cluster`` boots every shard of a manifest as
its own HTTP server::

    python -m repro.cli partition --source snapshots/fb --out cluster --shards 3 --replicas 2
    python -m repro.cli serve-cluster --source cluster --port 8700
    python -m repro.cli walk --source cluster/cluster.json --walker cnrw
    python -m repro.cli walk --source cluster://127.0.0.1:8700,127.0.0.1:8701,127.0.0.1:8702
    python -m repro.cli repartition --source cluster --shards 4

A sharded walk routes every fetch to the owning shard — round-robin across
live replicas when the layout is replicated, failing over on shard death —
and is bit-identical to the same walk over the unpartitioned graph.
``serve`` and ``serve-cluster`` shut down gracefully on SIGTERM/SIGINT:
keep-alive sockets are drained and the process exits 0.

The warehouse commands (see :mod:`repro.warehouse`) merge crawls into one
queryable WAL-mode SQLite store and take their own sub-arguments::

    python -m repro.cli warehouse ingest --store wh.sqlite crawl1.jsonl crawl2.jsonl
    python -m repro.cli warehouse stats --store wh.sqlite
    python -m repro.cli warehouse export --store wh.sqlite --out merged.jsonl
    python -m repro.cli walk --source wh.sqlite --walker cnrw --budget 500

``ingest`` creates the store on first use and accepts any graph source
(crawl dumps, CSR snapshots, even another warehouse), deduplicating nodes
across crawls and refusing contradictory ones; ``stats`` prints the
aggregates and the per-crawl provenance log; ``export`` writes the merged
store back out as a crawl dump or (for complete stores) a CSR snapshot.

``trace`` pretty-prints a JSONL span trace captured through the telemetry
layer (see :mod:`repro.obs`) as an indented per-trace tree::

    python -m repro.cli trace ensemble-trace.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .experiments import (
    ablation_recurrence,
    figure6,
    figure7_facebook,
    figure7_youtube,
    figure8,
    figure9,
    figure10,
    figure11,
    render_dataset_summaries,
    render_report,
    table1,
    theorem3_escape,
)
from .experiments.results import ExperimentReport

#: Experiment name -> callable returning a report or a list of reports.
EXPERIMENTS: Dict[str, Callable] = {
    "figure6": figure6,
    "figure7_facebook": figure7_facebook,
    "figure7_youtube": figure7_youtube,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "theorem3": theorem3_escape,
    "ablation_recurrence": ablation_recurrence,
}


def _print_and_save(reports, out_dir: Optional[Path]) -> None:
    if isinstance(reports, ExperimentReport):
        reports = [reports]
    for report in reports:
        print(render_report(report))
        print()
        if out_dir is not None:
            paths = report.to_csv_files(out_dir)
            for path in paths:
                print(f"wrote {path}")


def _run_table1(args: argparse.Namespace, out_dir: Optional[Path]) -> None:
    summaries = table1(seed=args.seed, scale=args.scale)
    print("Table 1: summary of the datasets")
    print(render_dataset_summaries(summaries))
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "table1.csv"
        lines = ["name,nodes,edges,average_degree,average_clustering,triangles"]
        for summary in summaries:
            record = summary.as_dict()
            lines.append(
                ",".join(str(record[key]) for key in (
                    "name", "nodes", "edges", "average_degree", "average_clustering", "triangles"
                ))
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {path}")


def _policy_from_args(args: argparse.Namespace):
    """Resolve --rate-limit into a policy (shared by walk and replay --record)."""
    from .api import twitter_policy, yelp_policy

    return {"none": None, "twitter": twitter_policy(), "yelp": yelp_policy()}[args.rate_limit]


def _reject_source_conflicts(args: argparse.Namespace) -> None:
    """Refuse dataset-shaping flags combined with --source.

    The backend kind, dataset and scale are baked into the served files, so a
    conflicting ask must error rather than be silently dropped (shared by
    'walk' and 'serve').
    """
    for flag, value in (("--backend", args.backend),
                        ("--dataset", args.dataset),
                        ("--scale", args.scale)):
        if value is not None:
            raise ValueError(
                f"{flag} does not apply to --source (the graph is read "
                f"as-is from the snapshot/dump files)"
            )


def _budget_from_args(args: argparse.Namespace) -> Optional[int]:
    """Resolve --budget, defaulting to a terminating 500 when --steps is unset."""
    if args.budget is None and args.steps is None:
        return 500  # matches the quickstart default
    return args.budget


def _run_walk(args: argparse.Namespace) -> None:
    """Run a budgeted crawl (single walk or scheduled ensemble)."""
    from .api import GraphBackend, as_backend
    from .graphs import load_dataset

    from .storage import ReplayBackend

    graph = None
    start = None
    if args.source is not None:
        _reject_source_conflicts(args)
        from .api import HTTPGraphBackend

        source = as_backend(args.source)
        if isinstance(source, ReplayBackend):
            # The dump preserves first-query order, so starting at the first
            # record replays the recorded crawl (same walker + seed) instead
            # of straying straight into a ReplayMissError.
            start = source.recorded_start
            if start is None:
                raise ValueError(f"crawl dump {args.source} contains no records")
        elif isinstance(source, HTTPGraphBackend):
            # A remote server may itself be replay-backed; /info then carries
            # the dump's recorded start (duck-typed off recorded_start, so
            # wrappers work too) and the restart costs nothing beyond the
            # descriptor fetch.
            info = source.info()
            start = info.get("start")
            if start is None and info.get("backend") == "ReplayBackend":
                raise ValueError(
                    f"replay served at {args.source} contains no records"
                )
        print(f"Source: {source.name} from {args.source} with {len(source)} nodes")
    else:
        graph = load_dataset(args.dataset or "facebook_like", seed=args.seed, scale=args.scale or 1.0)
        source = graph
        print(f"Graph: {graph.name} with {graph.number_of_nodes} nodes, "
              f"{graph.number_of_edges} edges")
    if args.start is not None:
        # An explicit start overrides even a replay's recorded start: the
        # user asked for this node, and a replay that never crawled it will
        # report the miss in the usual friendly way.
        import json

        try:
            start = json.loads(args.start)
        except ValueError:
            start = args.start  # bare word: treat as a string id
    try:
        _drive_walk(args, source, graph, start)
    finally:
        # Release whatever the source holds (remote keep-alive sockets,
        # shard dispatch pools); local backends close as a no-op.
        if isinstance(source, GraphBackend):
            source.close()


def _drive_walk(args: argparse.Namespace, source, graph, start) -> None:
    """Drive the configured walk/ensemble over an already-resolved source."""
    from .api import SamplingSession, estimate_crawl_time
    from .estimation import AggregateQuery, ground_truth
    from .metrics import relative_error

    policy = _policy_from_args(args)
    budget = _budget_from_args(args)
    session = SamplingSession(source, seed=args.seed).walker(args.walker, seed=args.seed)
    if graph is not None:
        session.backend(args.backend or "memory")
    if budget is not None:
        session.budget(budget)
    if policy is not None:
        session.rate_limit(policy)
    from .exceptions import ReplayMissError

    backend_label = (args.backend or "memory") if graph is not None else source.name
    try:
        if args.walkers > 1:
            starts = [start] * args.walkers if start is not None else None
            results = session.run_ensemble(
                args.walkers, steps=args.steps, seed=args.seed, starts=starts,
                burn_in=args.burn_in, thinning=args.thinning,
                mode=getattr(args, "engine", "scalar"),
            )
        else:
            result = session.run(
                start=start, max_steps=args.steps,
                burn_in=args.burn_in, thinning=args.thinning,
            )
    except ReplayMissError as error:
        # Walking past the edge of a recorded crawl is an expected way for a
        # replay to end (e.g. a larger budget than the recording); report how
        # far it got instead of failing.
        print(f"walk left the recorded crawl after "
              f"{session.unique_queries} unique queries: {error}")
        return
    if args.walkers > 1:
        steps = sum(result.steps for result in results)
        samples = sum(len(result.samples) for result in results)
        stopped = any(result.stopped_by_budget for result in results)
        print(f"Ensemble ({args.walkers} x {args.walker} over {backend_label} backend, "
              f"batched {getattr(args, 'engine', 'scalar')} scheduler): {steps} steps total, "
              f"{session.unique_queries} unique / {session.total_queries} total queries, "
              f"{samples} pooled samples"
              + (", stopped by budget" if stopped else ""))
        has_samples = samples > 0
    else:
        print(f"Walk ({args.walker} over {backend_label} backend): {result.steps} steps, "
              f"{result.unique_queries} unique / {result.total_queries} total queries, "
              f"{len(result.samples)} samples"
              + (", stopped by budget" if result.stopped_by_budget else ""))
        has_samples = bool(result.samples)

    query = AggregateQuery.average_degree()
    if has_samples:
        answer = session.estimate(query)
        print(f"Estimated average degree: {answer.value:.3f}")
        if graph is not None:
            truth = ground_truth(graph, query)
            print(f"True average degree:      {truth:.3f}")
            print(f"Relative error:           {relative_error(answer.value, truth):.2%}")
    else:
        print("No samples collected (budget too small to leave the start node); "
              "no estimate available.")
    if policy is not None:
        seconds = estimate_crawl_time(session.unique_queries, policy)
        print(f"Simulated crawl time under the {args.rate_limit} limit: "
              f"{seconds / 3600:.2f} hours")


@contextlib.contextmanager
def _graceful_signals():
    """Convert SIGTERM/SIGINT into a clean ``SystemExit(0)`` while serving.

    CI and process supervisors stop a server with SIGTERM; without a handler
    the process dies with exit code 143 and never drains its keep-alive
    sockets.  Raising ``SystemExit`` unwinds ``serve_forever`` through the
    caller's ``finally`` (which closes the server: shutdown, drain, join),
    so termination is indistinguishable from a clean exit.  Previous
    handlers are restored on the way out.
    """
    def _handle(signum, frame):
        raise SystemExit(0)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handle)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _run_serve(args: argparse.Namespace) -> None:
    """Serve a graph source over JSON/HTTP until interrupted."""
    from .api import as_backend
    from .graphs import load_dataset
    from .server import serve_backend, serve_backend_async

    if not args.async_server:
        if args.tenants is not None:
            raise ValueError("--tenants requires --async (the threaded "
                             "frontend has no tenant policy layer)")
        if args.access_log is not None:
            raise ValueError("--access-log requires --async")
    if args.source is not None:
        _reject_source_conflicts(args)
        backend = as_backend(args.source)
    else:
        graph = load_dataset(args.dataset or "facebook_like", seed=args.seed,
                             scale=args.scale or 1.0)
        backend = as_backend(graph)
    if args.async_server:
        import time

        server = serve_backend_async(
            backend, host=args.host, port=args.port,
            tenants=args.tenants, access_log=args.access_log,
        ).start()
        endpoints = ("endpoints: GET /info  GET /node/<id>  POST /nodes  "
                     "GET /meta/<id>  GET /node-ids  POST /walk  GET /stats")
    else:
        server = serve_backend(backend, host=args.host, port=args.port)
        endpoints = ("endpoints: GET /info  GET /node/<id>  POST /nodes  "
                     "GET /meta/<id>  GET /node-ids")
    # Handlers go in before the readiness banner: a supervisor (or CI) may
    # send SIGTERM the moment the banner appears.
    with _graceful_signals():
        try:
            print(f"Serving {backend.name} ({len(backend)} nodes) at {server.url}",
                  flush=True)
            print(endpoints, flush=True)
            if args.async_server and args.tenants is not None:
                print(f"tenants: {len(server.tenants)} "
                      f"(requests need an X-Api-Key header)", flush=True)
            # A wildcard bind address is not connectable; suggest a URL that is.
            port = server.server_address[1]
            reach = (f"http://<this-host>:{port}"
                     if args.host in ("0.0.0.0", "::") else server.url)
            print(f"walk it remotely with: python -m repro.cli walk "
                  f"--source {reach}", flush=True)
            if args.async_server:
                while True:
                    time.sleep(3600)
            else:
                server.serve_forever()
        except (KeyboardInterrupt, SystemExit):
            print("\nstopping (draining connections)", flush=True)
        finally:
            server.close()


def _run_partition(args: argparse.Namespace) -> None:
    """Split a CSR snapshot into consistent-hashed per-shard snapshots."""
    from .cluster import (
        CLUSTER_MANIFEST_NAME,
        DEFAULT_VNODES,
        load_cluster,
        partition_snapshot,
    )

    if args.source is None:
        raise ValueError("partition requires --source SNAPSHOT_DIR to split")
    if args.out is None:
        raise ValueError("partition requires --out DIRECTORY to write into")
    shards = args.shards if args.shards is not None else 3
    if shards < 1:
        raise ValueError("--shards must be at least 1")
    replicas = args.replicas if args.replicas is not None else 1
    out_dir = partition_snapshot(
        args.source, args.out, shards,
        vnodes=args.vnodes if args.vnodes is not None else DEFAULT_VNODES,
        replicas=replicas,
    )
    # Reopen through the manifest to verify the round trip end to end.
    with load_cluster(out_dir) as cluster:
        sizes = [len(shard) for shard in cluster.shard_backends]
        print(f"Partitioned {cluster.name.removeprefix('cluster:')} into "
              f"{shards} shards x{replicas} replicas ({len(cluster)} nodes: "
              f"{', '.join(map(str, sizes))})")
    print(f"wrote {out_dir / CLUSTER_MANIFEST_NAME} (walk it with: "
          f"python -m repro.cli walk --source {out_dir / CLUSTER_MANIFEST_NAME}; "
          f"serve it with: python -m repro.cli serve-cluster --source {out_dir})")


def _run_repartition(args: argparse.Namespace) -> None:
    """Re-balance an on-disk cluster to a new shard count / replica factor."""
    from .cluster import repartition

    if args.source is None:
        raise ValueError(
            "repartition requires --source CLUSTER_DIR (or cluster.json)"
        )
    if args.shards is not None and args.shards < 1:
        raise ValueError("--shards must be at least 1")
    report = repartition(
        args.source,
        shards=args.shards,
        replicas=args.replicas,
        vnodes=args.vnodes,
    )
    rebuilt = (", ".join(map(str, report["rebuilt"]))
               if report["rebuilt"] else "none")
    print(f"Repartitioned to {report['shards']} shards "
          f"x{report['replicas']} replicas at epoch {report['epoch']} "
          f"({report['nodes']} nodes; moved {report['moved']} node copies; "
          f"rebuilt shards: {rebuilt})")
    print("restart the shard servers on the new directories; clients holding "
          "the old manifest now refuse with a stale-manifest error")


def _run_serve_cluster(args: argparse.Namespace) -> None:
    """Boot every shard of a cluster manifest as its own HTTP server."""
    import time

    from .cluster import HashRing, read_cluster_manifest
    from .api import as_backend
    from .server import serve_backend

    if args.source is None:
        raise ValueError(
            "serve-cluster requires --source CLUSTER_DIR (or cluster.json)"
        )
    manifest, base_dir = read_cluster_manifest(args.source)
    ring = HashRing.from_spec(manifest.get("ring"))
    entries = sorted(manifest["shards"], key=lambda entry: entry["shard"])
    servers = []
    # Handlers go in before any shard banner: a supervisor (or CI) may send
    # SIGTERM the moment the cluster announces itself.
    with _graceful_signals():
        try:
            for entry in entries:
                source = entry["source"]
                if isinstance(source, str) and source.startswith(("http://", "https://")):
                    raise ValueError(
                        f"shard {entry['shard']} of {args.source} is already a "
                        f"remote service ({source}); serve-cluster boots local "
                        f"shard directories only"
                    )
                backend = as_backend(str(base_dir / source))
                port = 0 if args.port == 0 else args.port + int(entry["shard"])
                server = serve_backend(backend, host=args.host, port=port).start()
                servers.append(server)
                print(f"Serving shard {entry['shard']}/{ring.shards} "
                      f"({len(backend)} nodes) at {server.url}", flush=True)
            ports = [server.server_address[1] for server in servers]
            host = "<this-host>" if args.host in ("0.0.0.0", "::") else args.host
            shard_list = ",".join(f"{host}:{port}" for port in ports)
            print(f"walk the cluster with: python -m repro.cli walk "
                  f"--source cluster://{shard_list}", flush=True)
            while True:
                time.sleep(3600)
        except (KeyboardInterrupt, SystemExit):
            print("\nstopping cluster (draining connections)", flush=True)
        finally:
            for server in servers:
                server.close()


def _run_snapshot(args: argparse.Namespace) -> None:
    """Compile a dataset into an on-disk memory-mapped CSR snapshot."""
    from .graphs import load_dataset
    from .storage import load_snapshot, save_snapshot

    if args.out is None:
        raise ValueError("snapshot requires --out DIRECTORY to write into")
    graph = load_dataset(args.dataset or "facebook_like", seed=args.seed, scale=args.scale or 1.0)
    directory = save_snapshot(graph, args.out)
    backend = load_snapshot(directory)  # open mmapped to verify the round trip
    print(f"Snapshot of {graph.name}: {len(backend)} nodes, "
          f"{backend.number_of_edges} edges")
    print(f"wrote {directory} (reopen with: python -m repro.cli walk "
          f"--source {directory})")


def _run_replay(args: argparse.Namespace) -> None:
    """Record a traced crawl to a JSONL dump, or replay one offline."""
    from .api import SamplingSession
    from .graphs import load_dataset

    if args.dump is None:
        raise ValueError("replay requires --dump FILE (the crawl dump to "
                         "write with --record, or to replay)")
    if args.record:
        if args.walkers > 1:
            raise ValueError(
                "replay --record captures a single walk; --walkers is not "
                "supported (record one walk, or dump a full node set via the "
                "library's dump_crawl)"
            )
        from .api import estimate_crawl_time

        policy = _policy_from_args(args)
        budget = _budget_from_args(args)
        graph = load_dataset(args.dataset or "facebook_like", seed=args.seed, scale=args.scale or 1.0)
        session = (
            SamplingSession(graph, seed=args.seed)
            .trace()
            .walker(args.walker, seed=args.seed)
        )
        if budget is not None:
            session.budget(budget)
        if policy is not None:
            session.rate_limit(policy)
        result = session.run(
            max_steps=args.steps, burn_in=args.burn_in, thinning=args.thinning
        )
        path = session.dump_crawl(args.dump, name=f"{graph.name}:{args.walker}")
        print(f"Recorded {args.walker} crawl over {graph.name}: "
              f"{result.steps} steps, {session.unique_queries} unique queries")
        print(f"wrote {path} ({session.unique_queries} records)")
        if policy is not None:
            seconds = estimate_crawl_time(session.unique_queries, policy)
            print(f"Simulated crawl time under the {args.rate_limit} limit: "
                  f"{seconds / 3600:.2f} hours")
        return
    # Replaying a dump is exactly 'walk --source DUMP' (restart at the
    # recorded start node, friendly out-of-dump reporting); delegate so the
    # two paths cannot drift apart.  The dataset-shaping flags described the
    # *recording* run — drop them so the exact command line that recorded a
    # dump replays it by just removing --record.
    args.source = args.dump
    args.dataset = None
    args.scale = None
    args.backend = None
    _run_walk(args)


def _run_sweep(args: argparse.Namespace, out_dir: Optional[Path]) -> None:
    """Run a custom cost sweep, optionally fanned out over a process pool."""
    from .estimation import AggregateQuery
    from .experiments.config import CostSweepConfig, WalkerSpec
    from .experiments.runner import run_cost_sweep
    from .graphs import load_dataset

    walker_names = [name.strip() for name in args.sweep_walkers.split(",") if name.strip()]
    budgets = [int(value) for value in args.budgets.split(",") if value.strip()]
    graph = load_dataset(args.dataset or "facebook_like", seed=args.seed, scale=args.scale or 0.5)
    config = CostSweepConfig(
        walkers=tuple(WalkerSpec.make(name) for name in walker_names),
        query=AggregateQuery.average_degree(),
        budgets=tuple(budgets),
        trials=args.trials if args.trials is not None else 10,
        seed=args.seed,
    )
    engine = getattr(args, "engine", "scalar")
    print(f"Sweep over {graph.name}: walkers={','.join(walker_names)} "
          f"budgets={budgets} trials={config.trials} jobs={args.jobs} "
          f"engine={engine}")
    report = run_cost_sweep(graph, config, title=f"sweep {args.dataset or 'facebook_like'}",
                            jobs=args.jobs, engine=engine)
    _print_and_save(report, out_dir)


def _warehouse_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli warehouse",
        description="Ingest, inspect and export a queryable crawl warehouse "
        "(a WAL-mode SQLite store merging any number of crawls; see "
        "repro.warehouse).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    ingest = sub.add_parser(
        "ingest",
        help="merge one or more graph sources into the store "
        "(created on first use)",
    )
    ingest.add_argument(
        "--store", type=Path, required=True,
        help="warehouse .sqlite file (created if missing)",
    )
    ingest.add_argument(
        "--name", default=None,
        help="store name when creating a fresh warehouse (default: the stem "
        "of the store path)",
    )
    ingest.add_argument(
        "sources", nargs="+",
        help="graph sources to ingest, in order: crawl-dump files, CSR "
        "snapshot directories, or other warehouse .sqlite stores",
    )
    stats = sub.add_parser(
        "stats", help="print store aggregates and the per-crawl provenance log"
    )
    stats.add_argument("--store", type=Path, required=True,
                       help="warehouse .sqlite file to inspect")
    export = sub.add_parser(
        "export",
        help="write the merged store back out as a crawl dump or CSR snapshot",
    )
    export.add_argument("--store", type=Path, required=True,
                        help="warehouse .sqlite file to export from")
    export.add_argument("--out", type=Path, required=True,
                        help="output path: a .jsonl/.gz file for a dump, a "
                        "directory for a snapshot")
    export.add_argument(
        "--format", choices=["dump", "snapshot"], default=None,
        help="output format (default: inferred from --out — file-like "
        "suffixes .jsonl/.json/.gz mean dump, anything else snapshot)",
    )
    return parser


def _run_warehouse(argv: Sequence[str]) -> int:
    """Drive ``warehouse ingest|stats|export`` (own sub-parser, exit code)."""
    from .exceptions import ReproError
    from .warehouse import CrawlWarehouse

    args = _warehouse_parser().parse_args(argv)
    try:
        if args.command == "ingest":
            if args.store.exists():
                if args.name is not None:
                    raise ValueError(
                        f"--name only applies when creating a fresh store; "
                        f"{args.store} already exists"
                    )
                warehouse = CrawlWarehouse.open(args.store)
            else:
                warehouse = CrawlWarehouse.create(args.store, name=args.name)
            try:
                for source in args.sources:
                    report = warehouse.ingest(source)
                    print(report.describe())
                stats = warehouse.stats()
                print(f"store {args.store}: {stats['nodes']} nodes, "
                      f"{stats['edge_rows']} edge rows, "
                      f"{stats['meta_records']} boundary records, "
                      f"{stats['crawls']} crawls")
            finally:
                warehouse.close()
        elif args.command == "stats":
            warehouse = CrawlWarehouse.open(args.store)
            try:
                stats = warehouse.stats()
                print(f"warehouse {stats['name']} at {args.store}")
                print(f"  nodes:            {stats['nodes']}")
                print(f"  edge rows:        {stats['edge_rows']}")
                print(f"  boundary records: {stats['meta_records']}")
                print(f"  crawls:           {stats['crawls']}")
                if stats["average_degree"] is not None:
                    print(f"  average degree:   {stats['average_degree']:.3f}")
                    print(f"  max degree:       {stats['max_degree']}")
                for report in warehouse.crawl_log():
                    print(report.describe())
            finally:
                warehouse.close()
        else:  # export
            fmt = args.format
            if fmt is None:
                suffixes = {piece.lower() for piece in args.out.suffixes}
                fmt = ("dump" if suffixes & {".jsonl", ".json", ".gz"}
                       else "snapshot")
            warehouse = CrawlWarehouse.open(args.store)
            try:
                if fmt == "dump":
                    path = warehouse.export_dump(args.out)
                    print(f"wrote {path} ({len(warehouse)} records; replay "
                          f"with: python -m repro.cli walk --source {path})")
                else:
                    path = warehouse.export_snapshot(args.out)
                    print(f"wrote {path} ({len(warehouse)} nodes; reopen "
                          f"with: python -m repro.cli walk --source {path})")
            finally:
                warehouse.close()
    except (ReproError, ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli trace",
        description="Pretty-print a JSONL span trace exported by "
        "SamplingSession.trace_export() as an indented per-trace tree.",
    )
    parser.add_argument(
        "path", type=Path,
        help="JSONL trace file (one span object per line, '-' for stdin)",
    )
    return parser


def _run_trace(argv: Sequence[str]) -> int:
    """Drive ``trace FILE`` (own sub-parser, exit code)."""
    from . import obs

    args = _trace_parser().parse_args(argv)
    try:
        if str(args.path) == "-":
            lines = sys.stdin.read().splitlines()
        else:
            lines = args.path.read_text(encoding="utf-8").splitlines()
        spans = [json.loads(line) for line in lines if line.strip()]
        if not spans:
            raise ValueError(f"no spans in {args.path}")
        print(obs.render_trace_tree(spans))
    except (ValueError, FileNotFoundError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _experiment_kwargs(name: str, args: argparse.Namespace) -> Dict[str, object]:
    """Build the keyword arguments accepted by a given experiment function."""
    kwargs: Dict[str, object] = {"seed": args.seed}
    # figure11 / theorem3 have no scale parameter; everything else does.
    if name not in ("figure11", "theorem3"):
        kwargs["scale"] = args.scale
    if args.trials is not None and name not in ("figure8",):
        kwargs["trials"] = args.trials
    return kwargs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the tables and figures of the VLDB 2015 paper "
        "'Leveraging History for Faster Sampling of Online Social Networks'.",
    )
    parser.add_argument(
        "experiment",
        choices=["list", "all", "table1", "walk", "sweep", "snapshot", "replay",
                 "serve", "partition", "repartition", "serve-cluster",
                 *EXPERIMENTS.keys()],
        help="experiment to run ('list' prints the available names; 'walk' runs "
        "a budgeted crawl through the SamplingSession facade; 'sweep' runs a "
        "custom cost sweep, optionally across --jobs worker processes; "
        "'snapshot' persists a dataset as a memory-mapped CSR snapshot "
        "directory; 'replay' records a traced crawl to a JSONL dump or "
        "replays one offline; 'serve' exposes a graph source as a "
        "JSON-over-HTTP service that 'walk --source URL' drives remotely; "
        "'partition' splits a snapshot into consistent-hashed shard "
        "snapshots plus a cluster.json manifest; 'serve-cluster' boots every "
        "shard of a manifest as its own HTTP server)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale multiplier (default: each experiment's own default)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="number of independent trials per point (default: experiment default)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory to write result CSV files into"
    )
    walk = parser.add_argument_group("walk options")
    walk.add_argument(
        "--dataset", default=None,
        help="dataset name for 'walk'/'sweep'/'snapshot'/'replay --record' "
        "(default facebook_like; not applicable with --source)",
    )
    walk.add_argument(
        "--walker", default="cnrw", help="sampler name for 'walk' (default cnrw)"
    )
    walk.add_argument(
        "--backend", choices=["memory", "csr"], default=None,
        help="storage backend for 'walk' over a --dataset (default memory; "
        "not applicable with --source, whose kind is baked into the files)",
    )
    walk.add_argument(
        "--budget", type=int, default=None,
        help="unique-query budget for 'walk' (default 500 when --steps is unset)",
    )
    walk.add_argument(
        "--steps", type=int, default=None, help="maximum walk steps for 'walk'"
    )
    walk.add_argument("--burn-in", type=int, default=0, help="burn-in steps for 'walk'")
    walk.add_argument("--thinning", type=int, default=1, help="sample thinning for 'walk'")
    walk.add_argument(
        "--rate-limit", choices=["none", "twitter", "yelp"], default="none",
        help="simulated rate-limit policy for 'walk' (default none)",
    )
    walk.add_argument(
        "--start", default=None,
        help="explicit start node for 'walk', JSON-encoded (5 is the integer "
        "id, '\"5\"' the string id; bare words are taken as strings). "
        "Default: a random non-isolated node — note that the random draw "
        "depends on the backend's node order, so comparing a walk across "
        "backends (local vs remote vs sharded) needs an explicit start",
    )
    walk.add_argument(
        "--walkers", type=int, default=1,
        help="number of lockstep walkers for 'walk' (>1 runs a batched "
        "WalkScheduler ensemble and pools the samples; default 1)",
    )
    walk.add_argument(
        "--engine", choices=["scalar", "vector"], default="scalar",
        help="execution engine for 'walk' ensembles and 'sweep' trials "
        "(default scalar). 'vector' advances the whole ensemble in "
        "array-native numpy kernels over a CSR backend under its own seed "
        "lineage; configurations the vector engine cannot run (non-CSR "
        "sources, gnrw/nbcnrw/weighted walkers, rate limits, traces) fall "
        "back to the scalar scheduler with a warning",
    )
    walk.add_argument(
        "--source", default=None,
        help="graph source for 'walk'/'serve'/'partition'/'serve-cluster' "
        "instead of --dataset: a CSR snapshot directory (served "
        "memory-mapped), a crawl-dump file (replayed offline), a crawl "
        "warehouse .sqlite store (served through its WAL readers), an "
        "http(s):// URL of a 'serve' instance (driven remotely), or a "
        "cluster.json manifest / cluster://host:port,... shard list "
        "(driven through the sharded tier)",
    )
    storage = parser.add_argument_group("snapshot / replay options")
    storage.add_argument(
        "--dump", type=Path, default=None,
        help="crawl-dump file for 'replay' ('.gz' suffix gzip-compresses); "
        "written when --record is given, replayed otherwise",
    )
    storage.add_argument(
        "--record", action="store_true",
        help="for 'replay': run a traced --walker crawl over --dataset and "
        "record every fetched neighborhood to --dump",
    )
    serve = parser.add_argument_group("serve options")
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for 'serve'/'serve-cluster' (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8000,
        help="port for 'serve' (default 8000; 0 binds an ephemeral port, "
        "printed at startup); for 'serve-cluster' the base port — shard i "
        "binds port+i (0 gives every shard its own ephemeral port)",
    )
    serve.add_argument(
        "--async", dest="async_server", action="store_true",
        help="use the asyncio frontend for 'serve': one event loop instead "
        "of one thread per connection, plus POST /walk (server-side walks) "
        "and GET /stats (per-tenant usage)",
    )
    serve.add_argument(
        "--tenants", type=Path, default=None,
        help="tenants.json policy file for 'serve --async': maps API keys "
        "to named tenants with per-tenant query budgets and rate limits "
        "(requests then need a matching X-Api-Key header)",
    )
    serve.add_argument(
        "--access-log", type=Path, default=None,
        help="append one JSON line per request here ('serve --async' only)",
    )
    cluster = parser.add_argument_group("partition options")
    cluster.add_argument(
        "--shards", type=int, default=None,
        help="number of shards for 'partition' (default 3); for "
        "'repartition' the new shard count (default: keep)",
    )
    cluster.add_argument(
        "--vnodes", type=int, default=None,
        help="virtual nodes per shard on the consistent-hash ring for "
        "'partition' (default 64; more vnodes = more even shard sizes); for "
        "'repartition' the new vnode count (default: keep)",
    )
    cluster.add_argument(
        "--replicas", type=int, default=None,
        help="replica factor for 'partition' (default 1): every node is "
        "written to its k ring-successor shards so reads fail over when a "
        "shard dies; for 'repartition' the new factor (default: keep)",
    )
    sweep = parser.add_argument_group("sweep options")
    sweep.add_argument(
        "--sweep-walkers", default="srw,cnrw,gnrw_by_degree",
        help="comma-separated sampler names for 'sweep' "
        "(default srw,cnrw,gnrw_by_degree)",
    )
    sweep.add_argument(
        "--budgets", default="100,200,400",
        help="comma-separated unique-query budgets for 'sweep' (default 100,200,400)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for 'sweep' trials (default 1 = in-process; "
        "derived per-trial seeds keep any value bit-reproducible)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "warehouse":
        # The warehouse sub-commands take their own positional arguments
        # (ingest SOURCE...), which the single-positional main parser cannot
        # express; route them to a dedicated parser before it runs.
        return _run_warehouse(list(argv[1:]))
    if argv and argv[0] == "trace":
        return _run_trace(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in ("table1", *EXPERIMENTS.keys()):
            print(f"  {name}")
        print("  walk (ad-hoc SamplingSession crawl; see --dataset/--walker/--budget/--walkers)")
        print("  sweep (custom cost sweep; see --sweep-walkers/--budgets/--trials/--jobs)")
        print("  snapshot (persist a dataset as a mmap CSR snapshot; see --dataset/--out)")
        print("  replay (record a traced crawl to --dump with --record, or replay one)")
        print("  serve (expose a graph source over JSON/HTTP; see --source/--host/"
              "--port, and --async/--tenants/--access-log for the multi-tenant "
              "asyncio frontend)")
        print("  partition (split a snapshot into consistent-hashed shards; "
              "see --source/--out/--shards/--replicas)")
        print("  repartition (re-balance an existing cluster dir and bump its "
              "epoch; see --source/--shards/--replicas)")
        print("  serve-cluster (boot every shard of a cluster.json manifest; "
              "see --source/--host/--port)")
        print("  warehouse (merge crawls into a queryable SQLite store; "
              "warehouse ingest|stats|export --help)")
        print("  trace (pretty-print a JSONL span trace exported by "
              "SamplingSession.trace_export)")
        return 0

    if args.experiment in ("walk", "snapshot", "replay", "serve", "partition",
                           "repartition", "serve-cluster"):
        from .exceptions import ReproError

        handler = {"walk": _run_walk, "snapshot": _run_snapshot,
                   "replay": _run_replay, "serve": _run_serve,
                   "partition": _run_partition,
                   "repartition": _run_repartition,
                   "serve-cluster": _run_serve_cluster}
        try:
            handler[args.experiment](args)
        except (ReproError, ValueError, FileNotFoundError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    if args.experiment == "sweep":
        from .exceptions import ReproError

        try:
            _run_sweep(args, args.out)
        except (ReproError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    out_dir: Optional[Path] = args.out
    names: List[str]
    if args.experiment == "all":
        names = ["table1", *EXPERIMENTS.keys()]
    else:
        names = [args.experiment]

    for name in names:
        print(f"=== running {name} ===")
        if name == "table1":
            table_args = argparse.Namespace(
                seed=args.seed, scale=args.scale if args.scale is not None else 0.5
            )
            _run_table1(table_args, out_dir)
            print()
            continue
        function = EXPERIMENTS[name]
        kwargs = _experiment_kwargs(name, args)
        if args.scale is None:
            kwargs.pop("scale", None)
        reports = function(**kwargs)
        _print_and_save(reports, out_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
