"""Command-line interface for the paper's experiments and ad-hoc crawls.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli figure6 --trials 10 --scale 0.3
    python -m repro.cli figure9 --out results/
    python -m repro.cli all --out results/
    python -m repro.cli walk --dataset facebook_like --walker cnrw --budget 500
    python -m repro.cli walk --walker cnrw --walkers 8 --budget 500
    python -m repro.cli sweep --sweep-walkers srw,cnrw --budgets 100,200 --jobs 4

Each figure command runs the corresponding experiment definition from
:mod:`repro.experiments.figures`, prints the measured series in the paper's
layout and, when ``--out`` is given, writes one CSV per result table into that
directory.  The ``walk`` command drives a budgeted crawl through the
:class:`~repro.api.session.SamplingSession` facade — the same access-layer
stack the experiments use — and reports the query cost, the estimate and the
simulated crawl time under the chosen rate limit; ``--walkers N`` runs an
N-walker ensemble through the batched
:class:`~repro.engine.scheduler.WalkScheduler` and pools the samples.  The
``sweep`` command runs a custom error-versus-cost sweep, optionally fanned out
over a process pool with ``--jobs``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .experiments import (
    ablation_recurrence,
    figure6,
    figure7_facebook,
    figure7_youtube,
    figure8,
    figure9,
    figure10,
    figure11,
    render_dataset_summaries,
    render_report,
    table1,
    theorem3_escape,
)
from .experiments.results import ExperimentReport

#: Experiment name -> callable returning a report or a list of reports.
EXPERIMENTS: Dict[str, Callable] = {
    "figure6": figure6,
    "figure7_facebook": figure7_facebook,
    "figure7_youtube": figure7_youtube,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "theorem3": theorem3_escape,
    "ablation_recurrence": ablation_recurrence,
}


def _print_and_save(reports, out_dir: Optional[Path]) -> None:
    if isinstance(reports, ExperimentReport):
        reports = [reports]
    for report in reports:
        print(render_report(report))
        print()
        if out_dir is not None:
            paths = report.to_csv_files(out_dir)
            for path in paths:
                print(f"wrote {path}")


def _run_table1(args: argparse.Namespace, out_dir: Optional[Path]) -> None:
    summaries = table1(seed=args.seed, scale=args.scale)
    print("Table 1: summary of the datasets")
    print(render_dataset_summaries(summaries))
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "table1.csv"
        lines = ["name,nodes,edges,average_degree,average_clustering,triangles"]
        for summary in summaries:
            record = summary.as_dict()
            lines.append(
                ",".join(str(record[key]) for key in (
                    "name", "nodes", "edges", "average_degree", "average_clustering", "triangles"
                ))
            )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {path}")


def _run_walk(args: argparse.Namespace) -> None:
    """Run a budgeted crawl (single walk or scheduled ensemble)."""
    from .api import SamplingSession, estimate_crawl_time, twitter_policy, yelp_policy
    from .estimation import AggregateQuery, ground_truth
    from .graphs import load_dataset
    from .metrics import relative_error

    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale or 1.0)
    policy = {"none": None, "twitter": twitter_policy(), "yelp": yelp_policy()}[args.rate_limit]
    budget = args.budget
    if budget is None and args.steps is None:
        budget = 500  # a terminating default matching the quickstart
    session = (
        SamplingSession(graph, seed=args.seed)
        .backend(args.backend)
        .walker(args.walker, seed=args.seed)
    )
    if budget is not None:
        session.budget(budget)
    if policy is not None:
        session.rate_limit(policy)

    print(f"Graph: {graph.name} with {graph.number_of_nodes} nodes, "
          f"{graph.number_of_edges} edges")
    if args.walkers > 1:
        results = session.run_ensemble(
            args.walkers, steps=args.steps, seed=args.seed,
            burn_in=args.burn_in, thinning=args.thinning,
        )
        steps = sum(result.steps for result in results)
        samples = sum(len(result.samples) for result in results)
        stopped = any(result.stopped_by_budget for result in results)
        print(f"Ensemble ({args.walkers} x {args.walker} over {args.backend} backend, "
              f"batched scheduler): {steps} steps total, "
              f"{session.unique_queries} unique / {session.total_queries} total queries, "
              f"{samples} pooled samples"
              + (", stopped by budget" if stopped else ""))
        has_samples = samples > 0
    else:
        result = session.run(max_steps=args.steps, burn_in=args.burn_in, thinning=args.thinning)
        print(f"Walk ({args.walker} over {args.backend} backend): {result.steps} steps, "
              f"{result.unique_queries} unique / {result.total_queries} total queries, "
              f"{len(result.samples)} samples"
              + (", stopped by budget" if result.stopped_by_budget else ""))
        has_samples = bool(result.samples)

    query = AggregateQuery.average_degree()
    truth = ground_truth(graph, query)
    if has_samples:
        answer = session.estimate(query)
        print(f"Estimated average degree: {answer.value:.3f}")
        print(f"True average degree:      {truth:.3f}")
        print(f"Relative error:           {relative_error(answer.value, truth):.2%}")
    else:
        print("No samples collected (budget too small to leave the start node); "
              "no estimate available.")
    if policy is not None:
        seconds = estimate_crawl_time(session.unique_queries, policy)
        print(f"Simulated crawl time under the {args.rate_limit} limit: "
              f"{seconds / 3600:.2f} hours")


def _run_sweep(args: argparse.Namespace, out_dir: Optional[Path]) -> None:
    """Run a custom cost sweep, optionally fanned out over a process pool."""
    from .estimation import AggregateQuery
    from .experiments.config import CostSweepConfig, WalkerSpec
    from .experiments.runner import run_cost_sweep
    from .graphs import load_dataset

    walker_names = [name.strip() for name in args.sweep_walkers.split(",") if name.strip()]
    budgets = [int(value) for value in args.budgets.split(",") if value.strip()]
    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale or 0.5)
    config = CostSweepConfig(
        walkers=tuple(WalkerSpec.make(name) for name in walker_names),
        query=AggregateQuery.average_degree(),
        budgets=tuple(budgets),
        trials=args.trials if args.trials is not None else 10,
        seed=args.seed,
    )
    print(f"Sweep over {graph.name}: walkers={','.join(walker_names)} "
          f"budgets={budgets} trials={config.trials} jobs={args.jobs}")
    report = run_cost_sweep(graph, config, title=f"sweep {args.dataset}", jobs=args.jobs)
    _print_and_save(report, out_dir)


def _experiment_kwargs(name: str, args: argparse.Namespace) -> Dict[str, object]:
    """Build the keyword arguments accepted by a given experiment function."""
    kwargs: Dict[str, object] = {"seed": args.seed}
    # figure11 / theorem3 have no scale parameter; everything else does.
    if name not in ("figure11", "theorem3"):
        kwargs["scale"] = args.scale
    if args.trials is not None and name not in ("figure8",):
        kwargs["trials"] = args.trials
    return kwargs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the tables and figures of the VLDB 2015 paper "
        "'Leveraging History for Faster Sampling of Online Social Networks'.",
    )
    parser.add_argument(
        "experiment",
        choices=["list", "all", "table1", "walk", "sweep", *EXPERIMENTS.keys()],
        help="experiment to run ('list' prints the available names; 'walk' runs "
        "a budgeted crawl through the SamplingSession facade; 'sweep' runs a "
        "custom cost sweep, optionally across --jobs worker processes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale multiplier (default: each experiment's own default)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="number of independent trials per point (default: experiment default)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory to write result CSV files into"
    )
    walk = parser.add_argument_group("walk options")
    walk.add_argument(
        "--dataset", default="facebook_like",
        help="dataset name for 'walk' (default facebook_like)",
    )
    walk.add_argument(
        "--walker", default="cnrw", help="sampler name for 'walk' (default cnrw)"
    )
    walk.add_argument(
        "--backend", choices=["memory", "csr"], default="memory",
        help="storage backend for 'walk' (default memory)",
    )
    walk.add_argument(
        "--budget", type=int, default=None,
        help="unique-query budget for 'walk' (default 500 when --steps is unset)",
    )
    walk.add_argument(
        "--steps", type=int, default=None, help="maximum walk steps for 'walk'"
    )
    walk.add_argument("--burn-in", type=int, default=0, help="burn-in steps for 'walk'")
    walk.add_argument("--thinning", type=int, default=1, help="sample thinning for 'walk'")
    walk.add_argument(
        "--rate-limit", choices=["none", "twitter", "yelp"], default="none",
        help="simulated rate-limit policy for 'walk' (default none)",
    )
    walk.add_argument(
        "--walkers", type=int, default=1,
        help="number of lockstep walkers for 'walk' (>1 runs a batched "
        "WalkScheduler ensemble and pools the samples; default 1)",
    )
    sweep = parser.add_argument_group("sweep options")
    sweep.add_argument(
        "--sweep-walkers", default="srw,cnrw,gnrw_by_degree",
        help="comma-separated sampler names for 'sweep' "
        "(default srw,cnrw,gnrw_by_degree)",
    )
    sweep.add_argument(
        "--budgets", default="100,200,400",
        help="comma-separated unique-query budgets for 'sweep' (default 100,200,400)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for 'sweep' trials (default 1 = in-process; "
        "derived per-trial seeds keep any value bit-reproducible)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in ("table1", *EXPERIMENTS.keys()):
            print(f"  {name}")
        print("  walk (ad-hoc SamplingSession crawl; see --dataset/--walker/--budget/--walkers)")
        print("  sweep (custom cost sweep; see --sweep-walkers/--budgets/--trials/--jobs)")
        return 0

    if args.experiment == "walk":
        from .exceptions import ReproError

        try:
            _run_walk(args)
        except (ReproError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    if args.experiment == "sweep":
        from .exceptions import ReproError

        try:
            _run_sweep(args, args.out)
        except (ReproError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    out_dir: Optional[Path] = args.out
    names: List[str]
    if args.experiment == "all":
        names = ["table1", *EXPERIMENTS.keys()]
    else:
        names = [args.experiment]

    for name in names:
        print(f"=== running {name} ===")
        if name == "table1":
            table_args = argparse.Namespace(
                seed=args.seed, scale=args.scale if args.scale is not None else 0.5
            )
            _run_table1(table_args, out_dir)
            print()
            continue
        function = EXPERIMENTS[name]
        kwargs = _experiment_kwargs(name, args)
        if args.scale is None:
            kwargs.pop("scale", None)
        reports = function(**kwargs)
        _print_and_save(reports, out_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
