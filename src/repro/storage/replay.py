"""Record crawls to JSONL dumps and replay them as a :class:`GraphBackend`.

A crawl dump is a line-oriented JSON file (optionally gzip-compressed, by
``.gz`` suffix): a header line naming the format and version, one record per
fetched node, then one ``meta`` line per *boundary* neighbor — a node the
crawl saw listed but never fetched::

    {"format": "repro-crawl", "version": 1, "name": "...", "records": 2, "meta": 1}
    {"node": 0, "neighbors": [1, 5], "attributes": {"age": 20}}
    {"node": 1, "neighbors": [0]}
    {"meta": 5, "degree": 3}

The ``meta`` lines mirror the free inline profile summaries real OSN
responses carry (and ``peek_metadata`` serves): samplers like MHRW and GNRW
consult neighbor degrees/attributes without billing a query, so a faithful
replay must answer those peeks for every neighbor of a fetched node — not
just the fetched nodes themselves.

:func:`dump_crawl` writes one — either from a *traced* API stack (every node
the trace saw queried, in first-query order, re-read for free from the
innermost backend) or from any graph/backend with an explicit node list.
:func:`load_crawl` replays one as a :class:`ReplayBackend`: fetches of
recorded nodes return the exact :class:`~repro.api.backend.RawRecord` that was
crawled (neighbor order included), and any node outside the dump raises the
typed :class:`~repro.exceptions.ReplayMissError`.  A real or simulated crawl
thus becomes a reproducible offline fixture that drives the whole middleware
stack without the original graph.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..api.backend import GraphBackend, RawRecord, as_backend
from ..api.remote import record_from_wire, record_to_wire
from ..exceptions import CrawlDumpError, RemoteBackendError, ReplayMissError
from ..graphs.loaders import open_text
from ..types import NodeId

PathLike = Union[str, Path]

#: Format identifier written into (and demanded from) every dump header.
DUMP_FORMAT = "repro-crawl"
#: Current dump version; bump on any incompatible change.
DUMP_VERSION = 1


class ReplayBackend(GraphBackend):
    """Serve fetches from the records of a previously dumped crawl.

    The backend answers exactly what the recorded crawl saw: recorded nodes
    return their original records, anything else raises
    :class:`~repro.exceptions.ReplayMissError` (a
    :class:`~repro.exceptions.NodeNotFoundError` subclass, so middleware
    accounting treats a miss like any missing node).  ``metadata`` is served
    for recorded nodes and for the boundary neighbors whose free profile
    summaries the dump captured — anything beyond that returns ``None``, as
    a replay cannot invent data the crawl never saw.
    """

    def __init__(
        self,
        records: Iterable[RawRecord],
        name: str = "replay",
        source: Optional[PathLike] = None,
        metadata: Optional[Dict[NodeId, Dict[str, Any]]] = None,
    ) -> None:
        self._records: Dict[NodeId, RawRecord] = {}
        for record in records:
            self._records[record.node] = record
        #: Free profile summaries of boundary neighbors (never fetched).
        self._metadata: Dict[NodeId, Dict[str, Any]] = dict(metadata) if metadata else {}
        self.name = name
        self.source = Path(source) if source is not None else None

    @classmethod
    def from_dump(cls, path: PathLike) -> "ReplayBackend":
        """Load a dump written by :func:`dump_crawl` (alias of :func:`load_crawl`)."""
        return load_crawl(path)

    def fetch(self, node: NodeId) -> RawRecord:
        try:
            record = self._records[node]
        except KeyError:
            raise ReplayMissError(node, source=self.source) from None
        return RawRecord(
            node=record.node,
            neighbors=record.neighbors,
            attributes=dict(record.attributes),
        )

    def contains(self, node: NodeId) -> bool:
        return node in self._records

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        record = self._records.get(node)
        if record is not None:
            return {"degree": record.degree, "attributes": dict(record.attributes)}
        peeked = self._metadata.get(node)
        if peeked is not None:
            return {
                "degree": peeked.get("degree"),
                "attributes": dict(peeked.get("attributes", {})),
            }
        return None

    def node_ids(self) -> List[NodeId]:
        return list(self._records)

    @property
    def recorded_start(self) -> Optional[NodeId]:
        """The first fetched node of the recorded crawl (``None`` when empty).

        Dumps preserve first-query order, so restarting a walk here replays
        the recording; the graph server publishes it in ``GET /info`` so a
        remote client can restart without downloading the whole id table.
        """
        return next(iter(self._records), None)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        origin = f", source={str(self.source)!r}" if self.source is not None else ""
        return f"ReplayBackend(name={self.name!r}, records={len(self)}{origin})"


def _resolve_source(source) -> Tuple[GraphBackend, Optional[List[NodeId]]]:
    """Split ``source`` into (innermost backend, traced node order or None)."""
    backend = getattr(source, "backend", None)
    if isinstance(backend, GraphBackend):
        # An API stack: attribute delegation surfaces the innermost backend,
        # and (when a trace layer is present) the recorded query stream.
        trace = getattr(source, "trace", None)
        queried = getattr(trace, "queried_nodes", None)
        if queried is not None:
            return backend, list(dict.fromkeys(queried))
        return backend, None
    return as_backend(source), None


def dump_crawl(
    source,
    path: PathLike,
    nodes: Optional[Iterable[NodeId]] = None,
    name: Optional[str] = None,
) -> Path:
    """Write a JSONL crawl dump of ``source`` and return its path.

    ``source`` may be a traced API stack (the dump then covers every node the
    trace saw queried, in first-query order — the canonical "record this run"
    flow), or any :class:`~repro.graphs.graph.Graph` / backend combined with
    an explicit ``nodes`` iterable (e.g. ``backend.node_ids()`` for a full
    dump).  Records are re-read straight from the innermost backend, so
    dumping never touches budgets, caches or counters.
    """
    backend, traced = _resolve_source(source)
    if nodes is None:
        nodes = traced
        if nodes is None:
            raise ValueError(
                "dump_crawl needs either an explicit nodes iterable or a "
                "traced API stack (build_api(..., trace=True)) to know which "
                "neighborhoods the crawl fetched"
            )
    order = list(dict.fromkeys(nodes))
    records = [backend.fetch(node) for node in order]

    def encode(line: Dict[str, Any], what: str) -> str:
        # Encode once, validating as we go: anything JSON would silently
        # degrade (tuple ids -> lists, non-native attribute values) is
        # rejected before the file is touched.
        try:
            encoded = json.dumps(line)
            if json.loads(encoded) == line:
                return encoded
        except (TypeError, ValueError):
            pass
        raise CrawlDumpError(
            f"{what} is not JSON-representable; crawl dumps require node ids "
            f"and attribute values that survive a JSON round trip"
        )

    encoded_lines: List[str] = []
    for record in records:
        # record_to_wire is the single source of the record schema: the HTTP
        # graph service serves the same objects, so dump and wire formats
        # cannot drift apart.
        line = record_to_wire(record)
        encoded_lines.append(encode(line, f"record for node {record.node!r}"))
    # Boundary neighbors: nodes the crawl saw listed but never fetched.
    # Samplers consult their free profile summaries through peek_metadata
    # (MHRW degrees, GNRW grouping), so the dump must carry them for a
    # replay to reproduce the walk.
    fetched = set(order)
    meta_lines: List[str] = []
    for record in records:
        for neighbor in record.neighbors:
            if neighbor in fetched:
                continue
            fetched.add(neighbor)  # emit each boundary node once
            summary = backend.metadata(neighbor)
            if summary is None:
                continue
            line = {"meta": neighbor, "degree": summary.get("degree")}
            if summary.get("attributes"):
                line["attributes"] = summary["attributes"]
            meta_lines.append(encode(line, f"metadata of node {neighbor!r}"))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": DUMP_FORMAT,
        "version": DUMP_VERSION,
        "name": name or getattr(backend, "name", "crawl"),
        "records": len(records),
        "meta": len(meta_lines),
    }
    with open_text(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for encoded in encoded_lines:
            handle.write(encoded + "\n")
        for encoded in meta_lines:
            handle.write(encoded + "\n")
    return path


def load_crawl(path: PathLike) -> ReplayBackend:
    """Load a crawl dump written by :func:`dump_crawl` as a :class:`ReplayBackend`."""
    path = Path(path)
    if not path.is_file():
        raise CrawlDumpError(f"no crawl dump at {path}")
    with open_text(path, "r") as handle:
        try:
            header = json.loads(handle.readline())
        except (ValueError, UnicodeDecodeError, OSError, EOFError) as exc:
            raise CrawlDumpError(f"{path} is not a crawl dump: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != DUMP_FORMAT:
            raise CrawlDumpError(
                f"{path} is not a {DUMP_FORMAT} dump "
                f"(header format={header.get('format') if isinstance(header, dict) else header!r})"
            )
        if header.get("version") != DUMP_VERSION:
            raise CrawlDumpError(
                f"crawl dump {path} has version {header.get('version')!r}; "
                f"this build reads version {DUMP_VERSION}"
            )
        records: List[RawRecord] = []
        metadata: Dict[NodeId, Dict[str, Any]] = {}
        try:
            for line_number, line in enumerate(handle, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if "meta" in entry:
                        metadata[entry["meta"]] = {
                            "degree": entry.get("degree"),
                            "attributes": dict(entry.get("attributes", {})),
                        }
                    else:
                        records.append(record_from_wire(entry))
                except (ValueError, KeyError, TypeError, RemoteBackendError) as exc:
                    raise CrawlDumpError(
                        f"{path} line {line_number}: bad record: {exc}"
                    ) from exc
        except (EOFError, OSError) as exc:
            # A gzip stream cut off mid-file surfaces while iterating lines,
            # not at open time.
            raise CrawlDumpError(f"crawl dump {path} is truncated or unreadable: {exc}") from exc
    for label, expected, found in (
        ("records", header.get("records"), len(records)),
        ("meta entries", header.get("meta"), len(metadata)),
    ):
        if expected is not None and expected != found:
            raise CrawlDumpError(
                f"crawl dump {path} is truncated: header promises {expected} "
                f"{label}, found {found}"
            )
    return ReplayBackend(
        records,
        name=f"replay:{header.get('name', path.stem)}",
        source=path,
        metadata=metadata,
    )
