"""On-disk graph storage: mmap CSR snapshots and crawl-dump replay.

Two persistence formats sit behind the same two-method
:class:`~repro.api.backend.GraphBackend` protocol the rest of the library
already speaks, so persistent graphs drive every sampler, middleware layer and
scheduler unchanged:

* **CSR snapshots** (:mod:`repro.storage.snapshot`) — ``save_snapshot`` /
  ``load_snapshot`` persist a graph as two ``.npy`` arrays plus a versioned
  JSON manifest; :class:`MmapCSRBackend` serves fetches straight from
  ``np.memmap`` arrays, so opening is O(1) and graphs larger than RAM walk
  through the existing stack.
* **Crawl dumps** (:mod:`repro.storage.replay`) — ``dump_crawl`` records a
  traced run (or an explicit node set) to JSONL; :class:`ReplayBackend`
  replays it offline, raising :class:`~repro.exceptions.ReplayMissError` on
  any node the crawl never fetched.

:func:`open_backend` is the path dispatcher used by
:func:`repro.api.backend.as_backend`: a directory opens as a snapshot (or a
cluster/shard layout), a file as a crawl dump, a ``cluster.json`` manifest,
or — by SQLite magic — a crawl warehouse (:mod:`repro.warehouse`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..api.backend import GraphBackend
from .replay import (
    DUMP_FORMAT,
    DUMP_VERSION,
    ReplayBackend,
    dump_crawl,
    load_crawl,
)
from .snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    MmapCSRBackend,
    load_snapshot,
    read_manifest,
    save_snapshot,
)

__all__ = [
    "DUMP_FORMAT",
    "DUMP_VERSION",
    "MANIFEST_NAME",
    "MmapCSRBackend",
    "ReplayBackend",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "dump_crawl",
    "load_crawl",
    "load_snapshot",
    "open_backend",
    "read_manifest",
    "save_snapshot",
]


def open_backend(path: Union[str, Path]) -> GraphBackend:
    """Open an on-disk graph source as a :class:`GraphBackend`.

    A directory is read as a cluster (when it holds a ``cluster.json``
    manifest, reassembled through :func:`repro.cluster.load_cluster`), a
    shard slice (when it holds a ``shard.json`` sidecar, opened through
    :func:`repro.cluster.load_shard`), or a plain CSR snapshot
    (:func:`load_snapshot`, served memory-mapped).  A file is read as a
    crawl warehouse when it carries the SQLite magic (opened read-only
    through :class:`repro.warehouse.WarehouseBackend`), as a
    ``cluster.json`` manifest when its JSON says so, and as a crawl dump
    (:func:`load_crawl`) otherwise.  A path that does not exist raises
    :class:`FileNotFoundError` naming the accepted formats.
    """
    path = Path(path)
    if path.is_dir():
        from ..cluster import (
            CLUSTER_MANIFEST_NAME,
            SHARD_MANIFEST_NAME,
            load_cluster,
            load_shard,
        )

        if (path / CLUSTER_MANIFEST_NAME).is_file():
            return load_cluster(path)
        if (path / SHARD_MANIFEST_NAME).is_file():
            return load_shard(path)
        return load_snapshot(path)
    if path.is_file():
        from ..warehouse import WarehouseBackend, is_warehouse_file

        if is_warehouse_file(path):
            return WarehouseBackend(path)
        if path.suffix == ".json" and _is_cluster_manifest(path):
            from ..cluster import load_cluster

            return load_cluster(path)
        return load_crawl(path)
    raise FileNotFoundError(
        f"no graph storage at {path}: expected a CSR snapshot directory "
        f"(containing {MANIFEST_NAME}), a shard directory, a cluster.json "
        f"manifest, a crawl-dump file, or a crawl-warehouse .sqlite store"
    )


def _is_cluster_manifest(path: Path) -> bool:
    """Whether a ``.json`` file is a cluster manifest (vs. a crawl dump)."""
    import json

    from ..cluster import CLUSTER_FORMAT

    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return False
    return isinstance(payload, dict) and payload.get("format") == CLUSTER_FORMAT
