"""Versioned on-disk CSR snapshots, served memory-mapped.

A snapshot is a directory holding the two CSR arrays as ``.npy`` files plus a
JSON manifest describing them::

    snapshot/
        manifest.json    format name, version, counts, file inventory
        indptr.npy       int64 row pointers, length n + 1
        indices.npy      int64 column indices, length indptr[-1]
        node_ids.json    (only when ids are not exactly 0..n-1)
        attributes.json  (only when any node carries attributes)

:func:`save_snapshot` compiles any graph source into this layout;
:func:`load_snapshot` opens one and returns a :class:`MmapCSRBackend`, a
:class:`~repro.api.backend.CSRBackend` whose arrays are ``np.load(...,
mmap_mode="r")`` memory maps — pages are faulted in on demand, so opening a
snapshot is O(1) in the graph size and graphs larger than RAM walk through the
existing middleware stack unchanged.  The manifest pins a format version so a
future layout change fails loudly instead of mis-reading old files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..api.backend import CSRBackend, GraphBackend, InMemoryBackend
from ..exceptions import SnapshotError
from ..graphs.graph import Graph
from ..types import NodeId

PathLike = Union[str, Path]

#: Format identifier written into (and demanded from) every manifest.
SNAPSHOT_FORMAT = "repro-csr-snapshot"
#: Current layout version; bump on any incompatible change.
SNAPSHOT_VERSION = 1
MANIFEST_NAME = "manifest.json"
_INDPTR_NAME = "indptr.npy"
_INDICES_NAME = "indices.npy"
_NODE_IDS_NAME = "node_ids.json"
_ATTRIBUTES_NAME = "attributes.json"


class MmapCSRBackend(CSRBackend):
    """A :class:`CSRBackend` whose arrays live in a memory-mapped snapshot.

    Behaviourally identical to an in-RAM ``CSRBackend`` over the same arrays
    (the conformance suite asserts bit-identical records, walks and query
    accounting); only the storage of ``indptr`` / ``indices`` differs.  Build
    one with :func:`load_snapshot` or :meth:`open`.
    """

    def __init__(self, *args, directory: Optional[Path] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.directory = Path(directory) if directory is not None else None

    @classmethod
    def open(cls, directory: PathLike) -> "MmapCSRBackend":
        """Open a snapshot directory written by :func:`save_snapshot`."""
        return load_snapshot(directory, mmap=True)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MmapCSRBackend(name={self.name!r}, nodes={len(self)}, "
            f"edges={self.number_of_edges}, directory={str(self.directory)!r})"
        )


def _to_csr(source, name: Optional[str]) -> CSRBackend:
    """Compile any snapshot-able source into a :class:`CSRBackend`."""
    if isinstance(source, CSRBackend):
        return source
    if isinstance(source, InMemoryBackend):
        source = source.graph
    if isinstance(source, Graph):
        return CSRBackend.from_graph(source, name=name)
    raise TypeError(
        f"cannot snapshot {type(source).__name__}; accepted types: Graph, "
        "InMemoryBackend, or CSRBackend"
    )


def encode_json_exact(value) -> Optional[str]:
    """Encode ``value`` as JSON, or return ``None`` if the encoding is lossy.

    The on-disk formats store node ids and attributes as JSON; anything JSON
    degrades (tuples to lists, int dict keys to strings) or cannot encode at
    all must be rejected loudly at *save* time, or the write would report
    success and the load would return different — or unreadable — records.
    Returning the already-validated string lets callers write it directly
    instead of serializing the same value twice.
    """
    try:
        encoded = json.dumps(value)
        return encoded if json.loads(encoded) == value else None
    except (TypeError, ValueError):
        return None


def _write_array(directory: Path, filename: str, array: np.ndarray) -> None:
    """Atomically (re)write one ``.npy`` file via a temp file + rename.

    ``np.save`` straight onto the target would truncate the existing inode —
    which may still back the ``np.memmap`` arrays of a live (possibly the
    *source*) :class:`MmapCSRBackend`.  Writing a sibling temp file and
    ``os.replace``-ing it keeps the old inode alive for existing maps, so
    re-saving a snapshot over itself is safe.
    """
    tmp_path = directory / (filename + ".tmp")
    with open(tmp_path, "wb") as handle:
        np.save(handle, array)
    os.replace(tmp_path, directory / filename)


def save_snapshot(source, directory: PathLike, name: Optional[str] = None) -> Path:
    """Write ``source`` as a versioned CSR snapshot and return the directory.

    ``source`` may be a :class:`~repro.graphs.graph.Graph`, an
    :class:`~repro.api.backend.InMemoryBackend` or any
    :class:`~repro.api.backend.CSRBackend` (including an already-mmapped one,
    which copies the snapshot — even onto its own directory).  Graph sources
    are compiled with :meth:`CSRBackend.from_graph`, so neighbor order — and
    therefore every seeded walk — is preserved exactly across the round trip.
    """
    csr = _to_csr(source, name)
    # Validate the JSON-encoded parts before touching the disk, so a
    # rejected save never leaves a half-written snapshot behind.  The
    # identity flag comes from the backend (never materialise n ids just to
    # learn they are 0..n-1 — the common case for huge snapshots).
    identity = csr.identity_ids
    ids_json: Optional[str] = None
    if not identity:
        ids_json = encode_json_exact(csr.node_ids())
        if ids_json is None:
            raise SnapshotError(
                "snapshot node ids must survive a JSON round trip (int or "
                "str); relabel the graph (e.g. relabel_consecutively) first"
            )
    attributes = {node: attrs for node, attrs in csr.node_attributes.items() if attrs}
    # JSON objects force string keys; a pair list keeps int ids intact.
    attributes_json: Optional[str] = None
    if attributes:
        attributes_json = encode_json_exact(
            [[node, attrs] for node, attrs in attributes.items()]
        )
        if attributes_json is None:
            raise SnapshotError(
                "snapshot attributes must survive a JSON round trip "
                "(JSON-native values with string keys); found a value that "
                "does not"
            )
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        # e.g. the path (or a parent) exists as a regular file.
        raise SnapshotError(f"cannot create snapshot directory {directory}: {exc}") from exc
    indptr = np.ascontiguousarray(csr.indptr, dtype=np.int64)
    indices = np.ascontiguousarray(csr.indices, dtype=np.int64)
    _write_array(directory, _INDPTR_NAME, indptr)
    _write_array(directory, _INDICES_NAME, indices)
    if ids_json is not None:
        (directory / _NODE_IDS_NAME).write_text(ids_json, encoding="utf-8")
    else:
        (directory / _NODE_IDS_NAME).unlink(missing_ok=True)  # stale overwrite
    if attributes_json is not None:
        (directory / _ATTRIBUTES_NAME).write_text(attributes_json, encoding="utf-8")
    else:
        (directory / _ATTRIBUTES_NAME).unlink(missing_ok=True)  # stale overwrite
    # The "mmap:" prefix is a display marker added by load_snapshot; strip it
    # before persisting so copy/reload cycles don't accrete "mmap:mmap:..." .
    manifest_name = name or csr.name
    if manifest_name.startswith("mmap:"):
        manifest_name = manifest_name[len("mmap:"):]
    manifest: Dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "name": manifest_name,
        "nodes": len(csr),
        "entries": int(indices.size),
        "dtype": "int64",
        "identity_ids": identity,
        "has_attributes": bool(attributes),
        "files": {
            "indptr": _INDPTR_NAME,
            "indices": _INDICES_NAME,
            **({"node_ids": _NODE_IDS_NAME} if not identity else {}),
            **({"attributes": _ATTRIBUTES_NAME} if attributes else {}),
        },
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return directory


def read_manifest(directory: PathLike) -> Dict[str, Any]:
    """Read and validate the manifest of a snapshot directory."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(
            f"{directory} is not a CSR snapshot (missing {MANIFEST_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(
            f"{manifest_path} is not a snapshot manifest (expected a JSON "
            f"object, got {type(manifest).__name__})"
        )
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{manifest_path} is not a {SNAPSHOT_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {directory} has format version {version!r}; this build "
            f"reads version {SNAPSHOT_VERSION}"
        )
    return manifest


def load_snapshot(directory: PathLike, mmap: bool = True) -> CSRBackend:
    """Open a snapshot directory written by :func:`save_snapshot`.

    With ``mmap=True`` (the default) the arrays are memory-mapped read-only
    and the returned backend is a :class:`MmapCSRBackend`: opening costs a
    manifest read plus two ``.npy`` header reads, independent of graph size.
    ``mmap=False`` loads the arrays fully into RAM (a plain
    :class:`CSRBackend`), trading the cold-start win for in-memory speed.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    files = manifest.get("files", {})
    declared_dtype = manifest.get("dtype", "int64")
    if declared_dtype != "int64":
        raise SnapshotError(
            f"snapshot {directory} declares dtype {declared_dtype!r}; this "
            f"build reads int64 arrays"
        )
    mode = "r" if mmap else None
    try:
        indptr = np.load(directory / files.get("indptr", _INDPTR_NAME), mmap_mode=mode)
        indices = np.load(directory / files.get("indices", _INDICES_NAME), mmap_mode=mode)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot arrays in {directory}: {exc}") from exc
    if indptr.dtype != np.int64 or indices.dtype != np.int64:
        # A non-int64 array would be silently copied into RAM by the int64
        # coercion in CSRBackend.__init__ — the opposite of a memory map.
        raise SnapshotError(
            f"snapshot arrays in {directory} are {indptr.dtype}/{indices.dtype}, "
            f"expected int64"
        )
    try:
        expected_nodes = int(manifest["nodes"])
        expected_entries = int(manifest["entries"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"snapshot manifest {directory / MANIFEST_NAME} is missing valid "
            f"'nodes'/'entries' counts: {exc!r}"
        ) from exc
    if indptr.size != expected_nodes + 1 or indices.size != expected_entries:
        raise SnapshotError(
            f"snapshot {directory} is inconsistent: manifest promises "
            f"{expected_nodes} nodes / {expected_entries} entries, arrays "
            f"hold {indptr.size - 1} / {indices.size}"
        )
    node_ids: Optional[List[NodeId]] = None
    attributes: Optional[Dict[NodeId, Dict[str, Any]]] = None
    try:
        if not manifest.get("identity_ids", True):
            node_ids = json.loads(
                (directory / files.get("node_ids", _NODE_IDS_NAME)).read_text(encoding="utf-8")
            )
        if manifest.get("has_attributes"):
            pairs = json.loads(
                (directory / files.get("attributes", _ATTRIBUTES_NAME)).read_text(
                    encoding="utf-8"
                )
            )
            attributes = {node: attrs for node, attrs in pairs}
    except (OSError, ValueError, UnicodeDecodeError, TypeError) as exc:
        raise SnapshotError(
            f"unreadable snapshot node_ids/attributes in {directory}: {exc}"
        ) from exc
    name = manifest.get("name") or directory.name
    try:
        if mmap:
            return MmapCSRBackend(
                indptr, indices, node_ids=node_ids, attributes=attributes,
                name=f"mmap:{name}", directory=directory,
            )
        return CSRBackend(indptr, indices, node_ids=node_ids, attributes=attributes, name=name)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot {directory} is inconsistent: {exc}") from exc
