"""Serve walks straight out of a crawl warehouse.

:class:`WarehouseBackend` is the read side of :mod:`repro.warehouse`: a
:class:`~repro.api.backend.GraphBackend` whose fetches are one indexed
SQLite lookup each (the ``nodes`` row carries the JSON neighbor array in
stored order), batched into a single ``IN`` query per ``fetch_many``
round.  Because the store is WAL-mode, any number of these
backends — across threads *and* processes — read a consistent snapshot
while a :class:`~repro.warehouse.store.CrawlWarehouse` writer ingests new
crawls concurrently, which is what lets a warehouse sit behind
:mod:`repro.server` (thread-per-connection) and the experiment runner's
``jobs=`` process fan-out unchanged.

Each thread gets its own connection (SQLite connections are not thread
safe), opened with ``query_only=ON`` so a reader can never mutate the
store; pickling reduces to the store path, so process pools re-open their
own connections on the far side.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..api.backend import GraphBackend, RawRecord
from ..exceptions import NodeNotFoundError, WarehouseError
from ..types import NodeId
from .store import (
    WAREHOUSE_FORMAT,
    WAREHOUSE_VERSION,
    decode_node_key,
    is_warehouse_file,
    try_encode_node_key,
)

PathLike = Union[str, Path]


class WarehouseBackend(GraphBackend):
    """Read-only graph backend over a ``repro-warehouse`` SQLite store.

    Conformance-identical to the backend the crawls were ingested from: the
    same ``RawRecord``s (neighbor order included), the same golden walk
    fingerprints, the same ``QueryStats`` accounting through the middleware
    stack.  Boundary neighbors (ingested ``meta`` rows) answer
    :meth:`metadata` peeks exactly like a replayed dump.
    """

    #: Default decoded-record cache capacity (records, not bytes).
    DEFAULT_RECORD_CACHE = 65_536

    def __init__(
        self, path: PathLike, record_cache: int = DEFAULT_RECORD_CACHE
    ) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise WarehouseError(f"no crawl warehouse at {self.path}")
        if not is_warehouse_file(self.path):
            raise WarehouseError(f"{self.path} is not an SQLite database file")
        # Decoded-record cache, shared by every thread.  Sound because the
        # store is append-only: a ``nodes`` row never changes once written
        # (ingest only inserts new rows and promotes ``metadata`` rows), so
        # a decoded record stays correct for the lifetime of the file.
        # Misses are never cached (the node may arrive with a later crawl)
        # and neither are ``metadata`` answers (promotion moves them).
        self._record_cache: Dict[str, RawRecord] = {}
        self._record_cache_cap = max(0, int(record_cache))
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._closed = False
        # Validate format/version once, eagerly, on the opening thread.
        conn = self._conn()
        try:
            rows = dict(conn.execute("SELECT key, value FROM warehouse"))
        except sqlite3.DatabaseError as exc:
            self.close()
            raise WarehouseError(
                f"{self.path} is not a {WAREHOUSE_FORMAT} store: {exc}"
            ) from exc
        if rows.get("format") != WAREHOUSE_FORMAT:
            self.close()
            raise WarehouseError(
                f"{self.path} is not a {WAREHOUSE_FORMAT} store "
                f"(format={rows.get('format')!r})"
            )
        if rows.get("version") != str(WAREHOUSE_VERSION):
            self.close()
            raise WarehouseError(
                f"warehouse {self.path} has schema version "
                f"{rows.get('version')!r}; this build reads version "
                f"{WAREHOUSE_VERSION}"
            )
        self.name = f"warehouse:{rows.get('name', self.path.stem)}"

    @classmethod
    def open(cls, path: PathLike) -> "WarehouseBackend":
        """Open a warehouse written by :class:`~repro.warehouse.CrawlWarehouse`."""
        return cls(path)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        """The calling thread's read-only connection (opened on first use)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._closed:
                raise WarehouseError(f"warehouse backend {self.path} is closed")
            conn = sqlite3.connect(str(self.path))
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("PRAGMA query_only=ON")
            self._local.conn = conn
            with self._connections_lock:
                self._connections.append(conn)
        return conn

    def close(self) -> None:
        """Close every thread's connection (safe to call from any thread).

        Connections owned by other threads are closed here too: sqlite3
        forbids *using* a connection across threads, but closing is the
        documented exception once no other thread is mid-query — which is
        the case by the time a backend is shut down.
        """
        self._closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - foreign thread
                pass
        self._local = threading.local()

    def __reduce__(self):
        # Pickle as the store path: each process-pool worker re-opens its
        # own read connections, which is exactly the WAL many-readers model.
        return (type(self), (str(self.path),))

    # ------------------------------------------------------------------
    # GraphBackend interface
    # ------------------------------------------------------------------
    def _cache_record(self, key: str, record: RawRecord) -> RawRecord:
        cache = self._record_cache
        if self._record_cache_cap:
            if len(cache) >= self._record_cache_cap:
                # FIFO eviction: cheap, lock-free under the GIL, and good
                # enough for a cache whose entries never go stale.
                cache.pop(next(iter(cache)), None)
            cache[key] = record
        return record

    def fetch(self, node: NodeId) -> RawRecord:
        key = try_encode_node_key(node)
        if key is None:
            # An id the canonical key encoding cannot represent cannot be in
            # the store: an ordinary miss, exactly like CSR's identity path.
            raise NodeNotFoundError(node)
        cached = self._record_cache.get(key)
        if cached is not None:
            return cached
        row = self._conn().execute(
            "SELECT neighbors, attributes FROM nodes WHERE node=?", (key,)
        ).fetchone()
        if row is None:
            raise NodeNotFoundError(node)
        return self._cache_record(key, RawRecord(
            node=node,
            neighbors=tuple(json.loads(row[0])),
            attributes=json.loads(row[1]) if row[1] else {},
        ))

    #: fetch_many chunk size, comfortably under SQLite's bound-variable cap.
    _BATCH = 500

    def fetch_many(self, nodes: Sequence[NodeId]) -> List[RawRecord]:
        """Batched fetch: one ``IN`` query per chunk of uncached keys.

        The scheduler's lockstep rounds arrive here as one call per step, so
        folding them into a single SQL round (instead of a query per walker)
        is what keeps warehouse-served ensembles near in-RAM speed.  Order
        and duplicates are preserved exactly, and any missing node raises
        the same typed error :meth:`fetch` would.
        """
        cache = self._record_cache
        keys: List[str] = []
        missing: List[NodeId] = []
        missing_keys: List[str] = []
        for node in nodes:
            key = try_encode_node_key(node)
            if key is None:
                raise NodeNotFoundError(node)
            keys.append(key)
            if key not in cache:
                missing.append(node)
                missing_keys.append(key)
        if not keys:
            return []
        fetched: Dict[str, RawRecord] = {}
        if missing_keys:
            conn = self._conn()
            rows: Dict[str, tuple] = {}
            distinct = list(dict.fromkeys(missing_keys))
            for start in range(0, len(distinct), self._BATCH):
                chunk = distinct[start:start + self._BATCH]
                marks = ",".join("?" * len(chunk))
                rows.update(
                    (key, (neighbors, attributes))
                    for key, neighbors, attributes in conn.execute(
                        f"SELECT node, neighbors, attributes FROM nodes "
                        f"WHERE node IN ({marks})",
                        chunk,
                    )
                )
            for node, key in zip(missing, missing_keys):
                row = rows.get(key)
                if row is None:
                    raise NodeNotFoundError(node)
                if key not in fetched:
                    fetched[key] = self._cache_record(key, RawRecord(
                        node=node,
                        neighbors=tuple(json.loads(row[0])),
                        attributes=json.loads(row[1]) if row[1] else {},
                    ))
        records: List[RawRecord] = []
        for node, key in zip(nodes, keys):
            record = fetched.get(key) or cache.get(key)
            if record is None:  # evicted between the scan and here
                record = self.fetch(node)
            records.append(record)
        return records

    def contains(self, node: NodeId) -> bool:
        key = try_encode_node_key(node)
        if key is None:
            return False
        return (
            self._conn().execute(
                "SELECT 1 FROM nodes WHERE node=?", (key,)
            ).fetchone()
            is not None
        )

    def metadata(self, node: NodeId) -> Optional[Dict[str, Any]]:
        key = try_encode_node_key(node)
        if key is None:
            return None
        conn = self._conn()
        row = conn.execute(
            "SELECT degree, attributes FROM nodes WHERE node=?", (key,)
        ).fetchone()
        if row is not None:
            return {
                "degree": int(row[0]),
                "attributes": json.loads(row[1]) if row[1] else {},
            }
        row = conn.execute(
            "SELECT degree, attributes FROM metadata WHERE node=?", (key,)
        ).fetchone()
        if row is not None:
            return {
                "degree": int(row[0]) if row[0] is not None else None,
                "attributes": json.loads(row[1]) if row[1] else {},
            }
        return None

    def node_ids(self) -> List[NodeId]:
        return [
            decode_node_key(key)
            for (key,) in self._conn().execute("SELECT node FROM nodes ORDER BY seq")
        ]

    def sample_node(self, rng) -> NodeId:
        """Draw one uniformly random node without materialising the id table.

        ``seq`` values are assigned densely (0..n-1, append-only store), so
        drawing an index and resolving it by the unique ``seq`` index
        consumes the rng exactly like the default ``node_ids()`` lookup
        would — seeded start picks are unchanged — at O(1) cost.
        """
        n = len(self)
        if n == 0:
            raise NodeNotFoundError(None)
        index = int(rng.integers(0, n))
        row = self._conn().execute(
            "SELECT node FROM nodes WHERE seq=?", (index,)
        ).fetchone()
        return decode_node_key(row[0])

    def __len__(self) -> int:
        return int(self._conn().execute("SELECT COUNT(*) FROM nodes").fetchone()[0])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"WarehouseBackend(name={self.name!r}, nodes={len(self)}, "
            f"path={str(self.path)!r})"
        )
