"""A queryable crawl warehouse: WAL-mode SQLite over many merged crawls.

PR 3's crawl dumps are append-only JSONL artifacts — the only thing you can
do with one is replay it start to finish.  The warehouse turns any number of
those dumps (plus CSR snapshots and live backends) into one *queryable*
store: a single SQLite file in WAL mode, so one writer ingests new crawls
while any number of concurrent readers — walker processes, the HTTP graph
service, aggregate queries — read a consistent snapshot without blocking.

On-disk format (``repro-warehouse`` v1)::

    warehouse(key, value)                 format / version / name
    crawls(crawl_id, name, source, kind,  one row per ingest, in ingest
           records, new_nodes,            order: the provenance log
           duplicate_nodes, meta_records)
    nodes(node, seq, degree, neighbors,   one row per fetched node; node is
          attributes, crawl_id)           the canonical-JSON id, seq the
                                          global first-ingest order,
                                          neighbors the JSON neighbor array
                                          (the one-lookup serving row)
    edges(src, pos, dst)                  one row per neighbor slot; pos
                                          preserves the crawled neighbor
                                          order exactly (the relational
                                          side: aggregates, dangling-edge
                                          checks, per-neighbor indexes)
    metadata(node, degree, attributes,    boundary neighbors: seen listed,
             crawl_id)                    never fetched (the dumps' ``meta``
                                          lines)
    node_attrs(node, name, value)         exploded attribute pairs feeding
                                          the aggregate indexes

with ``journal_mode=WAL``, ``synchronous=NORMAL``, ``foreign_keys=ON`` and a
30s ``busy_timeout`` (the warehouse-over-embedded-SQLite pragma set), plus
indexes on ``nodes(degree)`` and ``node_attrs(name, value)`` so estimator
sanity checks read SQL aggregates instead of walking.

Node ids are stored as *canonical JSON* (sorted keys, no whitespace), so
``5`` and ``"5"`` stay distinct and unicode ids round-trip exactly; any id
or attribute value JSON would degrade is rejected at ingest time, exactly
like the snapshot and dump writers.

Ingestion dedupes nodes by id and is conflict-checked: a record whose
neighbor rows or attributes contradict an already ingested record — or a
boundary metadata degree that contradicts a fetched record — raises the
typed :class:`~repro.exceptions.IngestConflictError` and rolls the whole
crawl back.  Exports are lossless: :meth:`CrawlWarehouse.export_dump`
reproduces a ``repro-crawl`` dump (records in first-ingest order, boundary
``meta`` lines included) and :meth:`CrawlWarehouse.export_snapshot` compiles
a complete warehouse back into a ``repro-csr-snapshot`` directory.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..api.backend import GraphBackend, RawRecord, as_backend
from ..exceptions import IngestConflictError, WarehouseError
from ..graphs.graph import Graph
from ..types import NodeId

PathLike = Union[str, Path]

#: Format identifier written into (and demanded from) every store.
WAREHOUSE_FORMAT = "repro-warehouse"
#: Current schema version; bump on any incompatible change.
WAREHOUSE_VERSION = 1

#: The 16-byte magic prefix of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Connection pragmas: WAL for concurrent readers under one writer,
#: NORMAL sync (safe in WAL mode, much faster than FULL), enforced foreign
#: keys, and a generous busy timeout so a reader never fails spuriously
#: while an ingest commits.
_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA foreign_keys=ON",
    "PRAGMA busy_timeout=30000",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS warehouse (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS crawls (
    crawl_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    name            TEXT NOT NULL,
    source          TEXT,
    kind            TEXT NOT NULL,
    records         INTEGER NOT NULL,
    new_nodes       INTEGER NOT NULL,
    duplicate_nodes INTEGER NOT NULL,
    meta_records    INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    node       TEXT PRIMARY KEY,
    seq        INTEGER NOT NULL UNIQUE,
    degree     INTEGER NOT NULL,
    neighbors  TEXT NOT NULL,
    attributes TEXT,
    crawl_id   INTEGER NOT NULL REFERENCES crawls(crawl_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_nodes_degree ON nodes(degree);
CREATE INDEX IF NOT EXISTS idx_nodes_crawl  ON nodes(crawl_id);
CREATE TABLE IF NOT EXISTS edges (
    src TEXT NOT NULL,
    pos INTEGER NOT NULL,
    dst TEXT NOT NULL,
    PRIMARY KEY (src, pos)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_edges_dst ON edges(dst);
CREATE TABLE IF NOT EXISTS metadata (
    node       TEXT PRIMARY KEY,
    degree     INTEGER,
    attributes TEXT,
    crawl_id   INTEGER NOT NULL REFERENCES crawls(crawl_id)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS node_attrs (
    node  TEXT NOT NULL,
    name  TEXT NOT NULL,
    value TEXT NOT NULL,
    PRIMARY KEY (node, name)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_node_attrs ON node_attrs(name, value);
"""


def encode_node_key(node: NodeId) -> str:
    """Encode a node id as its canonical JSON key, or raise WarehouseError.

    Canonical form (sorted keys, compact separators) makes the key stable
    across processes, keeps ``5`` and ``"5"`` distinct, and the round-trip
    check rejects ids JSON would silently degrade (tuples to lists) exactly
    like the snapshot and dump writers do.
    """
    key = try_encode_node_key(node)
    if key is None:
        raise WarehouseError(
            f"node id {node!r} does not survive a JSON round trip; the "
            f"warehouse stores int or str ids (like snapshots and dumps)"
        )
    return key


def try_encode_node_key(node: NodeId) -> Optional[str]:
    """Encode a node id as its canonical JSON key, or ``None`` if lossy.

    Lookups use this: an id the key encoding cannot represent cannot be in
    the store, so backends treat it as an ordinary miss instead of an error.
    The int and str fast paths skip the round-trip validation — those types
    always survive JSON exactly, and this function sits on the per-fetch
    hot path of :class:`~repro.warehouse.backend.WarehouseBackend`.  (The
    ``type is int`` check deliberately excludes bool, whose JSON form is
    ``true``, via the general path.)
    """
    kind = type(node)
    if kind is int:
        return str(node)
    if kind is str:
        return json.dumps(node)
    try:
        key = json.dumps(node, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return key if json.loads(key) == node else None


def decode_node_key(key: str) -> NodeId:
    """Decode a canonical JSON key back into the original node id."""
    return json.loads(key)


def _encode_attributes(node: NodeId, attributes: Dict[str, Any]) -> Optional[str]:
    """Encode an attribute dict as JSON (``None`` when empty), validating."""
    if not attributes:
        return None
    try:
        encoded = json.dumps(attributes, sort_keys=True, separators=(",", ":"))
        if json.loads(encoded) == attributes:
            return encoded
    except (TypeError, ValueError):
        pass
    raise WarehouseError(
        f"attributes of node {node!r} do not survive a JSON round trip; "
        f"the warehouse stores JSON-native attribute values with string keys"
    )


def _encode_neighbors(record: RawRecord, node_key) -> str:
    """Encode a record's neighbor tuple as one JSON array (the serving row).

    Each neighbor id is individually round-trip validated through
    ``node_key`` first, so the array as a whole is exact; keeping the whole
    tuple in one column makes serving a fetch a single indexed lookup plus a
    single ``json.loads``.
    """
    for neighbor in record.neighbors:
        node_key(neighbor)
    return json.dumps(list(record.neighbors), separators=(",", ":"))


def is_warehouse_file(path: PathLike) -> bool:
    """Whether ``path`` is an SQLite database file (by magic prefix).

    Used by the :func:`repro.storage.open_backend` dispatcher to tell a
    warehouse from a crawl dump without trusting file suffixes.
    """
    path = Path(path)
    if not path.is_file():
        return False
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


@dataclass(frozen=True)
class IngestReport:
    """Provenance of one ingested crawl (one row of the ``crawls`` table)."""

    crawl_id: int
    name: str
    source: Optional[str]
    kind: str
    records: int
    new_nodes: int
    duplicate_nodes: int
    meta_records: int

    def describe(self) -> str:
        """One provenance line (the ``warehouse stats`` crawl-log format)."""
        origin = f" source={self.source}" if self.source else ""
        return (
            f"crawl {self.crawl_id}: {self.name} kind={self.kind} "
            f"records={self.records} new={self.new_nodes} "
            f"duplicates={self.duplicate_nodes} meta={self.meta_records}"
            f"{origin}"
        )


class CrawlWarehouse:
    """One WAL-mode SQLite crawl store: ingest, merge, query, export.

    Open an existing store with :meth:`open` (or ``CrawlWarehouse(path)``),
    create a fresh one with :meth:`create`.  The instance holds the single
    *writer* connection; serving walks is the job of
    :class:`~repro.warehouse.backend.WarehouseBackend`, whose read-only
    connections run concurrently with ingests thanks to WAL.
    """

    def __init__(self, path: PathLike, _create: bool = False, name: Optional[str] = None) -> None:
        self.path = Path(path)
        if not _create and not self.path.is_file():
            raise WarehouseError(
                f"no crawl warehouse at {self.path}; create one with "
                f"CrawlWarehouse.create(path)"
            )
        if not _create and not is_warehouse_file(self.path):
            raise WarehouseError(f"{self.path} is not an SQLite database file")
        self._conn = sqlite3.connect(str(self.path))
        for pragma in _PRAGMAS:
            self._conn.execute(pragma)
        if _create:
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._conn.executemany(
                    "INSERT OR REPLACE INTO warehouse (key, value) VALUES (?, ?)",
                    [
                        ("format", WAREHOUSE_FORMAT),
                        ("version", str(WAREHOUSE_VERSION)),
                        ("name", name or self.path.stem),
                    ],
                )
        self._validate()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: PathLike, name: Optional[str] = None) -> "CrawlWarehouse":
        """Create a fresh warehouse at ``path`` (parents made, must not exist)."""
        path = Path(path)
        if path.exists():
            raise WarehouseError(
                f"{path} already exists; open it with CrawlWarehouse.open "
                f"(ingest appends to an existing store)"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        return cls(path, _create=True, name=name)

    @classmethod
    def open(cls, path: PathLike, create: bool = False) -> "CrawlWarehouse":
        """Open an existing warehouse; ``create=True`` makes a missing one."""
        if create and not Path(path).exists():
            return cls.create(path)
        return cls(path)

    def _validate(self) -> None:
        try:
            rows = dict(self._conn.execute("SELECT key, value FROM warehouse"))
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise WarehouseError(
                f"{self.path} is not a {WAREHOUSE_FORMAT} store: {exc}"
            ) from exc
        if rows.get("format") != WAREHOUSE_FORMAT:
            self._conn.close()
            raise WarehouseError(
                f"{self.path} is not a {WAREHOUSE_FORMAT} store "
                f"(format={rows.get('format')!r})"
            )
        version = rows.get("version")
        if version != str(WAREHOUSE_VERSION):
            self._conn.close()
            raise WarehouseError(
                f"warehouse {self.path} has schema version {version!r}; this "
                f"build reads version {WAREHOUSE_VERSION}"
            )

    @property
    def name(self) -> str:
        row = self._conn.execute(
            "SELECT value FROM warehouse WHERE key='name'"
        ).fetchone()
        return row[0] if row else self.path.stem

    def close(self) -> None:
        """Close the writer connection."""
        self._conn.close()

    def __enter__(self) -> "CrawlWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CrawlWarehouse(path={str(self.path)!r}, nodes={len(self)}, "
            f"crawls={self.crawl_count})"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, source, name: Optional[str] = None) -> IngestReport:
        """Merge one crawl source into the store and return its provenance.

        ``source`` is anything :func:`~repro.api.backend.as_backend` accepts:
        a crawl-dump file, a CSR snapshot directory, another warehouse, a
        :class:`~repro.graphs.graph.Graph` or any live backend.  Records are
        ingested in the source's ``node_ids()`` order (dump order for
        replays, snapshot order for CSR), deduping against what the store
        already holds; boundary neighbors the source serves free metadata
        for become ``metadata`` rows, and any contradiction raises
        :class:`~repro.exceptions.IngestConflictError` with the whole crawl
        rolled back.
        """
        owned: Optional[GraphBackend] = None
        if isinstance(source, (str, Path)):
            label = str(source)
            owned = as_backend(str(source))
            backend = owned
        elif isinstance(source, Graph):
            label = None
            owned = as_backend(source)
            backend = owned
        elif isinstance(source, GraphBackend):
            label = None
            backend = source
        else:
            raise TypeError(
                f"cannot ingest {type(source).__name__}; accepted sources: "
                "Graph, GraphBackend, or a str / pathlib.Path naming a crawl "
                "dump, CSR snapshot directory, or warehouse .sqlite store"
            )
        try:
            return self._ingest_backend(backend, label=label, name=name)
        finally:
            if owned is not None:
                owned.close()

    def _ingest_backend(
        self, backend: GraphBackend, label: Optional[str], name: Optional[str]
    ) -> IngestReport:
        from ..storage.replay import ReplayBackend
        from ..storage.snapshot import MmapCSRBackend

        if isinstance(backend, ReplayBackend):
            kind = "dump"
        elif isinstance(backend, MmapCSRBackend):
            kind = "snapshot"
        else:
            kind = type(backend).__name__
        crawl_name = name or getattr(backend, "name", "crawl")
        started = time.perf_counter()
        order = backend.node_ids()
        records = backend.fetch_many(order) if order else []

        conn = self._conn
        try:
            conn.execute("BEGIN IMMEDIATE")
            report = self._merge_records(backend, records, kind, crawl_name, label)
        except BaseException:
            conn.rollback()
            raise
        conn.commit()
        registry = obs.metrics()
        if registry is not None:
            registry.observe(
                "repro_warehouse_ingest_ms",
                (time.perf_counter() - started) * 1000.0,
            )
            registry.inc("repro_warehouse_ingests_total")
            registry.inc("repro_warehouse_ingest_records_total", report.records)
            registry.inc(
                "repro_warehouse_ingest_duplicates_total", report.duplicate_nodes
            )
        return report

    def _merge_records(
        self,
        backend: GraphBackend,
        records: Sequence[RawRecord],
        kind: str,
        crawl_name: str,
        label: Optional[str],
    ) -> IngestReport:
        conn = self._conn
        # The whole merge keys off canonical-JSON ids; existing keys and
        # boundary metadata are loaded up front so the common case (a brand
        # new node) costs appends into executemany batches, not per-row
        # SELECTs.
        existing: Dict[str, int] = dict(conn.execute("SELECT node, degree FROM nodes"))
        existing_meta: Dict[str, Tuple[Optional[int], Optional[str]]] = {
            key: (degree, attributes)
            for key, degree, attributes in conn.execute(
                "SELECT node, degree, attributes FROM metadata"
            )
        }
        row = conn.execute("SELECT COALESCE(MAX(seq) + 1, 0) FROM nodes").fetchone()
        next_seq = int(row[0])
        crawl_id = int(
            conn.execute(
                "INSERT INTO crawls (name, source, kind, records, new_nodes, "
                "duplicate_nodes, meta_records) VALUES (?, ?, ?, 0, 0, 0, 0)",
                (crawl_name, label, kind),
            ).lastrowid
        )

        # Neighbor ids repeat heavily across records, so the canonical-key
        # encoding is memoised for the duration of the merge.
        key_cache: Dict[NodeId, str] = {}

        def node_key(node: NodeId) -> str:
            key = key_cache.get(node)
            if key is None:
                key = key_cache[node] = encode_node_key(node)
            return key

        node_rows: List[Tuple[str, int, int, str, Optional[str], int]] = []
        edge_rows: List[Tuple[str, int, str]] = []
        attr_rows: List[Tuple[str, str, str]] = []
        promoted_meta: List[str] = []
        new_nodes = 0
        duplicates = 0
        fetched_keys: Dict[str, RawRecord] = {}
        for record in records:
            key = node_key(record.node)
            fetched_keys[key] = record
            attributes_json = _encode_attributes(record.node, record.attributes)
            neighbors_json = _encode_neighbors(record, node_key)
            if key in existing:
                self._check_duplicate(
                    key, record, neighbors_json, attributes_json, crawl_name
                )
                duplicates += 1
                continue
            meta_row = existing_meta.get(key)
            if meta_row is not None:
                # A node previously known only as a boundary neighbor is
                # promoted to a full record — but only if the free summary
                # the earlier crawl saw matches what this crawl fetched.
                meta_degree = meta_row[0]
                if meta_degree is not None and meta_degree != record.degree:
                    raise IngestConflictError(
                        record.node,
                        f"boundary metadata recorded degree {meta_degree}, "
                        f"crawl {crawl_name!r} fetched degree {record.degree}",
                        source=label,
                    )
                promoted_meta.append(key)
            node_rows.append(
                (key, next_seq, record.degree, neighbors_json, attributes_json,
                 crawl_id)
            )
            next_seq += 1
            new_nodes += 1
            for pos, neighbor in enumerate(record.neighbors):
                edge_rows.append((key, pos, node_key(neighbor)))
            for attr_name, value in record.attributes.items():
                attr_rows.append(
                    (key, attr_name, json.dumps(value, sort_keys=True, separators=(",", ":")))
                )

        # Boundary neighbors: listed by some record, fetched by nobody (not
        # by this crawl, not by any earlier one).  Their free profile
        # summaries — the dumps' ``meta`` lines — are worth keeping: the
        # metadata-peeking kernels (MHRW, GNRW) need them for faithful walks.
        meta_rows: List[Tuple[str, Optional[int], Optional[str], int]] = []
        new_meta = 0
        seen_boundary: set = set()
        for record in records:
            for neighbor in record.neighbors:
                nkey = node_key(neighbor)
                if nkey in fetched_keys or nkey in seen_boundary:
                    continue
                seen_boundary.add(nkey)
                summary = backend.metadata(neighbor)
                if summary is None:
                    continue
                degree = summary.get("degree")
                attributes = summary.get("attributes") or {}
                if nkey in existing:
                    if degree is not None and degree != existing[nkey]:
                        raise IngestConflictError(
                            neighbor,
                            f"crawl {crawl_name!r} saw boundary degree {degree}, "
                            f"the store holds a fetched record of degree "
                            f"{existing[nkey]}",
                            source=label,
                        )
                    continue
                attributes_json = _encode_attributes(neighbor, attributes)
                prior = existing_meta.get(nkey)
                if prior is not None:
                    if prior != (degree, attributes_json):
                        raise IngestConflictError(
                            neighbor,
                            f"boundary metadata disagrees with an earlier crawl "
                            f"(stored degree={prior[0]}, new degree={degree})",
                            source=label,
                        )
                    continue
                meta_rows.append((nkey, degree, attributes_json, crawl_id))
                new_meta += 1

        conn = self._conn
        if promoted_meta:
            conn.executemany(
                "DELETE FROM metadata WHERE node=?", [(key,) for key in promoted_meta]
            )
        conn.executemany(
            "INSERT INTO nodes (node, seq, degree, neighbors, attributes, "
            "crawl_id) VALUES (?, ?, ?, ?, ?, ?)",
            node_rows,
        )
        conn.executemany(
            "INSERT INTO edges (src, pos, dst) VALUES (?, ?, ?)", edge_rows
        )
        conn.executemany(
            "INSERT INTO node_attrs (node, name, value) VALUES (?, ?, ?)", attr_rows
        )
        conn.executemany(
            "INSERT INTO metadata (node, degree, attributes, crawl_id) "
            "VALUES (?, ?, ?, ?)",
            meta_rows,
        )
        conn.execute(
            "UPDATE crawls SET records=?, new_nodes=?, duplicate_nodes=?, "
            "meta_records=? WHERE crawl_id=?",
            (len(records), new_nodes, duplicates, new_meta, crawl_id),
        )
        return IngestReport(
            crawl_id=crawl_id,
            name=crawl_name,
            source=label,
            kind=kind,
            records=len(records),
            new_nodes=new_nodes,
            duplicate_nodes=duplicates,
            meta_records=new_meta,
        )

    def _check_duplicate(
        self,
        key: str,
        record: RawRecord,
        neighbors_json: str,
        attributes_json: Optional[str],
        crawl_name: str,
    ) -> None:
        """Verify a re-ingested node agrees with its stored row, or raise."""
        stored = self._conn.execute(
            "SELECT neighbors, attributes FROM nodes WHERE node=?", (key,)
        ).fetchone()
        if stored[0] != neighbors_json:
            raise IngestConflictError(
                record.node,
                f"crawl {crawl_name!r} fetched {len(record.neighbors)} "
                f"neighbors {record.neighbors!r}, the store holds "
                f"{len(json.loads(stored[0]))} different neighbor rows",
            )
        if stored[1] != attributes_json:
            raise IngestConflictError(
                record.node,
                f"crawl {crawl_name!r} fetched attributes {record.attributes!r}, "
                f"the store holds different attributes",
            )

    # ------------------------------------------------------------------
    # Aggregate query surface
    # ------------------------------------------------------------------
    def degree_histogram(self) -> List[Tuple[int, int]]:
        """Return ``[(degree, node_count), ...]`` sorted by degree.

        Served straight off the ``nodes(degree)`` index — no walk, no
        record materialisation.
        """
        return [
            (int(degree), int(count))
            for degree, count in self._conn.execute(
                "SELECT degree, COUNT(*) FROM nodes GROUP BY degree ORDER BY degree"
            )
        ]

    def attribute_counts(self, name: str) -> Dict[Any, int]:
        """Return ``{attribute value: node count}`` for one attribute name.

        Decoded values key the result; a JSON value that does not hash
        (a list) keys by its canonical JSON string instead.
        """
        counts: Dict[Any, int] = {}
        for value_json, count in self._conn.execute(
            "SELECT value, COUNT(*) FROM node_attrs WHERE name=? "
            "GROUP BY value ORDER BY value",
            (name,),
        ):
            value = json.loads(value_json)
            try:
                counts[value] = int(count)
            except TypeError:
                counts[value_json] = int(count)
        return counts

    def crawl_log(self) -> List[IngestReport]:
        """Return the provenance of every ingested crawl, in ingest order."""
        return [
            IngestReport(
                crawl_id=int(crawl_id),
                name=name,
                source=source,
                kind=kind,
                records=int(records),
                new_nodes=int(new_nodes),
                duplicate_nodes=int(duplicate_nodes),
                meta_records=int(meta_records),
            )
            for crawl_id, name, source, kind, records, new_nodes, duplicate_nodes,
            meta_records in self._conn.execute(
                "SELECT crawl_id, name, source, kind, records, new_nodes, "
                "duplicate_nodes, meta_records FROM crawls ORDER BY crawl_id"
            )
        ]

    def stats(self) -> Dict[str, Any]:
        """Return headline store statistics as one SQL round of aggregates."""
        nodes, edge_rows, avg_degree, max_degree = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(degree), 0), AVG(degree), "
            "MAX(degree) FROM nodes"
        ).fetchone()
        meta = self._conn.execute("SELECT COUNT(*) FROM metadata").fetchone()[0]
        crawls = self._conn.execute("SELECT COUNT(*) FROM crawls").fetchone()[0]
        return {
            "name": self.name,
            "path": str(self.path),
            "nodes": int(nodes),
            "edge_rows": int(edge_rows),
            "meta_records": int(meta),
            "crawls": int(crawls),
            "average_degree": float(avg_degree) if avg_degree is not None else 0.0,
            "max_degree": int(max_degree) if max_degree is not None else 0,
        }

    @property
    def crawl_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM crawls").fetchone()[0])

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM nodes").fetchone()[0])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_backend(self):
        """Open this store as a read-only :class:`WarehouseBackend`."""
        from .backend import WarehouseBackend

        return WarehouseBackend(self.path)

    def export_dump(self, path: PathLike, name: Optional[str] = None) -> Path:
        """Write the merged store back out as a ``repro-crawl`` JSONL dump.

        Records go out in global first-ingest (``seq``) order with the
        boundary ``metadata`` rows as ``meta`` lines, through the same
        :func:`~repro.storage.replay.dump_crawl` writer the crawler uses —
        so a dump → ingest → export round trip is lossless, and exporting a
        single-crawl warehouse reproduces the original dump.
        """
        from ..storage.replay import dump_crawl

        with self.as_backend() as backend:
            return dump_crawl(
                backend, path, nodes=backend.node_ids(), name=name or self.name
            )

    def export_snapshot(self, directory: PathLike, name: Optional[str] = None) -> Path:
        """Compile the merged store into a ``repro-csr-snapshot`` directory.

        Requires a *complete* store: every neighbor of every record must
        itself have been fetched by some crawl, since CSR rows exist for
        every referenced node.  A store with unfetched boundary neighbors
        raises :class:`~repro.exceptions.WarehouseError` (export a dump
        instead — dumps carry partial crawls losslessly).
        """
        import numpy as np

        from ..api.backend import CSRBackend
        from ..storage.snapshot import save_snapshot

        dangling = self._conn.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT dst FROM edges "
            "WHERE dst NOT IN (SELECT node FROM nodes))"
        ).fetchone()[0]
        if dangling:
            raise WarehouseError(
                f"cannot export {self.path} as a snapshot: {dangling} boundary "
                f"neighbor(s) were never fetched by any ingested crawl, and a "
                f"CSR snapshot needs a row for every node; export_dump "
                f"preserves partial crawls losslessly"
            )
        keys: List[str] = []
        degrees: List[int] = []
        attributes: Dict[NodeId, Dict[str, Any]] = {}
        for key, degree, attributes_json in self._conn.execute(
            "SELECT node, degree, attributes FROM nodes ORDER BY seq"
        ):
            keys.append(key)
            degrees.append(int(degree))
            if attributes_json:
                attributes[decode_node_key(key)] = json.loads(attributes_json)
        index = {key: i for i, key in enumerate(keys)}
        indptr = np.zeros(len(keys) + 1, dtype=np.int64)
        np.cumsum(np.asarray(degrees, dtype=np.int64), out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = 0
        for src, dst in self._conn.execute(
            "SELECT e.src, e.dst FROM edges e JOIN nodes n ON n.node = e.src "
            "ORDER BY n.seq, e.pos"
        ):
            indices[cursor] = index[dst]
            cursor += 1
        node_ids = [decode_node_key(key) for key in keys]
        csr = CSRBackend(
            indptr,
            indices,
            node_ids=node_ids,
            attributes=attributes,
            name=name or self.name,
        )
        return save_snapshot(csr, directory, name=name or self.name)
