"""Queryable crawl warehouse: a WAL-mode SQLite tier over merged crawls.

The warehouse closes the gap between PR 3's append-only artifacts and the
estimators: crawl dumps can only be replayed start to finish, but degree
histograms, attribute aggregates and crawl provenance are *queries*.  This
subsystem ingests any number of dumps, snapshots or live backends into one
indexed SQLite store and serves both sides:

* **writes** — :class:`CrawlWarehouse`: incremental :meth:`ingest
  <CrawlWarehouse.ingest>` (dedupe by node id, typed
  :class:`~repro.exceptions.IngestConflictError` on contradictory crawls,
  per-crawl provenance), SQL aggregates (:meth:`degree_histogram
  <CrawlWarehouse.degree_histogram>`, :meth:`attribute_counts
  <CrawlWarehouse.attribute_counts>`, :meth:`crawl_log
  <CrawlWarehouse.crawl_log>`, :meth:`stats <CrawlWarehouse.stats>`), and
  lossless :meth:`export_dump <CrawlWarehouse.export_dump>` /
  :meth:`export_snapshot <CrawlWarehouse.export_snapshot>`;
* **reads** — :class:`WarehouseBackend`: a conformance-identical
  :class:`~repro.api.backend.GraphBackend` whose WAL readers run
  concurrently with ingests, across threads and processes, so a warehouse
  drives walks, the HTTP graph service and ``jobs=`` fan-out unchanged.

``as_backend`` / ``build_api`` / ``SamplingSession`` accept a warehouse
``.sqlite`` path like any other on-disk source, and ``repro.cli warehouse
ingest|export|stats`` drives the store from the command line.
"""

from .backend import WarehouseBackend
from .store import (
    SQLITE_MAGIC,
    WAREHOUSE_FORMAT,
    WAREHOUSE_VERSION,
    CrawlWarehouse,
    IngestReport,
    decode_node_key,
    encode_node_key,
    is_warehouse_file,
)

__all__ = [
    "CrawlWarehouse",
    "IngestReport",
    "SQLITE_MAGIC",
    "WAREHOUSE_FORMAT",
    "WAREHOUSE_VERSION",
    "WarehouseBackend",
    "decode_node_key",
    "encode_node_key",
    "is_warehouse_file",
]
