"""Synthetic graph generators.

The paper evaluates on real social graphs plus two families of "ill-formed"
synthetic graphs: barbell graphs (two cliques joined by one bridge edge) and
clustered graphs (several cliques chained by single bridge edges).  For the
laptop-scale reproduction we additionally need generators whose output mimics
the structural features of the real datasets (heavy-tailed degrees, high
clustering, community structure), so this module also implements classic
random-graph models from scratch: Erdos-Renyi, Barabasi-Albert,
Watts-Strogatz, and a planted-partition community model.

All generators take a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..exceptions import GraphError
from ..rng import SeedLike, make_rng
from .graph import Graph


def complete_graph(n: int, name: str = "complete") -> Graph:
    """Return the complete graph on ``n`` nodes labelled ``0..n-1``."""
    if n < 1:
        raise GraphError("complete graph needs at least one node")
    graph = Graph(name=name)
    graph.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def star_graph(n_leaves: int, name: str = "star") -> Graph:
    """Return a star: node 0 connected to ``n_leaves`` leaf nodes."""
    if n_leaves < 1:
        raise GraphError("star graph needs at least one leaf")
    graph = Graph(name=name)
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def cycle_graph(n: int, name: str = "cycle") -> Graph:
    """Return a cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError("cycle graph needs at least three nodes")
    graph = Graph(name=name)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def path_graph(n: int, name: str = "path") -> Graph:
    """Return a path on ``n >= 2`` nodes."""
    if n < 2:
        raise GraphError("path graph needs at least two nodes")
    graph = Graph(name=name)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def grid_graph(rows: int, cols: int, name: str = "grid") -> Graph:
    """Return a ``rows x cols`` 2-D lattice graph."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    graph = Graph(name=name)

    def node(r: int, c: int) -> int:
        return r * cols + c

    graph.add_nodes(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(node(r, c), node(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(node(r, c), node(r + 1, c))
    return graph


def barbell_graph(clique_size: int, name: Optional[str] = None) -> Graph:
    """Return a barbell graph: two ``clique_size``-cliques joined by one edge.

    This is the topology of Theorem 3 and Figure 11 in the paper: the single
    bridge edge makes the graph extremely hard for a memoryless random walk to
    traverse, which is exactly the regime where CNRW's circulation pays off.
    Nodes ``0..clique_size-1`` form the first clique (``G1``) and nodes
    ``clique_size..2*clique_size-1`` the second (``G2``); the bridge connects
    node ``clique_size - 1`` with node ``clique_size``.
    """
    if clique_size < 2:
        raise GraphError("barbell cliques need at least two nodes each")
    graph = Graph(name=name or f"barbell-{clique_size}")
    for offset in (0, clique_size):
        for u in range(clique_size):
            for v in range(u + 1, clique_size):
                graph.add_edge(offset + u, offset + v)
    graph.add_edge(clique_size - 1, clique_size)
    for node in range(clique_size):
        graph.set_attributes(node, community=0)
    for node in range(clique_size, 2 * clique_size):
        graph.set_attributes(node, community=1)
    return graph


def clustered_cliques_graph(
    clique_sizes: Sequence[int] = (10, 30, 50),
    bridges_per_pair: int = 1,
    name: Optional[str] = None,
    seed: SeedLike = None,
) -> Graph:
    """Return a graph made of cliques chained together by bridge edges.

    This reproduces the paper's "clustered graph" (Section 6.1): three
    complete subgraphs of sizes 10, 30 and 50 connected so the whole graph is
    connected but has tiny conductance.  Consecutive cliques are joined by
    ``bridges_per_pair`` randomly chosen bridge edges (1 by default, matching
    the near-0.99 clustering coefficient in Table 1).
    """
    if len(clique_sizes) < 1:
        raise GraphError("need at least one clique")
    if any(size < 2 for size in clique_sizes):
        raise GraphError("each clique needs at least two nodes")
    if bridges_per_pair < 1:
        raise GraphError("bridges_per_pair must be at least 1")
    rng = make_rng(seed)
    graph = Graph(name=name or "clustered-" + "x".join(str(s) for s in clique_sizes))
    offsets: List[int] = []
    offset = 0
    for community, size in enumerate(clique_sizes):
        offsets.append(offset)
        for u in range(size):
            graph.add_node(offset + u, community=community)
        for u in range(size):
            for v in range(u + 1, size):
                graph.add_edge(offset + u, offset + v)
        offset += size
    for index in range(len(clique_sizes) - 1):
        size_a = clique_sizes[index]
        size_b = clique_sizes[index + 1]
        used = set()
        for _ in range(bridges_per_pair):
            a = offsets[index] + int(rng.integers(0, size_a))
            b = offsets[index + 1] + int(rng.integers(0, size_b))
            if (a, b) in used:
                continue
            used.add((a, b))
            graph.add_edge(a, b)
    return graph


def erdos_renyi_graph(
    n: int,
    probability: float,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Graph:
    """Return a G(n, p) Erdos-Renyi random graph."""
    if n < 1:
        raise GraphError("graph needs at least one node")
    if not 0.0 <= probability <= 1.0:
        raise GraphError("probability must be within [0, 1]")
    rng = make_rng(seed)
    graph = Graph(name=name or f"er-{n}-{probability}")
    graph.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(
    n: int,
    attachment: int,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Graph:
    """Return a Barabasi-Albert preferential-attachment graph.

    Produces the heavy-tailed degree distribution characteristic of online
    social networks; used as the backbone of the "Google-Plus-like" and
    "Youtube-like" synthetic datasets.

    Args:
        n: Total number of nodes (must exceed ``attachment``).
        attachment: Number of edges each new node attaches with.
    """
    if attachment < 1:
        raise GraphError("attachment must be at least 1")
    if n <= attachment:
        raise GraphError("n must exceed the attachment parameter")
    rng = make_rng(seed)
    graph = Graph(name=name or f"ba-{n}-{attachment}")
    # Seed with a small clique so early targets have non-zero degree.
    initial = attachment + 1
    graph.add_nodes(range(initial))
    for u in range(initial):
        for v in range(u + 1, initial):
            graph.add_edge(u, v)
    # Repeated-nodes list implements preferential attachment in O(1) per draw.
    repeated: List[int] = []
    for node in range(initial):
        repeated.extend([node] * graph.degree(node))
    for new_node in range(initial, n):
        targets = set()
        while len(targets) < attachment:
            target = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(target)
        graph.add_node(new_node)
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.append(target)
        repeated.extend([new_node] * attachment)
    return graph


def powerlaw_cluster_graph(
    n: int,
    attachment: int,
    triangle_probability: float,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Graph:
    """Return a Holme-Kim powerlaw-cluster graph.

    Preferential attachment (like Barabasi-Albert) plus a triad-formation
    step: after attaching to a preferentially chosen target, each additional
    edge closes a triangle with one of the target's neighbors with probability
    ``triangle_probability``.  The result combines the heavy-tailed degree
    distribution and the high clustering coefficient that real social graphs
    (the paper's Facebook and Google Plus crawls) exhibit simultaneously —
    exactly the regime in which random walks revisit edges often enough for
    CNRW's circulation to pay off.

    Args:
        n: Total number of nodes (must exceed ``attachment``).
        attachment: Edges added per new node.
        triangle_probability: Probability of closing a triangle per extra edge.
    """
    if attachment < 1:
        raise GraphError("attachment must be at least 1")
    if n <= attachment:
        raise GraphError("n must exceed the attachment parameter")
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must be within [0, 1]")
    rng = make_rng(seed)
    graph = Graph(name=name or f"plc-{n}-{attachment}-{triangle_probability}")
    initial = attachment + 1
    graph.add_nodes(range(initial))
    for u in range(initial):
        for v in range(u + 1, initial):
            graph.add_edge(u, v)
    repeated: List[int] = []
    for node in range(initial):
        repeated.extend([node] * graph.degree(node))
    for new_node in range(initial, n):
        graph.add_node(new_node)
        targets: List[int] = []
        # First edge: pure preferential attachment.
        while True:
            candidate = repeated[int(rng.integers(0, len(repeated)))]
            if candidate != new_node and not graph.has_edge(new_node, candidate):
                break
        graph.add_edge(new_node, candidate)
        targets.append(candidate)
        while len(targets) < attachment:
            closed = False
            if rng.random() < triangle_probability:
                # Triad formation: attach to a random neighbor of the last target.
                anchor = targets[int(rng.integers(0, len(targets)))]
                neighbors = [
                    node
                    for node in graph.neighbors(anchor)
                    if node != new_node and not graph.has_edge(new_node, node)
                ]
                if neighbors:
                    friend = neighbors[int(rng.integers(0, len(neighbors)))]
                    graph.add_edge(new_node, friend)
                    targets.append(friend)
                    closed = True
            if not closed:
                for _ in range(10 * len(repeated)):
                    candidate = repeated[int(rng.integers(0, len(repeated)))]
                    if candidate != new_node and not graph.has_edge(new_node, candidate):
                        graph.add_edge(new_node, candidate)
                        targets.append(candidate)
                        break
                else:
                    break  # graph saturated; cannot place more edges
        for target in targets:
            repeated.append(target)
        repeated.extend([new_node] * len(targets))
    return graph


def watts_strogatz_graph(
    n: int,
    k: int,
    rewire_probability: float,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Graph:
    """Return a Watts-Strogatz small-world graph.

    High clustering plus short paths; used as the backbone of the
    "Facebook-like" synthetic dataset where Table 1 reports a clustering
    coefficient of 0.47.

    Args:
        n: Number of nodes.
        k: Each node is joined to its ``k`` nearest ring neighbours (``k``
            must be even and smaller than ``n``).
        rewire_probability: Probability of rewiring each ring edge.
    """
    if k % 2 != 0:
        raise GraphError("k must be even")
    if k >= n:
        raise GraphError("k must be smaller than n")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must be within [0, 1]")
    rng = make_rng(seed)
    graph = Graph(name=name or f"ws-{n}-{k}-{rewire_probability}")
    graph.add_nodes(range(n))
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(node, (node + offset) % n)
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            neighbor = (node + offset) % n
            if rng.random() < rewire_probability and graph.has_edge(node, neighbor):
                candidates = [
                    target
                    for target in range(n)
                    if target != node and not graph.has_edge(node, target)
                ]
                if not candidates:
                    continue
                new_target = candidates[int(rng.integers(0, len(candidates)))]
                graph.remove_edge(node, neighbor)
                graph.add_edge(node, new_target)
    return graph


def planted_partition_graph(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Graph:
    """Return a planted-partition (stochastic block model) graph.

    Nodes within the same community connect with probability ``p_in`` and
    across communities with probability ``p_out``.  Each node carries a
    ``community`` attribute, which the attribute-synthesis module uses to
    create homophilous attributes (the property GNRW exploits).
    """
    if not community_sizes:
        raise GraphError("need at least one community")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise GraphError("probabilities must satisfy 0 <= p_out <= p_in <= 1")
    rng = make_rng(seed)
    graph = Graph(name=name or "planted-partition")
    memberships: List[int] = []
    node = 0
    for community, size in enumerate(community_sizes):
        for _ in range(size):
            graph.add_node(node, community=community)
            memberships.append(community)
            node += 1
    total = node
    for u in range(total):
        for v in range(u + 1, total):
            probability = p_in if memberships[u] == memberships[v] else p_out
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def heterogeneous_community_graph(
    community_sizes: Sequence[int],
    intra_probabilities: Sequence[float],
    inter_probability: float = 0.002,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Graph:
    """Return a community graph whose communities have different densities.

    A generalisation of the planted-partition model: community ``i`` uses its
    own intra-community edge probability, so dense communities produce
    high-degree nodes and sparse communities low-degree ones.  The result has
    positive degree assortativity and visible clustering at low average degree
    — the regime of the paper's Youtube graph — which is what makes
    neighbor-degree (and attribute) grouping informative for GNRW.
    """
    if not community_sizes:
        raise GraphError("need at least one community")
    if len(community_sizes) != len(intra_probabilities):
        raise GraphError("community_sizes and intra_probabilities must align")
    if any(not 0.0 <= p <= 1.0 for p in intra_probabilities):
        raise GraphError("intra probabilities must lie in [0, 1]")
    if not 0.0 <= inter_probability <= 1.0:
        raise GraphError("inter_probability must lie in [0, 1]")
    rng = make_rng(seed)
    graph = Graph(name=name or "heterogeneous-community")
    memberships: List[int] = []
    node = 0
    for community, size in enumerate(community_sizes):
        for _ in range(size):
            graph.add_node(node, community=community)
            memberships.append(community)
            node += 1
    total = node
    for u in range(total):
        for v in range(u + 1, total):
            if memberships[u] == memberships[v]:
                probability = intra_probabilities[memberships[u]]
            else:
                probability = inter_probability
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def connect_components(graph: Graph, seed: SeedLike = None) -> Graph:
    """Return a connected copy of ``graph`` by bridging its components.

    Components are chained in decreasing-size order with one random bridge
    edge per consecutive pair.  Useful after sparse random generation where a
    few isolated nodes would otherwise break walk-based experiments.
    """
    components = sorted(graph.connected_components(), key=len, reverse=True)
    if len(components) <= 1:
        return graph.copy()
    rng = make_rng(seed)
    connected = graph.copy()
    anchor_pool = list(components[0])
    for component in components[1:]:
        a = anchor_pool[int(rng.integers(0, len(anchor_pool)))]
        members = list(component)
        b = members[int(rng.integers(0, len(members)))]
        connected.add_edge(a, b)
        anchor_pool.extend(members)
    return connected
