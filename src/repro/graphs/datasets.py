"""Dataset registry reproducing the paper's experiment graphs at laptop scale.

The paper's Table 1 lists six datasets: Facebook (775 nodes), Google Plus
(240k nodes), Yelp (120k nodes), Youtube (1.1M nodes), a clustered graph (90
nodes) and a barbell graph (100 nodes).  The two synthetic graphs are rebuilt
exactly; the four real graphs are replaced by synthetic stand-ins that match
the *structural regime* the paper relies on (degree heterogeneity, clustering,
attribute homophily) at a size that keeps the full benchmark suite runnable on
a laptop.  Each builder documents the paper dataset it stands in for, and the
scale can be raised through the ``scale`` parameter for larger runs.

Real SNAP edge lists can still be used directly through
:func:`repro.graphs.loaders.load_edge_list`; every experiment accepts any
:class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exceptions import InvalidConfigurationError
from ..rng import SeedLike, derive_seed
from .attributes import (
    assign_community_correlated_attribute,
    assign_degree_correlated_attribute,
    assign_homophilous_numeric_attribute,
    combine_attributes,
)
from .generators import (
    barbell_graph,
    clustered_cliques_graph,
    connect_components,
    heterogeneous_community_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
)
from .graph import Graph

DatasetBuilder = Callable[..., Graph]

_REGISTRY: Dict[str, DatasetBuilder] = {}


def register_dataset(name: str) -> Callable[[DatasetBuilder], DatasetBuilder]:
    """Class of decorators registering a dataset builder under ``name``."""

    def decorator(builder: DatasetBuilder) -> DatasetBuilder:
        _REGISTRY[name] = builder
        return builder

    return decorator


def available_datasets() -> List[str]:
    """Return the sorted names of all registered datasets."""
    return sorted(_REGISTRY)


def load_dataset(name: str, seed: SeedLike = 0, scale: float = 1.0, **kwargs) -> Graph:
    """Build a registered dataset by name.

    Args:
        name: One of :func:`available_datasets`.
        seed: Seed controlling the random construction.
        scale: Multiplier on the default node count (where applicable).
        kwargs: Extra builder-specific parameters.
    """
    if name not in _REGISTRY:
        raise InvalidConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return _REGISTRY[name](seed=seed, scale=scale, **kwargs)


def _scaled(base: int, scale: float, minimum: int = 10) -> int:
    return max(minimum, int(round(base * scale)))


@register_dataset("facebook_like")
def facebook_like(seed: SeedLike = 0, scale: float = 1.0, **_) -> Graph:
    """Stand-in for the SNAP Facebook ego network (775 nodes, clustering 0.47).

    A Holme-Kim powerlaw-cluster backbone combines the heavy-tailed degree
    distribution and the high clustering coefficient of the real ego network.
    Nodes carry a homophilous ``age`` and a degree-correlated ``activity``
    attribute.
    """
    n = _scaled(775, scale, minimum=60)
    attachment = max(4, min(18, int(18 * min(scale, 1.0))))
    graph = powerlaw_cluster_graph(
        n=n, attachment=attachment, triangle_probability=0.85,
        seed=derive_seed(_as_int(seed), 1), name="facebook_like",
    )
    graph = connect_components(graph, seed=derive_seed(_as_int(seed), 2))
    graph.name = "facebook_like"
    assign_homophilous_numeric_attribute(
        graph, name="age", smoothing_rounds=3, noise=2.0, seed=derive_seed(_as_int(seed), 3)
    )
    assign_degree_correlated_attribute(
        graph, name="activity", scale=1.5, noise=0.3, seed=derive_seed(_as_int(seed), 4)
    )
    return graph


@register_dataset("googleplus_like")
def googleplus_like(seed: SeedLike = 0, scale: float = 1.0, **_) -> Graph:
    """Stand-in for the crawled Google Plus graph (240k nodes, avg degree 256).

    A Holme-Kim powerlaw-cluster graph supplies both the heavy-tailed degree
    distribution that drives Figure 6 (relative error of the average-degree
    estimate) and the 0.5-ish clustering coefficient of the real crawl.  The
    default size (4000 nodes) keeps Figure 6 reproducible in seconds; raise
    ``scale`` for larger runs.
    """
    n = _scaled(4000, scale, minimum=200)
    attachment = max(6, int(16 * min(scale, 2.0)))
    graph = powerlaw_cluster_graph(
        n=n, attachment=attachment, triangle_probability=0.9,
        seed=derive_seed(_as_int(seed), 1), name="googleplus_like",
    )
    assign_degree_correlated_attribute(
        graph, name="followers", scale=3.0, noise=0.4, seed=derive_seed(_as_int(seed), 2)
    )
    assign_homophilous_numeric_attribute(
        graph, name="age", smoothing_rounds=2, noise=3.0, seed=derive_seed(_as_int(seed), 3)
    )
    return graph


@register_dataset("yelp_like")
def yelp_like(seed: SeedLike = 0, scale: float = 1.0, **_) -> Graph:
    """Stand-in for the Yelp friendship graph (120k nodes, avg degree 16).

    A planted-partition community graph (communities of uneven sizes) plus a
    degree-correlated ``reviews_count`` attribute reproduces the workload of
    Figure 9: estimating average degree and average reviews count with GNRW
    grouped by degree, by MD5, or by reviews count.
    """
    base_sizes = [400, 300, 250, 200, 150, 100]
    sizes = [_scaled(size, scale, minimum=20) for size in base_sizes]
    graph = planted_partition_graph(
        community_sizes=sizes, p_in=0.035, p_out=0.0015,
        seed=derive_seed(_as_int(seed), 1), name="yelp_like",
    )
    graph = connect_components(graph, seed=derive_seed(_as_int(seed), 2))
    graph = graph.largest_connected_component()
    graph.name = "yelp_like"
    # reviews_count mixes a connectivity component (active reviewers have more
    # friends) with a community component (reviewing propensity clusters with
    # the community), so it is informative about path blocks without being a
    # deterministic function of degree.
    assign_degree_correlated_attribute(
        graph, name="_reviews_degree_part", scale=1.2, noise=0.4,
        seed=derive_seed(_as_int(seed), 3),
    )
    assign_community_correlated_attribute(
        graph, name="_reviews_community_part", base=5.0, spread=30.0, noise=4.0,
        seed=derive_seed(_as_int(seed), 5),
    )
    combine_attributes(
        graph, name="reviews_count",
        sources=("_reviews_degree_part", "_reviews_community_part"),
        minimum=0.0,
    )
    assign_community_correlated_attribute(
        graph, name="age", base=22.0, spread=6.0, noise=2.5, seed=derive_seed(_as_int(seed), 4)
    )
    return graph


@register_dataset("youtube_like")
def youtube_like(seed: SeedLike = 0, scale: float = 1.0, **_) -> Graph:
    """Stand-in for the SNAP Youtube graph (1.1M nodes, avg degree 5.3).

    Sparse communities of very different densities reproduce the low average
    degree, the mild clustering (0.08 in Table 1) and the positive degree
    assortativity of the real graph, which is the regime of Figure 7(d).
    """
    base_sizes = [60, 50, 45, 40, 35, 30, 25, 20]
    multiplier = max(1, int(round(8 * scale)))
    sizes = [size for size in base_sizes for _ in range(multiplier)]
    densities_cycle = [0.22, 0.14, 0.10, 0.07, 0.05, 0.16, 0.08, 0.12]
    densities = [densities_cycle[index % len(densities_cycle)] for index in range(len(sizes))]
    graph = heterogeneous_community_graph(
        community_sizes=sizes,
        intra_probabilities=densities,
        inter_probability=0.0008,
        seed=derive_seed(_as_int(seed), 1),
        name="youtube_like",
    )
    graph = connect_components(graph, seed=derive_seed(_as_int(seed), 2))
    graph.name = "youtube_like"
    assign_degree_correlated_attribute(
        graph, name="uploads", scale=1.2, noise=0.5, seed=derive_seed(_as_int(seed), 3)
    )
    return graph


@register_dataset("clustered")
def clustered(seed: SeedLike = 0, scale: float = 1.0, **_) -> Graph:
    """The paper's clustered graph: cliques of size 10, 30 and 50 (Table 1)."""
    sizes = [_scaled(10, scale, minimum=4), _scaled(30, scale, minimum=6), _scaled(50, scale, minimum=8)]
    graph = clustered_cliques_graph(
        clique_sizes=sizes, seed=derive_seed(_as_int(seed), 1), name="clustered"
    )
    assign_community_correlated_attribute(
        graph, name="age", base=20.0, spread=15.0, noise=1.0, seed=derive_seed(_as_int(seed), 2)
    )
    return graph


@register_dataset("barbell")
def barbell(seed: SeedLike = 0, scale: float = 1.0, clique_size: Optional[int] = None, **_) -> Graph:
    """The paper's barbell graph: two 50-cliques joined by one edge (Table 1)."""
    size = clique_size if clique_size is not None else _scaled(50, scale, minimum=4)
    graph = barbell_graph(clique_size=size, name="barbell")
    assign_community_correlated_attribute(
        graph, name="age", base=25.0, spread=20.0, noise=1.0, seed=derive_seed(_as_int(seed), 1)
    )
    return graph


def _as_int(seed: SeedLike) -> Optional[int]:
    """Best-effort conversion of a seed-like value to an int for derivation."""
    if seed is None or isinstance(seed, int):
        return seed
    # A Generator was passed: draw a derivation base from it.
    return int(seed.integers(0, 2**31 - 1))
