"""In-memory undirected graph with node attributes.

This is the substrate every other subsystem builds on.  It is intentionally a
plain adjacency-list implementation (dict of sets) rather than a wrapper over
``networkx`` so the library has no hard dependency on it; converters to and
from ``networkx`` are provided for interoperability and for validating the
generators in the test suite.

The graph is *simple* and *undirected*: no self-loops, no parallel edges,
``v in neighbors(u)`` iff ``u in neighbors(v)``.  This matches the access
model of the paper (Section 2.1), which casts directed social networks into
undirected ones before walking.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..exceptions import (
    AttributeNotFoundError,
    EdgeNotFoundError,
    EmptyGraphError,
    NodeNotFoundError,
)
from ..types import Edge, NodeId


class Graph:
    """A simple undirected graph with per-node attribute dictionaries.

    Example:
        >>> g = Graph()
        >>> g.add_edge(1, 2)
        >>> g.add_edge(2, 3)
        >>> sorted(g.neighbors(2))
        [1, 3]
        >>> g.degree(2)
        2
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        self._attributes: Dict[NodeId, Dict[str, Any]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, **attributes: Any) -> None:
        """Add ``node`` (idempotent) and merge ``attributes`` into its record."""
        if node not in self._adjacency:
            self._adjacency[node] = set()
            self._attributes[node] = {}
        if attributes:
            self._attributes[node].update(attributes)

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``.

        Self-loops are rejected because the paper's access model and the
        stationary-distribution analysis assume a simple graph.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._edge_count += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every edge incident to it."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        del self._attributes[node]

    def set_attributes(self, node: NodeId, **attributes: Any) -> None:
        """Merge ``attributes`` into the record of an existing node."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        self._attributes[node].update(attributes)

    def set_attribute_for_all(self, name: str, values: Mapping[NodeId, Any]) -> None:
        """Set one attribute for many nodes at once."""
        for node, value in values.items():
            self.set_attributes(node, **{name: value})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def number_of_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def number_of_edges(self) -> int:
        return self._edge_count

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def nodes(self) -> List[NodeId]:
        """Return a list of all node ids."""
        return list(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once."""
        seen: Set[frozenset] = set()
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def has_node(self, node: NodeId) -> bool:
        return node in self._adjacency

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the neighbor list of ``node`` (a fresh list each call)."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return list(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return len(self._adjacency[node])

    def degrees(self) -> Dict[NodeId, int]:
        """Return a mapping node -> degree for all nodes."""
        return {node: len(nbrs) for node, nbrs in self._adjacency.items()}

    def attributes(self, node: NodeId) -> Dict[str, Any]:
        """Return a copy of the attribute dictionary of ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return dict(self._attributes[node])

    def attribute(self, node: NodeId, name: str, default: Any = ...) -> Any:
        """Return one attribute of ``node``.

        Raises :class:`AttributeNotFoundError` if the attribute is missing and
        no ``default`` is supplied.
        """
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        attrs = self._attributes[node]
        if name in attrs:
            return attrs[name]
        if default is ...:
            raise AttributeNotFoundError(node, name)
        return default

    def attribute_names(self) -> Set[str]:
        """Return the union of attribute names across all nodes."""
        names: Set[str] = set()
        for attrs in self._attributes.values():
            names.update(attrs)
        return names

    # ------------------------------------------------------------------
    # Structure / analysis
    # ------------------------------------------------------------------
    def total_degree(self) -> int:
        """Return the sum of degrees (``2 * |E|``)."""
        return 2 * self._edge_count

    def average_degree(self) -> float:
        """Return the average degree, or 0.0 for an empty graph."""
        if not self._adjacency:
            return 0.0
        return self.total_degree() / len(self._adjacency)

    def isolated_nodes(self) -> List[NodeId]:
        """Return nodes with degree zero."""
        return [node for node, nbrs in self._adjacency.items() if not nbrs]

    def connected_components(self) -> List[Set[NodeId]]:
        """Return the connected components as a list of node sets."""
        remaining = set(self._adjacency)
        components: List[Set[NodeId]] = []
        while remaining:
            root = next(iter(remaining))
            component = self._bfs_component(root)
            components.append(component)
            remaining -= component
        return components

    def _bfs_component(self, root: NodeId) -> Set[NodeId]:
        visited = {root}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        return visited

    def is_connected(self) -> bool:
        """Return ``True`` if the graph is non-empty and connected."""
        if not self._adjacency:
            return False
        root = next(iter(self._adjacency))
        return len(self._bfs_component(root)) == len(self._adjacency)

    def largest_connected_component(self) -> "Graph":
        """Return a new graph restricted to the largest connected component."""
        if not self._adjacency:
            raise EmptyGraphError("graph has no nodes")
        components = self.connected_components()
        largest = max(components, key=len)
        return self.subgraph(largest)

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the induced subgraph on ``nodes`` (attributes copied)."""
        keep = set(nodes)
        missing = [node for node in keep if node not in self._adjacency]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = Graph(name=f"{self.name}-subgraph")
        for node in keep:
            sub.add_node(node, **self._attributes[node])
        for node in keep:
            for neighbor in self._adjacency[node]:
                if neighbor in keep and not sub.has_edge(node, neighbor):
                    sub.add_edge(node, neighbor)
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy of the graph (attribute dicts are copied)."""
        clone = Graph(name=self.name)
        for node in self._adjacency:
            clone.add_node(node, **self._attributes[node])
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def shortest_path_length(self, source: NodeId, target: NodeId) -> int:
        """Return the unweighted shortest-path length between two nodes.

        Raises :class:`NodeNotFoundError` for missing nodes and ``ValueError``
        when no path exists.
        """
        if source not in self._adjacency:
            raise NodeNotFoundError(source)
        if target not in self._adjacency:
            raise NodeNotFoundError(target)
        if source == target:
            return 0
        visited = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in visited:
                    visited[neighbor] = visited[node] + 1
                    if neighbor == target:
                        return visited[neighbor]
                    queue.append(neighbor)
        raise ValueError(f"no path between {source!r} and {target!r}")

    def triangles(self, node: NodeId) -> int:
        """Return the number of triangles through ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        nbrs = self._adjacency[node]
        count = 0
        for v in nbrs:
            count += len(nbrs & self._adjacency[v])
        return count // 2

    def triangle_count(self) -> int:
        """Return the total number of triangles in the graph."""
        return sum(self.triangles(node) for node in self._adjacency) // 3

    def local_clustering(self, node: NodeId) -> float:
        """Return the local clustering coefficient of ``node``."""
        k = self.degree(node)
        if k < 2:
            return 0.0
        return 2.0 * self.triangles(node) / (k * (k - 1))

    def average_clustering(self) -> float:
        """Return the average local clustering coefficient."""
        if not self._adjacency:
            return 0.0
        total = sum(self.local_clustering(node) for node in self._adjacency)
        return total / len(self._adjacency)

    def is_bipartite(self) -> bool:
        """Return ``True`` when the graph is 2-colourable.

        A connected non-bipartite graph is the standard sufficient condition
        for the simple random walk to have a unique stationary distribution.
        """
        color: Dict[NodeId, int] = {}
        for start in self._adjacency:
            if start in color:
                continue
            color[start] = 0
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency[node]:
                    if neighbor not in color:
                        color[neighbor] = 1 - color[node]
                        queue.append(neighbor)
                    elif color[neighbor] == color[node]:
                        return False
        return True

    def stationary_distribution(self) -> Dict[NodeId, float]:
        """Return the SRW stationary distribution ``pi(v) = deg(v) / 2|E|``."""
        total = self.total_degree()
        if total == 0:
            raise EmptyGraphError("graph has no edges")
        return {node: len(nbrs) / total for node, nbrs in self._adjacency.items()}

    # ------------------------------------------------------------------
    # Interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (requires ``networkx``)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for node in self._adjacency:
            g.add_node(node, **self._attributes[node])
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nx_graph, name: Optional[str] = None) -> "Graph":
        """Build a :class:`Graph` from a ``networkx`` graph.

        Directed graphs are converted with the mutual-edge rule used in the
        paper only if the caller pre-processes them; here every edge of the
        input is added as an undirected edge.
        """
        graph = cls(name=name or getattr(nx_graph, "name", None) or "graph")
        for node, data in nx_graph.nodes(data=True):
            graph.add_node(node, **dict(data))
        for u, v in nx_graph.edges():
            if u != v:
                graph.add_edge(u, v)
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        name: str = "graph",
        attributes: Optional[Mapping[NodeId, Mapping[str, Any]]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of edges and optional attributes."""
        graph = cls(name=name)
        graph.add_edges(edges)
        if attributes:
            for node, attrs in attributes.items():
                graph.add_node(node, **dict(attrs))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Graph(name={self.name!r}, nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges})"
        )
