"""Synthetic node-attribute generation with homophily.

GNRW's advantage hinges on a structural property of social networks: users
with similar attribute values are more likely to be connected (Section 4.1).
The real datasets carry such attributes natively (e.g. Yelp ``reviews_count``);
for the synthetic stand-ins we must *create* them while preserving that
property.  This module provides attribute synthesisers where the attribute
value of a node is correlated with its community and/or its degree plus
controllable noise, so the homophily level is a tunable experiment parameter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence  # noqa: F401 - Sequence used in signatures

import numpy as np

from ..exceptions import GraphError
from ..rng import SeedLike, make_rng
from ..types import NodeId
from .graph import Graph


def assign_degree_correlated_attribute(
    graph: Graph,
    name: str = "reviews_count",
    scale: float = 2.0,
    noise: float = 0.25,
    minimum: float = 0.0,
    seed: SeedLike = None,
) -> Dict[NodeId, float]:
    """Attach a numeric attribute roughly proportional to node degree.

    Mirrors attributes like follower/review counts whose value correlates
    with connectivity.  The value is ``scale * degree * (1 + eps)`` with
    ``eps ~ Normal(0, noise)``, clipped at ``minimum``.

    Returns the generated mapping (also written into the graph).
    """
    if noise < 0:
        raise GraphError("noise must be non-negative")
    rng = make_rng(seed)
    values: Dict[NodeId, float] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        epsilon = rng.normal(0.0, noise) if noise > 0 else 0.0
        value = max(minimum, scale * degree * (1.0 + epsilon))
        values[node] = float(value)
        graph.set_attributes(node, **{name: float(value)})
    return values


def assign_community_correlated_attribute(
    graph: Graph,
    name: str = "age",
    community_attribute: str = "community",
    base: float = 20.0,
    spread: float = 10.0,
    noise: float = 2.0,
    seed: SeedLike = None,
) -> Dict[NodeId, float]:
    """Attach a numeric attribute whose mean depends on the node's community.

    Nodes in community ``c`` get values ``base + c * spread + Normal(0, noise)``,
    creating exactly the "similar users cluster together" structure GNRW's
    attribute-based grouping exploits.  Nodes without a community attribute
    are treated as community 0.
    """
    if noise < 0:
        raise GraphError("noise must be non-negative")
    rng = make_rng(seed)
    values: Dict[NodeId, float] = {}
    for node in graph.nodes():
        community = graph.attribute(node, community_attribute, default=0)
        value = base + float(community) * spread
        if noise > 0:
            value += rng.normal(0.0, noise)
        values[node] = float(value)
        graph.set_attributes(node, **{name: float(value)})
    return values


def assign_homophilous_numeric_attribute(
    graph: Graph,
    name: str = "interest_score",
    smoothing_rounds: int = 3,
    noise: float = 1.0,
    seed: SeedLike = None,
) -> Dict[NodeId, float]:
    """Attach a numeric attribute made homophilous by neighbourhood averaging.

    Values start as i.i.d. standard normals and are repeatedly replaced by the
    mean of the node's own value and its neighbours' values, then perturbed by
    fresh noise.  More ``smoothing_rounds`` yields stronger homophily without
    requiring explicit communities.
    """
    if smoothing_rounds < 0:
        raise GraphError("smoothing_rounds must be non-negative")
    rng = make_rng(seed)
    nodes = graph.nodes()
    values = {node: float(rng.normal(0.0, 1.0)) for node in nodes}
    for _ in range(smoothing_rounds):
        smoothed: Dict[NodeId, float] = {}
        for node in nodes:
            neighbors = graph.neighbors(node)
            if neighbors:
                neighborhood = [values[node]] + [values[v] for v in neighbors]
                smoothed[node] = float(np.mean(neighborhood))
            else:
                smoothed[node] = values[node]
        values = smoothed
    if noise > 0:
        values = {node: value + float(rng.normal(0.0, noise)) for node, value in values.items()}
    for node, value in values.items():
        graph.set_attributes(node, **{name: float(value)})
    return values


def assign_categorical_attribute(
    graph: Graph,
    name: str = "city",
    categories: Sequence[str] = ("austin", "dallas", "houston", "elsewhere"),
    community_attribute: Optional[str] = "community",
    homophily: float = 0.8,
    seed: SeedLike = None,
) -> Dict[NodeId, str]:
    """Attach a categorical attribute, optionally aligned with communities.

    With probability ``homophily`` a node draws the category indexed by its
    community (modulo the number of categories); otherwise it draws uniformly
    at random.  When the graph has no community attribute (or
    ``community_attribute`` is ``None``) every node draws uniformly.
    """
    if not categories:
        raise GraphError("need at least one category")
    if not 0.0 <= homophily <= 1.0:
        raise GraphError("homophily must be within [0, 1]")
    rng = make_rng(seed)
    values: Dict[NodeId, str] = {}
    for node in graph.nodes():
        community = None
        if community_attribute is not None:
            community = graph.attribute(node, community_attribute, default=None)
        if community is not None and rng.random() < homophily:
            category = categories[int(community) % len(categories)]
        else:
            category = categories[int(rng.integers(0, len(categories)))]
        values[node] = category
        graph.set_attributes(node, **{name: category})
    return values


def combine_attributes(
    graph: Graph,
    name: str,
    sources: Sequence[str],
    weights: Optional[Sequence[float]] = None,
    minimum: Optional[float] = None,
) -> Dict[NodeId, float]:
    """Create a new numeric attribute as a weighted sum of existing ones.

    Real profile attributes (e.g. Yelp's ``reviews_count``) are correlated
    with connectivity *and* with community membership without being a
    deterministic function of either.  Dataset builders synthesise such
    attributes by generating the individual components with the helpers above
    and blending them here.

    Args:
        graph: Graph whose nodes receive the combined attribute.
        name: Name of the attribute to create.
        sources: Names of the source attributes (missing values count as 0).
        weights: One weight per source (default: all 1.0).
        minimum: Optional lower clip applied to the combined value.
    """
    if not sources:
        raise GraphError("need at least one source attribute")
    if weights is None:
        weights = [1.0] * len(sources)
    if len(weights) != len(sources):
        raise GraphError("weights and sources must have the same length")
    values: Dict[NodeId, float] = {}
    for node in graph.nodes():
        total = 0.0
        for source, weight in zip(sources, weights):
            raw = graph.attribute(node, source, default=0.0)
            try:
                total += weight * float(raw)
            except (TypeError, ValueError):
                continue
        if minimum is not None:
            total = max(minimum, total)
        values[node] = total
        graph.set_attributes(node, **{name: total})
    return values


def measured_homophily(graph: Graph, attribute: str) -> float:
    """Return an edge-level homophily score for a numeric attribute.

    Defined as ``1 - mean(|a_u - a_v|) / mean(|a_x - a_y|)`` where the first
    mean runs over edges and the second over random node pairs drawn from the
    node set (all ordered pairs are approximated by the population standard
    deviation based expectation).  Scores near 1 mean adjacent nodes have much
    more similar values than random pairs; 0 means no edge-level correlation.
    """
    nodes = graph.nodes()
    if graph.number_of_edges == 0 or len(nodes) < 2:
        raise GraphError("graph needs edges and at least two nodes")
    values = np.array([float(graph.attribute(node, attribute)) for node in nodes])
    edge_gaps: List[float] = []
    for u, v in graph.edges():
        edge_gaps.append(abs(float(graph.attribute(u, attribute)) - float(graph.attribute(v, attribute))))
    mean_edge_gap = float(np.mean(edge_gaps))
    # Expected |X - Y| for X, Y drawn independently from the empirical values.
    diffs = np.abs(values[:, None] - values[None, :])
    mean_random_gap = float(diffs.sum() / (len(values) * (len(values) - 1)))
    if mean_random_gap == 0:
        return 0.0
    return 1.0 - mean_edge_gap / mean_random_gap


def attribute_values(graph: Graph, attribute: str, default: float = 0.0) -> Dict[NodeId, float]:
    """Return a node -> float mapping for ``attribute`` (missing -> default)."""
    values: Dict[NodeId, float] = {}
    for node in graph.nodes():
        raw = graph.attribute(node, attribute, default=default)
        try:
            values[node] = float(raw)
        except (TypeError, ValueError):
            values[node] = default
    return values


def make_attribute_measure(attribute: str, default: float = 0.0) -> Callable:
    """Return a measure function ``f(node, attrs) -> float`` for estimators."""

    def measure(node: NodeId, attrs) -> float:  # noqa: ARG001 - uniform signature
        raw = attrs.get(attribute, default)
        try:
            return float(raw)
        except (TypeError, ValueError):
            return default

    measure.__name__ = f"measure_{attribute}"
    return measure
