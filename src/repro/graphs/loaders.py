"""Loading graphs from edge-list files and casting directed data to undirected.

The paper uses public SNAP edge lists (Facebook ego networks, Youtube) and
crawled Google Plus / Yelp data.  This module provides the equivalent I/O
path: a tolerant SNAP-style edge-list parser, the directed-to-undirected
conversion rules described in Section 2.1 / 6.1, and largest-connected-
component extraction (the paper samples only the largest component of Yelp).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..exceptions import LoaderError
from ..types import Edge, NodeId
from .graph import Graph

PathLike = Union[str, Path]


def open_text(path: PathLike, mode: str = "r") -> io.TextIOBase:
    """Open a text file for reading or writing, gzip-compressed by ``.gz`` suffix.

    ``mode`` is ``"r"`` or ``"w"``.  Shared by the edge-list I/O here and the
    crawl-dump I/O of :mod:`repro.storage.replay`, so the suffix-detection and
    encoding rules live in one place.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


#: Backwards-compatible read-only alias (the original private helper name).
_open_text = open_text


def parse_edge_lines(
    lines: Iterable[str],
    comment_prefixes: Tuple[str, ...] = ("#", "%"),
    delimiter: Optional[str] = None,
) -> Iterator[Tuple[str, str]]:
    """Yield ``(u, v)`` string pairs from SNAP-style edge-list lines.

    Blank lines and lines starting with any of ``comment_prefixes`` are
    skipped.  Lines with fewer than two fields raise :class:`LoaderError`;
    extra fields (e.g. weights or timestamps) are ignored.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment_prefixes):
            continue
        fields = line.split(delimiter)
        if len(fields) < 2:
            raise LoaderError(
                f"line {line_number}: expected at least two fields, got {line!r}"
            )
        yield fields[0], fields[1]


def load_edge_list(
    path: PathLike,
    directed: bool = False,
    mutual_only: bool = False,
    node_type: type = int,
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
) -> Graph:
    """Load an undirected :class:`Graph` from an edge-list file.

    Args:
        path: File path (``.gz`` compression is detected by suffix).
        directed: Whether the file encodes directed edges.
        mutual_only: When the input is directed, keep only mutual edges
            (``u -> v`` and ``v -> u`` both present).  When ``False``, every
            directed edge produces an undirected edge (the "either direction"
            casting rule of Section 2.1).
        node_type: Callable applied to each node token (default ``int``).
        name: Name for the resulting graph (defaults to the file stem).
        delimiter: Field delimiter (default: any whitespace).
    """
    path = Path(path)
    with _open_text(path) as handle:
        pairs = list(parse_edge_lines(handle, delimiter=delimiter))
    try:
        edges = [(node_type(u), node_type(v)) for u, v in pairs]
    except (TypeError, ValueError) as exc:
        raise LoaderError(f"could not convert node ids with {node_type}: {exc}") from exc
    graph_name = name or path.stem
    if directed and mutual_only:
        return from_directed_edges(edges, mutual_only=True, name=graph_name)
    if directed:
        return from_directed_edges(edges, mutual_only=False, name=graph_name)
    return undirected_from_edges(edges, name=graph_name)


def undirected_from_edges(edges: Iterable[Edge], name: str = "graph") -> Graph:
    """Build an undirected graph, silently dropping self-loops and duplicates."""
    graph = Graph(name=name)
    for u, v in edges:
        if u == v:
            continue
        graph.add_edge(u, v)
    return graph


def from_directed_edges(
    edges: Iterable[Edge],
    mutual_only: bool = False,
    name: str = "graph",
) -> Graph:
    """Cast a directed edge set into an undirected :class:`Graph`.

    Two conversion rules are supported, both discussed in the paper:

    * ``mutual_only=False`` — keep an undirected edge ``{u, v}`` when either
      ``u -> v`` or ``v -> u`` exists (Section 2.1).
    * ``mutual_only=True`` — keep an undirected edge only when both directions
      exist in the input (the rule used for the experiment datasets in
      Section 6.1).
    """
    directed: Set[Tuple[NodeId, NodeId]] = set()
    nodes: Set[NodeId] = set()
    for u, v in edges:
        if u == v:
            continue
        directed.add((u, v))
        nodes.add(u)
        nodes.add(v)
    graph = Graph(name=name)
    graph.add_nodes(nodes)
    for u, v in directed:
        if graph.has_edge(u, v):
            continue
        if mutual_only:
            if (v, u) in directed:
                graph.add_edge(u, v)
        else:
            graph.add_edge(u, v)
    return graph


def save_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write the graph as a whitespace-delimited edge list.

    A ``.gz`` suffix gzip-compresses the output, mirroring the suffix
    detection of :func:`load_edge_list`, so ``save_edge_list`` →
    ``load_edge_list`` round-trips through either form.
    """
    path = Path(path)
    with open_text(path, "w") as handle:
        if header:
            handle.write(f"# {graph.name}: {graph.number_of_nodes} nodes, "
                         f"{graph.number_of_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def largest_connected_component(graph: Graph) -> Graph:
    """Return the largest connected component of ``graph`` as a new graph."""
    return graph.largest_connected_component()


def relabel_consecutively(graph: Graph) -> Tuple[Graph, Dict[NodeId, int]]:
    """Relabel nodes to ``0..n-1`` (sorted by original repr for determinism).

    Returns the relabelled graph and the mapping ``original -> new id``.
    """
    ordering: List[NodeId] = sorted(graph.nodes(), key=repr)
    mapping: Dict[NodeId, int] = {node: index for index, node in enumerate(ordering)}
    relabelled = Graph(name=graph.name)
    for node in ordering:
        relabelled.add_node(mapping[node], **graph.attributes(node))
    for u, v in graph.edges():
        relabelled.add_edge(mapping[u], mapping[v])
    return relabelled, mapping


def load_attributes(
    path: PathLike,
    graph: Graph,
    attribute: str,
    node_type: type = int,
    value_type: type = float,
    delimiter: Optional[str] = None,
    strict: bool = False,
) -> int:
    """Load a per-node attribute table (``node value`` per line) into ``graph``.

    Returns the number of nodes whose attribute was set.  Unknown nodes are
    skipped unless ``strict`` is true, in which case they raise
    :class:`LoaderError`.
    """
    count = 0
    with _open_text(path) as handle:
        for node_token, value_token in parse_edge_lines(handle, delimiter=delimiter):
            try:
                node = node_type(node_token)
                value = value_type(value_token)
            except (TypeError, ValueError) as exc:
                raise LoaderError(f"bad attribute line {node_token!r} {value_token!r}") from exc
            if graph.has_node(node):
                graph.set_attributes(node, **{attribute: value})
                count += 1
            elif strict:
                raise LoaderError(f"attribute refers to unknown node {node!r}")
    return count
