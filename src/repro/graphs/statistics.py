"""Graph summary statistics (the quantities reported in Table 1 of the paper).

Table 1 lists, for each dataset: number of nodes, number of edges, average
degree, average clustering coefficient, and number of triangles.  This module
computes those plus a few extras (degree distribution, density, assortativity)
used by the test suite to validate the synthetic dataset builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import EmptyGraphError
from .graph import Graph


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of one graph, mirroring a row of Table 1."""

    name: str
    nodes: int
    edges: int
    average_degree: float
    average_clustering: float
    triangles: int

    def as_row(self) -> Tuple[str, int, int, float, float, int]:
        """Return the summary as a plain tuple (used by the report printer)."""
        return (
            self.name,
            self.nodes,
            self.edges,
            self.average_degree,
            self.average_clustering,
            self.triangles,
        )

    def as_dict(self) -> Dict[str, object]:
        """Return the summary as a dictionary (used for CSV export)."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "edges": self.edges,
            "average_degree": self.average_degree,
            "average_clustering": self.average_clustering,
            "triangles": self.triangles,
        }


def summarize(graph: Graph) -> GraphSummary:
    """Compute the Table 1 statistics for ``graph``."""
    if graph.number_of_nodes == 0:
        raise EmptyGraphError("cannot summarise an empty graph")
    return GraphSummary(
        name=graph.name,
        nodes=graph.number_of_nodes,
        edges=graph.number_of_edges,
        average_degree=graph.average_degree(),
        average_clustering=graph.average_clustering(),
        triangles=graph.triangle_count(),
    )


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return a mapping ``degree -> number of nodes with that degree``."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def degree_sequence(graph: Graph) -> List[int]:
    """Return the sorted (descending) degree sequence."""
    return sorted(graph.degrees().values(), reverse=True)


def density(graph: Graph) -> float:
    """Return the edge density ``2|E| / (|V| (|V|-1))``."""
    n = graph.number_of_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.number_of_edges / (n * (n - 1))


def degree_assortativity(graph: Graph) -> float:
    """Return the degree assortativity (Pearson correlation over edges).

    Computed as the correlation between the degrees at the two endpoints of
    every edge, counting each edge in both orientations (the standard Newman
    definition).  Returns 0.0 for degenerate cases (no variance).
    """
    if graph.number_of_edges == 0:
        raise EmptyGraphError("graph has no edges")
    degrees = graph.degrees()
    xs: List[int] = []
    ys: List[int] = []
    for u, v in graph.edges():
        xs.extend((degrees[u], degrees[v]))
        ys.extend((degrees[v], degrees[u]))
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    x_std = x.std()
    y_std = y.std()
    if x_std == 0 or y_std == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (x_std * y_std))


def average_attribute(graph: Graph, attribute: str, default: float = 0.0) -> float:
    """Return the exact population mean of a numeric node attribute."""
    if graph.number_of_nodes == 0:
        raise EmptyGraphError("cannot average over an empty graph")
    total = 0.0
    for node in graph.nodes():
        raw = graph.attribute(node, attribute, default=default)
        try:
            total += float(raw)
        except (TypeError, ValueError):
            total += default
    return total / graph.number_of_nodes


def conductance_of_cut(graph: Graph, community_attribute: str = "community") -> float:
    """Return the conductance of the partition induced by a community label.

    Used by tests to confirm that barbell / clustered graphs are genuinely
    "ill-formed" (tiny conductance), which is the regime where the paper's
    algorithms show the largest gains.  The conductance is computed for the
    cut separating community 0 from the rest.
    """
    inside = {node for node in graph.nodes() if graph.attribute(node, community_attribute, default=0) == 0}
    outside = set(graph.nodes()) - inside
    if not inside or not outside:
        raise EmptyGraphError("community cut is degenerate")
    cut_edges = 0
    volume_inside = 0
    volume_outside = 0
    for u, v in graph.edges():
        u_in = u in inside
        v_in = v in inside
        if u_in != v_in:
            cut_edges += 1
    for node in inside:
        volume_inside += graph.degree(node)
    for node in outside:
        volume_outside += graph.degree(node)
    denominator = min(volume_inside, volume_outside)
    if denominator == 0:
        return 1.0
    return cut_edges / denominator
