"""Walk execution engine: batched lockstep scheduling of walker ensembles.

The walk layer separates *transition rules* (:mod:`repro.walks.kernels`)
from *execution drivers*.  This package holds the batch driver: a
:class:`WalkScheduler` advances N walkers in lockstep against one shared
access-layer stack, deduplicating each round's frontier into a single
``query_many`` batch.  :meth:`repro.api.session.SamplingSession.run_ensemble`
and the experiment runner both execute through it.
"""

from .scheduler import SchedulerPolicy, WalkScheduler

__all__ = ["SchedulerPolicy", "WalkScheduler"]
